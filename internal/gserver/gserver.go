// Package gserver implements a Gremlin Server equivalent: a TCP service
// that accepts Gremlin scripts over a line-delimited JSON protocol and
// executes them against a graph backend, plus the matching client. The
// paper runs all three systems in server mode answering localhost clients;
// this package provides that deployment shape.
package gserver

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"db2graph/internal/graph"
	"db2graph/internal/gremlin"
	"db2graph/internal/sql/types"
)

// Request is one client message.
type Request struct {
	// Query is a Gremlin script (possibly multi-statement).
	Query string `json:"query"`
}

// Response is the server's reply.
type Response struct {
	Results []any  `json:"results,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Server serves Gremlin queries over TCP.
type Server struct {
	src *gremlin.Source

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// New creates a server over the given traversal source.
func New(src *gremlin.Source) *Server {
	return &Server{src: src, conns: make(map[net.Conn]bool)}
}

// Listen binds to addr (e.g. "127.0.0.1:0") and starts serving in the
// background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	reader := bufio.NewReader(conn)
	writer := bufio.NewWriter(conn)
	dec := json.NewDecoder(reader)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.execute(req)
		data, err := json.Marshal(resp)
		if err != nil {
			data, _ = json.Marshal(Response{Error: err.Error()})
		}
		if _, err := writer.Write(append(data, '\n')); err != nil {
			return
		}
		if err := writer.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) execute(req Request) Response {
	results, err := gremlin.RunScript(s.src, req.Query, nil)
	if err != nil {
		return Response{Error: err.Error()}
	}
	out := make([]any, len(results))
	for i, r := range results {
		out[i] = Encode(r)
	}
	return Response{Results: out}
}

// Close stops the server and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Encode converts a traversal result object into a JSON-friendly shape.
func Encode(obj any) any {
	switch x := obj.(type) {
	case *graph.Element:
		props := make(map[string]any, len(x.Props))
		for k, v := range x.Props {
			props[k] = v.Go()
		}
		m := map[string]any{"id": x.ID, "label": x.Label, "properties": props}
		if x.IsEdge {
			m["type"] = "edge"
			m["outV"] = x.OutV
			m["inV"] = x.InV
		} else {
			m["type"] = "vertex"
		}
		return m
	case types.Value:
		return x.Go()
	case map[string]types.Value:
		m := make(map[string]any, len(x))
		for k, v := range x {
			m[k] = v.Go()
		}
		return m
	case map[string]int64:
		m := make(map[string]any, len(x))
		for k, v := range x {
			m[k] = v
		}
		return m
	case map[string]any:
		m := make(map[string]any, len(x))
		for k, v := range x {
			m[k] = Encode(v)
		}
		return m
	case []any:
		out := make([]any, len(x))
		for i, o := range x {
			out[i] = Encode(o)
		}
		return out
	default:
		return fmt.Sprint(obj)
	}
}

// Client is a connection to a Server.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	w    *bufio.Writer
	mu   sync.Mutex
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		w:    bufio.NewWriter(conn),
	}, nil
}

// Submit sends a Gremlin script and returns the decoded results.
func (c *Client) Submit(query string) ([]any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, err := json.Marshal(Request{Query: query})
	if err != nil {
		return nil, err
	}
	if _, err := c.w.Write(append(data, '\n')); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("gserver: %s", resp.Error)
	}
	return resp.Results, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
