package gserver

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"db2graph/internal/graph"
	"db2graph/internal/graph/graphtest"
	"db2graph/internal/gremlin"
	"db2graph/internal/janus"
	"db2graph/internal/telemetry"
)

// syncWriter makes a bytes.Buffer safe to read from the test goroutine while
// the server's slow-query logger writes to it.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestMetricsControlRequest drives the full loop: queries are counted by
// response code, and a client fetches the registry via "!metrics".
func TestMetricsControlRequest(t *testing.T) {
	reg := telemetry.NewRegistry()
	addr, _, _ := startHardenedServer(t, Config{Registry: reg}, graph.Limits{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Submit("g.V().count()"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("g.V('p1').out('hasDisease')"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("g.V().nosuchstep()"); err == nil {
		t.Fatal("expected a parse error")
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if got := m[`gserver_requests_total{code="OK"}`]; got != 2 {
		t.Fatalf("OK request counter = %v, want 2\nmetrics: %v", got, m)
	}
	if got := m[`gserver_requests_total{code="PARSE"}`]; got != 1 {
		t.Fatalf("PARSE request counter = %v, want 1", got)
	}
	if got := m["gserver_request_seconds_count"]; got != 3 {
		t.Fatalf("request latency observations = %v, want 3", got)
	}
	// The "!metrics" control request itself is in flight while the snapshot
	// is taken, but is not a query: it must not inflate the request counters.
	if got := m["gserver_inflight_requests"]; got != 1 {
		t.Fatalf("inflight gauge = %v, want 1 (the control request itself)", got)
	}
	if got := m["gserver_active_queries"]; got != 0 {
		t.Fatalf("active queries gauge = %v, want 0", got)
	}
	// Memory-discipline gauges (DESIGN.md §15): the traverser-arena pool
	// counters must surface after real queries ran. The counters are
	// process-global, so only presence and activity are asserted, not exact
	// values.
	hits, okH := m["gremlin_pool_hits"]
	misses, okM := m["gremlin_pool_misses"]
	if !okH || !okM {
		t.Fatalf("pool gauges missing from !metrics: %v", m)
	}
	if hits+misses < 1 {
		t.Fatalf("pool counters flat after queries: hits=%v misses=%v", hits, misses)
	}
}

// TestSlowQueryLog checks the threshold: slow queries are logged and counted,
// fast ones are not.
func TestSlowQueryLog(t *testing.T) {
	reg := telemetry.NewRegistry()
	logBuf := &syncWriter{}
	addr, _, fb := startHardenedServer(t, Config{
		Registry:           reg,
		SlowQueryThreshold: 20 * time.Millisecond,
		SlowQueryLog:       logBuf,
	}, graph.Limits{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Fast query: below threshold, not logged.
	if _, err := c.Submit("g.V().count()"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("gserver_slow_queries_total").Value(); got != 0 {
		t.Fatalf("slow counter after fast query = %d, want 0", got)
	}

	fb.Inject("V", graphtest.FaultPoint{Delay: 50 * time.Millisecond})
	if _, err := c.Submit("g.V()"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("gserver_slow_queries_total").Value(); got != 1 {
		t.Fatalf("slow counter = %d, want 1", got)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "slow query") || !strings.Contains(logged, `query="g.V()"`) {
		t.Fatalf("slow-query log missing entry: %q", logged)
	}
}

// TestProfileRoundTrip submits a query with tracing enabled and checks the
// decoded Response.Profile payload.
func TestProfileRoundTrip(t *testing.T) {
	// Instrumented backend, exactly as cmd/graphserver wires it: backend
	// method timings land in the span and come back in the profile payload.
	reg := telemetry.NewRegistry()
	fb := buildFaultyBackend(t)
	src := gremlin.NewSource(graph.Instrument(fb, reg))
	srv := NewWithConfig(src, Config{Registry: reg})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, prof, err := c.SubmitProfile("g.V().hasLabel('patient').count()")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].(float64) != 3 {
		t.Fatalf("results = %v, want [3]", res)
	}
	pm, ok := prof.(map[string]any)
	if !ok {
		t.Fatalf("profile payload = %T, want map", prof)
	}
	stmts, ok := pm["statements"].([]any)
	if !ok || len(stmts) == 0 {
		t.Fatalf("profile has no statements: %v", pm)
	}
	st := stmts[0].(map[string]any)
	steps, ok := st["steps"].([]any)
	if !ok || len(steps) == 0 {
		t.Fatalf("statement has no steps: %v", st)
	}
	step := steps[0].(map[string]any)
	for _, key := range []string{"step", "in", "out", "calls", "us"} {
		if _, ok := step[key]; !ok {
			t.Fatalf("step record missing %q: %v", key, step)
		}
	}
	// Backend calls made by the query show up as span ops.
	ops, ok := pm["ops"].([]any)
	if !ok || len(ops) == 0 {
		t.Fatalf("profile has no ops: %v", pm)
	}

	// A plain Submit carries no profile and pays no tracing cost.
	if _, err := c.Submit("g.V().count()"); err != nil {
		t.Fatal(err)
	}
}

// TestCacheMetricsAndFlush proves the caching read path surfaces through the
// server: repeated queries hit the compiled-plan cache and the backend's
// topology caches, "!metrics" reports their counters, and "!flushcaches"
// drops every layer without changing results.
func TestCacheMetricsAndFlush(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := janus.New()
	vs, es := graphtest.Dataset()
	for _, v := range vs {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range es {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewWithConfig(gremlin.NewSource(g), Config{Registry: reg})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	want, err := c.Submit("g.V('p1').out('hasDisease').out('isa')")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := c.Submit("g.V('p1').out('hasDisease').out('isa')")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("cached run %d returned %d results, want %d", i, len(got), len(want))
		}
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		`cache_hits{cache="plan"}`,
		`cache_hits{cache="adjacency"}`,
		`cache_hits{cache="vertex"}`,
	} {
		if m[name] < 1 {
			t.Fatalf("%s = %v, want >= 1 after repeated queries\nmetrics: %v", name, m[name], m)
		}
	}
	if m[`cache_entries{cache="plan"}`] < 1 {
		t.Fatalf("plan cache empty after queries: %v", m)
	}
	// Batched expansion observed its chunk sizes.
	if m[`gremlin_batch_size_count`] < 1 {
		t.Fatalf("gremlin_batch_size_count = %v, want >= 1", m[`gremlin_batch_size_count`])
	}

	if err := c.FlushCaches(); err != nil {
		t.Fatal(err)
	}
	m, err = c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		`cache_entries{cache="plan"}`,
		`cache_entries{cache="adjacency"}`,
		`cache_entries{cache="vertex"}`,
	} {
		if m[name] != 0 {
			t.Fatalf("%s = %v after !flushcaches, want 0", name, m[name])
		}
	}
	// Flushed caches only cost refills; results are unchanged.
	got, err := c.Submit("g.V('p1').out('hasDisease').out('isa')")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("post-flush run returned %d results, want %d", len(got), len(want))
	}
}
