package gserver

import (
	"context"
	"errors"
	"strings"
	"testing"

	"db2graph/internal/graph"
	"db2graph/internal/graph/graphtest"
	"db2graph/internal/gremlin"
	"db2graph/internal/janus"
	"db2graph/internal/telemetry"
	"db2graph/internal/wal"
)

// startDurableServer serves a durable janus graph loaded with the standard
// dataset and returns the shared MemVFS so tests can crash and reopen it.
func startDurableServer(t *testing.T, mem *wal.MemVFS) (string, *Server, *janus.Graph) {
	t.Helper()
	reg := telemetry.NewRegistry()
	g, err := janus.OpenDurableVFS(mem, "db", wal.EveryCommit(), reg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	vs, es := graphtest.Dataset()
	for _, v := range vs {
		if got, _ := g.V(ctx, &graph.Query{IDs: []string{v.ID}}); len(got) == 1 {
			continue
		}
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range es {
		if got, _ := g.E(ctx, &graph.Query{IDs: []string{e.ID}}); len(got) == 1 {
			continue
		}
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewWithConfig(gremlin.NewSource(g), Config{Registry: reg, Checkpointer: g})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		g.Close()
	})
	return addr, srv, g
}

// TestDurableServeAndCheckpoint serves queries from a durable store,
// drives the !checkpoint control request, and verifies the WAL/checkpoint
// gauges surface through !metrics.
func TestDurableServeAndCheckpoint(t *testing.T) {
	mem := wal.NewMemVFS()
	addr, _, _ := startDurableServer(t, mem)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Submit("g.V().count()")
	if err != nil || len(res) != 1 {
		t.Fatalf("count over durable store: %v, %v", res, err)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["kvstore_wal_records_total"] <= 0 {
		t.Fatalf("wal records not in served metrics: %v", m["kvstore_wal_records_total"])
	}
	// A traversal decodes adjacency blobs through the arena path, so the
	// janus_arena_bytes gauge (DESIGN.md §15) must be present and non-zero.
	if _, err := c.Submit("g.V('p1').out()"); err != nil {
		t.Fatal(err)
	}
	m, err = c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["janus_arena_bytes"] <= 0 {
		t.Fatalf("janus_arena_bytes gauge = %v, want > 0", m["janus_arena_bytes"])
	}
	if m["kvstore_checkpoint_generation"] != 1 {
		t.Fatalf("generation gauge = %v", m["kvstore_checkpoint_generation"])
	}

	out, err := c.Submit("!checkpoint")
	if err != nil {
		t.Fatalf("!checkpoint: %v", err)
	}
	if len(out) != 1 || !strings.Contains(out[0].(string), "checkpoint") {
		t.Fatalf("!checkpoint result: %v", out)
	}
	m, err = c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["kvstore_checkpoint_generation"] != 2 {
		t.Fatalf("generation gauge after checkpoint = %v", m["kvstore_checkpoint_generation"])
	}
	if m["kvstore_checkpoints_total"] != 1 {
		t.Fatalf("checkpoints counter = %v", m["kvstore_checkpoints_total"])
	}
}

// TestCheckpointWithoutDurableStore rejects !checkpoint when the server has
// no Checkpointer wired.
func TestCheckpointWithoutDurableStore(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit("!checkpoint"); err == nil {
		t.Fatal("!checkpoint accepted without a durable store")
	}
}

// TestDurableRestartRecovers stops a durable server, simulates a machine
// crash, and serves identical query results from a recovered store.
func TestDurableRestartRecovers(t *testing.T) {
	mem := wal.NewMemVFS()
	addr, srv, g := startDurableServer(t, mem)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	before, err := c.Submit("g.V().count()")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Close()
	g.Close()
	mem.Crash(wal.CrashTornUnsynced)

	addr2, _, _ := startDurableServer(t, mem) // reopen: recovery, then top-up load finds everything present
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	after, err := c2.Submit("g.V().count()")
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 1 || len(after) != 1 || before[0] != after[0] {
		t.Fatalf("restart changed results: %v -> %v", before, after)
	}
	// Multi-hop traversal over recovered adjacency.
	res, err := c2.Submit("g.V('p1').out('hasDisease').id()")
	if err != nil || len(res) == 0 {
		t.Fatalf("traversal on recovered store: %v, %v", res, err)
	}
}

// TestStorageErrorCodes proves disk-level failures surfacing from the
// backend map to the stable READONLY/STORAGE codes and their client-side
// sentinels — never PANIC or INTERNAL.
func TestStorageErrorCodes(t *testing.T) {
	vs, es := graphtest.Dataset()
	inner := graph.NewMemBackend()
	for _, v := range vs {
		if err := inner.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range es {
		if err := inner.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	fb := graphtest.WrapFaults(inner, 1)
	srv := NewWithConfig(gremlin.NewSource(fb), Config{Registry: telemetry.NewRegistry()})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cases := []struct {
		name     string
		inject   error
		sentinel error
	}{
		{"readonly", wal.ErrReadOnly, ErrReadOnly},
		{"io", wal.ErrIO, ErrStorage},
		{"corrupt", wal.ErrCorrupt, ErrStorage},
	}
	for _, tc := range cases {
		fb.Reset()
		fb.Inject("V", graphtest.FaultPoint{Err: tc.inject})
		_, err := c.Submit("g.V()")
		if err == nil {
			t.Fatalf("%s: fault swallowed", tc.name)
		}
		if !errors.Is(err, tc.sentinel) {
			t.Fatalf("%s: client error %v does not match sentinel %v", tc.name, err, tc.sentinel)
		}
		if errors.Is(err, ErrPanic) {
			t.Fatalf("%s: storage fault surfaced as PANIC", tc.name)
		}
	}
	fb.Reset()
	if _, err := c.Submit("g.V().count()"); err != nil {
		t.Fatalf("service did not recover after faults cleared: %v", err)
	}
}
