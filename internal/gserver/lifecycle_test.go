package gserver

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"db2graph/internal/graph"
	"db2graph/internal/graph/graphtest"
	"db2graph/internal/gremlin"
)

// buildFaultyBackend loads the dataset into a mem backend wrapped for fault
// injection.
func buildFaultyBackend(t *testing.T) *graphtest.FaultBackend {
	t.Helper()
	m := graph.NewMemBackend()
	vs, es := graphtest.Dataset()
	for _, v := range vs {
		if err := m.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range es {
		if err := m.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return graphtest.WrapFaults(m, 1)
}

// startHardenedServer spins up a server with the given config over a
// fault-injectable backend and optional source limits.
func startHardenedServer(t *testing.T, cfg Config, limits graph.Limits) (string, *Server, *graphtest.FaultBackend) {
	t.Helper()
	fb := buildFaultyBackend(t)
	src := gremlin.NewSource(fb).WithLimits(limits)
	srv := NewWithConfig(src, cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv, fb
}

func TestQueryTimeoutReturnsTimeoutCode(t *testing.T) {
	addr, _, fb := startHardenedServer(t, Config{QueryTimeout: 100 * time.Millisecond}, graph.Limits{})
	fb.Inject("V", graphtest.FaultPoint{Delay: 30 * time.Second})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.Submit("g.V()")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("slow query error = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout took %v, want ~100ms", elapsed)
	}

	// Server still answers after the timed-out query.
	fb.Reset()
	res, err := c.Submit("g.V().count()")
	if err != nil || res[0].(float64) != 8 {
		t.Fatalf("server unhealthy after timeout: %v, %v", res, err)
	}
}

func TestPerRequestTimeoutOverride(t *testing.T) {
	// Server allows 30s, client ctx shortens to 100ms.
	addr, _, fb := startHardenedServer(t, Config{}, graph.Limits{})
	fb.Inject("V", graphtest.FaultPoint{Delay: 30 * time.Second})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.SubmitCtx(ctx, "g.V()")
	if !errors.Is(err, ErrTimeout) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("override error = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("override timeout took %v", elapsed)
	}
}

func TestUnboundedRepeatHitsBudget(t *testing.T) {
	// The acceptance query: repeat(out()) with a huge iteration count must
	// come back as BUDGET (not hang, not OOM), and the server must keep
	// serving afterwards.
	addr, _, _ := startHardenedServer(t, Config{QueryTimeout: 5 * time.Second},
		graph.Limits{MaxRepeatIters: 8})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.Submit("g.V().repeat(out()).times(1000000)")
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("budget-blowing query error = %v, want ErrBudget", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budget error took %v, want fast fail", elapsed)
	}
	res, err := c.Submit("g.V().count()")
	if err != nil || res[0].(float64) != 8 {
		t.Fatalf("server unhealthy after budget error: %v, %v", res, err)
	}
}

func TestInjectedPanicIsIsolated(t *testing.T) {
	addr, _, fb := startHardenedServer(t, Config{}, graph.Limits{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fb.Inject("VertexEdges", graphtest.FaultPoint{Panic: "boom"})
	_, err = c.Submit("g.V('p1').out('hasDisease')")
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("panicking query error = %v, want ErrPanic", err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic error lost its value: %v", err)
	}

	// The listener survived; the same connection keeps working.
	fb.Reset()
	res, err := c.Submit("g.V().count()")
	if err != nil || res[0].(float64) != 8 {
		t.Fatalf("server unhealthy after panic: %v, %v", res, err)
	}
}

func TestParseErrorCode(t *testing.T) {
	addr, _, _ := startHardenedServer(t, Config{}, graph.Limits{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Submit("g.V().nosuchstep()")
	if !errors.Is(err, ErrParse) {
		t.Fatalf("parse error = %v, want ErrParse", err)
	}
}

func TestRequestSizeCap(t *testing.T) {
	addr, _, _ := startHardenedServer(t, Config{MaxRequestBytes: 1024}, graph.Limits{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Submit("g.V('" + strings.Repeat("x", 4096) + "')")
	if err == nil || !strings.Contains(err.Error(), "1024 bytes") {
		t.Fatalf("oversized request error = %v, want size-cap message", err)
	}

	// The connection was dropped (framing lost), but a fresh Submit redials
	// transparently and the server still answers.
	res, err := c.Submit("g.V().count()")
	if err != nil || res[0].(float64) != 8 {
		t.Fatalf("server unhealthy after oversized request: %v, %v", res, err)
	}
}

func TestSubmitDeadlineAgainstDeadServer(t *testing.T) {
	// A listener that accepts and never responds: Submit must not block
	// forever, and the error must identify the query and the address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	c, err := DialOptions(ln.Addr().String(), Options{Timeout: 200 * time.Millisecond, DialRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Submit("g.V().count()")
	if err == nil {
		t.Fatal("submit against mute server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("submit blocked %v", elapsed)
	}
	if !strings.Contains(err.Error(), ln.Addr().String()) || !strings.Contains(err.Error(), "g.V().count()") {
		t.Fatalf("error lacks query/addr context: %v", err)
	}
}

func TestClientRetriesTransientDisconnect(t *testing.T) {
	// The server drops idle connections after 50ms; the client must notice
	// the dead connection on the next Submit, redial, and succeed.
	addr, _, _ := startHardenedServer(t, Config{ReadTimeout: 50 * time.Millisecond}, graph.Limits{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit("g.V().count()"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // server closes the idle connection
	res, err := c.Submit("g.V().count()")
	if err != nil || res[0].(float64) != 8 {
		t.Fatalf("submit after idle drop: %v, %v", res, err)
	}
}

func TestSemaphoreFastFail(t *testing.T) {
	addr, _, fb := startHardenedServer(t, Config{MaxConcurrent: 1, QueryTimeout: 5 * time.Second}, graph.Limits{})
	fb.Inject("E", graphtest.FaultPoint{Delay: 500 * time.Millisecond})

	slow, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	fast, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()

	done := make(chan error, 1)
	go func() {
		_, err := slow.Submit("g.E()")
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the slow query occupy the slot
	_, err = fast.Submit("g.V().count()")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second query error = %v, want ErrOverloaded", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("slow query failed: %v", err)
	}
	// Slot released: the fast client works again.
	if _, err := fast.Submit("g.V().count()"); err != nil {
		t.Fatalf("after slot release: %v", err)
	}
}

// TestConcurrentLifecycleMix is the satellite concurrency test: N clients
// submit a mix of good, slow, and budget-blowing queries; every outcome must
// be a success or a typed error, the server must stay live throughout, and
// Close must drain cleanly.
func TestConcurrentLifecycleMix(t *testing.T) {
	addr, srv, fb := startHardenedServer(t,
		Config{QueryTimeout: 2 * time.Second, MaxConcurrent: 4, DrainTimeout: 5 * time.Second},
		graph.Limits{MaxRepeatIters: 8})
	fb.Inject("AggE", graphtest.FaultPoint{Delay: 50 * time.Millisecond})

	queries := []string{
		"g.V().count()",                       // good
		"g.E().count()",                       // slow (injected latency)
		"g.V().repeat(out()).times(1000000)",  // budget-blowing
		"g.V('p1').out('hasDisease')",         // good
		"g.V().repeat(both()).times(1000000)", // budget-blowing
	}
	const nClients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, nClients*len(queries))
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for j, q := range queries {
				_, err := c.Submit(queries[(i+j)%len(queries)])
				switch {
				case err == nil:
				case errors.Is(err, ErrBudget), errors.Is(err, ErrOverloaded), errors.Is(err, ErrTimeout):
					// Expected lifecycle outcomes under contention.
				default:
					errCh <- err
					_ = q
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("client saw unexpected error: %v", err)
	}

	// Server is still healthy after the storm.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit("g.V().count()")
	if err != nil || res[0].(float64) != 8 {
		t.Fatalf("server unhealthy after mix: %v, %v", res, err)
	}

	// Close drains cleanly while a slow query is in flight.
	inFlight := make(chan error, 1)
	go func() {
		_, err := c.Submit("g.E().count()")
		inFlight <- err
	}()
	time.Sleep(20 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain within its timeout")
	}
	// The in-flight query either completed before the drain finished or was
	// canceled by shutdown — but it must have been answered, not wedged.
	select {
	case <-inFlight:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight query never resolved after Close")
	}
	c.Close()
}
