// The "!storage" control request: storage-engine introspection. It reports
// which engine backs the graph (copy-on-write or LSM) and, for LSM stores,
// the engine internals an operator watches during ingest — memtable bytes,
// run counts and bytes per level, compaction backlog, bloom-filter hit
// rate, WAL generation. Serving it also refreshes the lsm_* telemetry
// gauges, so a !storage poll keeps !metrics current.
package gserver

import (
	"context"
	"fmt"

	"db2graph/internal/graph"
	"db2graph/internal/kvstore"
)

// storageStatser is what a backend (after unwrapping instrumentation
// decorators) must implement to answer !storage — janus graphs do.
type storageStatser interface {
	StorageStats() kvstore.StorageStats
}

// storageInfo snapshots the backing store, or nil when the backend exposes
// no storage engine (e.g. the plain in-memory reference backend).
func (s *Server) storageInfo() *kvstore.StorageStats {
	b := s.src.Backend
	for {
		u, ok := b.(interface{ Unwrap() graph.Backend })
		if !ok {
			break
		}
		b = u.Unwrap()
	}
	ss, ok := b.(storageStatser)
	if !ok {
		return nil
	}
	st := ss.StorageStats()
	return &st
}

// StorageStats is StorageStatsCtx without a caller context.
func (c *Client) StorageStats() (*kvstore.StorageStats, error) {
	return c.StorageStatsCtx(context.Background())
}

// StorageStatsCtx fetches the server's storage-engine snapshot via the
// "!storage" control request.
func (c *Client) StorageStatsCtx(ctx context.Context) (*kvstore.StorageStats, error) {
	resp, err := c.do(ctx, Request{Query: "!storage"})
	if err != nil {
		return nil, err
	}
	if resp.Storage == nil {
		return nil, fmt.Errorf("gserver: !storage returned no storage payload")
	}
	return resp.Storage, nil
}
