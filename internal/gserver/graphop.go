// Graph-operation protocol: the remote-backend extension of the gserver
// wire format. A Request carrying a GraphOp bypasses the Gremlin engine and
// executes one graph.Backend / graph.BatchBackend read directly against the
// server's backend, under the same lifecycle as a query (admission control,
// deadline, panic isolation). The cluster coordinator speaks this protocol
// to scatter batched lookups to shard servers; results travel as
// WireElement values that round-trip graph.Element exactly (minus the
// provider-opaque Ref field, which is an optimization hint, not data).
package gserver

import (
	"context"
	"fmt"

	"db2graph/internal/graph"
	"db2graph/internal/graphenc"
	"db2graph/internal/sql/types"
)

// Graph-operation method names. Only set-oriented idempotent reads are
// exposed: scans plus the two BatchBackend multi-gets. Everything else a
// distributed executor needs (flat VertexEdges, EdgeVertices, aggregates)
// is derivable from these four on the coordinator side.
const (
	OpV                = "V"
	OpE                = "E"
	OpVerticesByIDs    = "VerticesByIDs"
	OpEdgesForVertices = "EdgesForVertices"
)

// Mutation method names. Unlike the reads above these are NOT idempotent and
// a transport failure after send leaves them indeterminate: callers (the
// cluster coordinator) must not retry them blindly. On a replicated shard
// they are accepted only by an unfenced primary whose epoch matches the
// request's (see replication.go).
const (
	OpAddVertex = "AddVertex"
	OpAddEdge   = "AddEdge"
)

// GraphOp is one remote backend read. Exactly one Method is named; IDs and
// Dir are consumed only by the methods that take them. Query serializes
// graph.Query directly (all fields are exported and JSON-exact, including
// the nil-vs-empty Projection distinction).
type GraphOp struct {
	// Method is one of the Op* constants.
	Method string `json:"method"`
	// IDs are the vertex ids for VerticesByIDs/EdgesForVertices.
	IDs []string `json:"ids,omitempty"`
	// Dir orients EdgesForVertices.
	Dir graph.Direction `json:"dir,omitempty"`
	// Query is the pushdown filter, applied with the semantics of the
	// named Backend method.
	Query *graph.Query `json:"query,omitempty"`
	// Element is the vertex/edge payload for AddVertex/AddEdge.
	Element *WireElement `json:"element,omitempty"`
	// OutVElement/InVElement carry full endpoint elements with AddEdge so a
	// shard that does not own an endpoint can upsert a ghost copy before
	// inserting the edge (dual-homed edge placement).
	OutVElement *WireElement `json:"outv_element,omitempty"`
	InVElement  *WireElement `json:"inv_element,omitempty"`
	// Epoch is the replication epoch the writer believes current; a
	// replicated server rejects mutations from another epoch with CodeFenced
	// so a deposed primary's clients cannot get acks. Zero skips the check
	// (direct single-node writes).
	Epoch uint64 `json:"epoch,omitempty"`
}

// WireElement is the JSON shape of a graph.Element. types.Value is a flat
// tagged union of exported fields, so properties round-trip bit-exactly
// (JSON encodes int64 digits literally and floats in shortest round-trip
// form). Ref is deliberately dropped: it is a provider-local optimization
// handle with no meaning across the wire.
type WireElement struct {
	ID     string                 `json:"id"`
	Label  string                 `json:"label,omitempty"`
	Props  map[string]types.Value `json:"props,omitempty"`
	IsEdge bool                   `json:"edge,omitempty"`
	OutV   string                 `json:"out,omitempty"`
	InV    string                 `json:"in,omitempty"`
	Table  string                 `json:"table,omitempty"`
}

// ToWire converts one element; nil maps to nil (aligned-slot semantics).
func ToWire(el *graph.Element) *WireElement {
	if el == nil {
		return nil
	}
	return &WireElement{
		ID: el.ID, Label: el.Label, Props: el.Props,
		IsEdge: el.IsEdge, OutV: el.OutV, InV: el.InV, Table: el.Table,
	}
}

// FromWire converts one wire element back; nil maps to nil.
func (w *WireElement) FromWire() *graph.Element {
	if w == nil {
		return nil
	}
	return &graph.Element{
		ID: w.ID, Label: w.Label, Props: w.Props,
		IsEdge: w.IsEdge, OutV: w.OutV, InV: w.InV, Table: w.Table,
	}
}

// ToWireElements converts an element slice, preserving nil slots. All wire
// elements share one backing array sized from the batch, so a group of n
// elements costs two allocations instead of n+1.
func ToWireElements(els []*graph.Element) []*WireElement {
	if els == nil {
		return nil
	}
	out := make([]*WireElement, len(els))
	backing := make([]WireElement, len(els))
	for i, el := range els {
		if el == nil {
			continue
		}
		backing[i] = WireElement{
			ID: el.ID, Label: el.Label, Props: el.Props,
			IsEdge: el.IsEdge, OutV: el.OutV, InV: el.InV, Table: el.Table,
		}
		out[i] = &backing[i]
	}
	return out
}

// FromWireElements converts a wire slice back, preserving nil slots.
func FromWireElements(ws []*WireElement) []*graph.Element {
	if ws == nil {
		return nil
	}
	out := make([]*graph.Element, len(ws))
	for i, w := range ws {
		out[i] = w.FromWire()
	}
	return out
}

// graphOpResponse executes one graph operation against the server's batched
// backend view. Called from the query goroutine, so panics are isolated by
// the same recover as Gremlin execution and ctx carries the request
// deadline.
func (s *Server) graphOpResponse(ctx context.Context, op *GraphOp) Response {
	switch op.Method {
	case OpV:
		els, err := s.batch.V(ctx, op.Query)
		if err != nil {
			return errorResponse(err)
		}
		return Response{Elements: ToWireElements(els)}
	case OpE:
		els, err := s.batch.E(ctx, op.Query)
		if err != nil {
			return errorResponse(err)
		}
		return Response{Elements: ToWireElements(els)}
	case OpVerticesByIDs:
		els, err := s.batch.VerticesByIDs(ctx, op.IDs, op.Query)
		if err != nil {
			return errorResponse(err)
		}
		// Vertex batches travel columnar: one column header per property
		// key shared across the batch instead of per-row JSON maps. The
		// client reassembles the aligned slice via Response.VertexElements.
		return Response{Columns: graphenc.AppendColumns(nil, graph.ColumnizeVertices(els))}
	case OpEdgesForVertices:
		groups, err := s.batch.EdgesForVertices(ctx, op.IDs, op.Dir, op.Query)
		if err != nil {
			return errorResponse(err)
		}
		wire := make([][]*WireElement, len(groups))
		for i, g := range groups {
			wire[i] = ToWireElements(g)
		}
		return Response{Groups: wire}
	case OpAddVertex, OpAddEdge:
		return s.applyMutation(ctx, op)
	default:
		return Response{Code: CodeBadRequest, Error: fmt.Sprintf("unknown graph op %q", op.Method)}
	}
}

// VertexElements returns the aligned vertex rows of a VerticesByIDs
// response, decoding the columnar payload when present and falling back to
// the row-oriented Elements form (older servers, V/E responses). Slot
// alignment is preserved either way: unresolved ids stay nil.
func (r *Response) VertexElements() ([]*graph.Element, error) {
	if len(r.Columns) > 0 {
		cb, err := graphenc.DecodeColumns(r.Columns)
		if err != nil {
			return nil, fmt.Errorf("gserver: bad columnar vertex payload: %w", err)
		}
		return graph.VerticesFromColumns(cb), nil
	}
	return FromWireElements(r.Elements), nil
}

// GraphOp is GraphOpCtx without a caller context.
func (c *Client) GraphOp(op GraphOp) (Response, error) {
	return c.GraphOpCtx(context.Background(), op)
}

// GraphOpCtx performs one remote backend read under the client's full
// deadline/retry policy and returns the raw Response (Elements for
// V/E/VerticesByIDs, Groups for EdgesForVertices). Server-side failures
// carry their typed sentinel for errors.Is, exactly like SubmitCtx.
func (c *Client) GraphOpCtx(ctx context.Context, op GraphOp) (Response, error) {
	return c.do(ctx, Request{GraphOp: &op})
}
