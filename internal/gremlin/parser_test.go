package gremlin

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"db2graph/internal/graph"
	"db2graph/internal/sql/types"
)

func parse(t *testing.T, g *Source, text string) *Traversal {
	t.Helper()
	tr, err := ParseTraversal(g, text, nil)
	if err != nil {
		t.Fatalf("ParseTraversal(%q): %v", text, err)
	}
	return tr
}

func TestParseBasicTraversals(t *testing.T) {
	g := testGraph(t)
	eq(t, ids(t, parse(t, g, "g.V().hasLabel('patient')")), "p1", "p2", "p3")
	eq(t, ids(t, parse(t, g, "g.V('p1').out('hasDisease')")), "d11")
	eq(t, ids(t, parse(t, g, "g.V('p1').outE('hasDisease').inV()")), "d11")
	eq(t, ids(t, parse(t, g, "g.E().hasLabel('hasDisease')")), "e1", "e2", "e3")
	eq(t, ids(t, parse(t, g, "g.V().has('name', 'Alice')")), "p1")
	eq(t, ids(t, parse(t, g, "g.V().has('patientID', 2)")), "p2")
}

func TestParsePredicates(t *testing.T) {
	g := testGraph(t)
	eq(t, ids(t, parse(t, g, "g.V().has('patientID', gt(1))")), "p2", "p3")
	eq(t, ids(t, parse(t, g, "g.V().has('patientID', within(1, 3))")), "p1", "p3")
	eq(t, ids(t, parse(t, g, "g.V().has('patientID', lte(1))")), "p1")
	eq(t, ids(t, parse(t, g, "g.V().hasId('p2', 'd10')")), "d10", "p2")
	eq(t, ids(t, parse(t, g, "g.V().hasLabel('patient').has('name')")), "p1", "p2", "p3")
	eq(t, ids(t, parse(t, g, "g.V().hasLabel('disease').hasNot('conceptName')")))
}

func TestParseAggregates(t *testing.T) {
	g := testGraph(t)
	res, err := parse(t, g, "g.V().hasLabel('patient').count()").Next()
	if err != nil {
		t.Fatal(err)
	}
	if res.(types.Value).I != 3 {
		t.Fatalf("count = %v", res)
	}
	res, _ = parse(t, g, "g.V().hasLabel('patient').values('subscriptionID').mean()").Next()
	if res.(types.Value).F != 200 {
		t.Fatalf("mean = %v", res)
	}
}

func TestParseLinkBenchShapes(t *testing.T) {
	g := testGraph(t)
	// getNode
	eq(t, ids(t, parse(t, g, "g.V('p1').hasLabel('patient')")), "p1")
	// countLinks
	res, err := parse(t, g, "g.V('p1').outE('hasDisease').count()").Next()
	if err != nil || res.(types.Value).I != 1 {
		t.Fatalf("countLinks = %v, %v", res, err)
	}
	// getLink with the paper's filter syntax
	eq(t, ids(t, parse(t, g, "g.V('p1').outE('hasDisease').filter(inV().id() == 'd11')")), "e1")
	eq(t, ids(t, parse(t, g, "g.V('p1').outE('hasDisease').filter(inV().id() == 'd99')")))
	// getLinkList
	eq(t, ids(t, parse(t, g, "g.V('p1').outE('hasDisease')")), "e1")
}

func TestParseRepeatStoreCap(t *testing.T) {
	g := testGraph(t)
	res, err := parse(t, g,
		"g.V('p1').out('hasDisease').repeat(out('isa').dedup().store('x')).times(2).cap('x')").Next()
	if err != nil {
		t.Fatal(err)
	}
	list := res.([]any)
	var got []string
	for _, o := range list {
		got = append(got, o.(*graph.Element).ID)
	}
	sort.Strings(got)
	eq(t, got, "d10", "d9")
}

func TestParseWhereUnionOrderLimit(t *testing.T) {
	g := testGraph(t)
	eq(t, ids(t, parse(t, g, "g.V().hasLabel('patient').where(out('hasDisease').out('isa'))")), "p1", "p2")
	eq(t, ids(t, parse(t, g, "g.V().hasLabel('patient').not(out('hasDisease').out('isa'))")), "p3")
	eq(t, ids(t, parse(t, g, "g.V('d11').union(out('isa'), in('isa'))")), "d10", "d13")
	vals, err := parse(t, g, "g.V().hasLabel('patient').values('name').order().limit(2)").ToValues()
	if err != nil || len(vals) != 2 || vals[0].Text() != "Alice" {
		t.Fatalf("order/limit = %v, %v", vals, err)
	}
	vals, err = parse(t, g, "g.V().hasLabel('patient').order().by('name', desc).values('name')").ToValues()
	if err != nil || vals[0].Text() != "Carol" {
		t.Fatalf("order by desc = %v, %v", vals, err)
	}
}

func TestParseValueMapSelectPath(t *testing.T) {
	g := testGraph(t)
	objs, err := parse(t, g, "g.V('p1').valueMap('name')").ToList()
	if err != nil {
		t.Fatal(err)
	}
	if m := objs[0].(map[string]types.Value); m["name"].Text() != "Alice" {
		t.Fatalf("valueMap = %v", m)
	}
	objs, err = parse(t, g, "g.V('p1').as('a').out('hasDisease').as('b').select('a', 'b')").ToList()
	if err != nil {
		t.Fatal(err)
	}
	m := objs[0].(map[string]any)
	if m["a"].(*graph.Element).ID != "p1" {
		t.Fatalf("select = %v", m)
	}
	objs, err = parse(t, g, "g.V('p1').out('hasDisease').path()").ToList()
	if err != nil || len(objs[0].([]any)) != 2 {
		t.Fatalf("path = %v, %v", objs, err)
	}
	obj, err := parse(t, g, "g.V().label().groupCount()").Next()
	if err != nil || obj.(map[string]int64)["patient"] != 3 {
		t.Fatalf("groupCount = %v, %v", obj, err)
	}
}

func TestParseUnderscorePrefix(t *testing.T) {
	g := testGraph(t)
	eq(t, ids(t, parse(t, g, "g.V().hasLabel('patient').where(__.out('hasDisease').hasId('d11'))")), "p1")
}

func TestParseVariables(t *testing.T) {
	g := testGraph(t)
	env := map[string]any{"target": "p2", "idlist": []any{"p1", "p3"}}
	tr, err := ParseTraversal(g, "g.V(target)", env)
	if err != nil {
		t.Fatal(err)
	}
	eq(t, ids(t, tr), "p2")
	tr, err = ParseTraversal(g, "g.V(idlist)", env)
	if err != nil {
		t.Fatal(err)
	}
	eq(t, ids(t, tr), "p1", "p3")
	tr, err = ParseTraversal(g, "g.V().has('patientID', target)", map[string]any{"target": int64(2)})
	if err != nil {
		t.Fatal(err)
	}
	eq(t, ids(t, tr), "p2")
}

func TestParseErrors(t *testing.T) {
	g := testGraph(t)
	bad := []string{
		"",
		"h.V()",
		"g.X()",
		"g.V(",
		"g.V().nosuchstep()",
		"g.V().has()",
		"g.V().limit('x')",
		"g.V().repeat(out()).times('x')",
		"g.V().where(g.V())", // rooted traversal as sub
		"g.V() trailing",
		"g.V().out('unterminated",
		"g.V(unknownvar)",
		"g.V().union(1)",
	}
	for _, text := range bad {
		if _, err := ParseTraversal(g, text, nil); err == nil {
			t.Errorf("ParseTraversal(%q) succeeded, want error", text)
		}
	}
}

func TestRunScriptPaperExample(t *testing.T) {
	g := testGraph(t)
	script := `
	similar_diseases = g.V().hasLabel('patient').has('patientID', 1).out('hasDisease')
	  .repeat(out('isa').dedup().store('x')).times(2)
	  .repeat(in('isa').dedup().store('x')).times(2).cap('x').next();
	g.V(similar_diseases).in('hasDisease').dedup().values('patientID', 'subscriptionID')`
	results, err := RunScript(g, script, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ResultsToRows(results, []string{"patientID", "subscriptionID"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	got := map[int64]int64{}
	for _, r := range rows {
		got[r[0].I] = r[1].I
	}
	if got[1] != 100 || got[2] != 200 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestRunScriptSingleStatement(t *testing.T) {
	g := testGraph(t)
	results, err := RunScript(g, "g.V().hasLabel('patient').count()", nil)
	if err != nil || len(results) != 1 {
		t.Fatalf("results = %v, %v", results, err)
	}
	if results[0].(types.Value).I != 3 {
		t.Fatalf("count = %v", results[0])
	}
}

func TestRunScriptErrors(t *testing.T) {
	g := testGraph(t)
	bad := []string{
		"",
		";",
		"x = ",
		"g.V('nope').next(); g.V()", // next() on empty
		"g.V().bad()",
	}
	for _, s := range bad {
		if _, err := RunScript(g, s, nil); err == nil {
			t.Errorf("RunScript(%q) succeeded, want error", s)
		}
	}
}

func TestRunScriptEnvNotMutated(t *testing.T) {
	g := testGraph(t)
	env := map[string]any{"x": "p1"}
	_, err := RunScript(g, "x = g.V('p2').next(); g.V(x)", env)
	if err != nil {
		t.Fatal(err)
	}
	if env["x"] != "p1" {
		t.Fatal("caller env mutated")
	}
}

func TestResultsToRowsShapes(t *testing.T) {
	// Element rows: id, label, property.
	el := &graph.Element{ID: "v1", Label: "patient", Props: map[string]types.Value{"name": types.NewString("A")}}
	rows, err := ResultsToRows([]any{el}, []string{"id", "label", "name"})
	if err != nil || len(rows) != 1 || rows[0][2].Text() != "A" {
		t.Fatalf("element rows = %v, %v", rows, err)
	}
	// Scalar folding.
	rows, err = ResultsToRows([]any{
		types.NewInt(1), types.NewInt(100), types.NewInt(2), types.NewInt(200),
	}, []string{"a", "b"})
	if err != nil || len(rows) != 2 || rows[1][1].I != 200 {
		t.Fatalf("scalar rows = %v, %v", rows, err)
	}
	// Leftover values error.
	if _, err := ResultsToRows([]any{types.NewInt(1)}, []string{"a", "b"}); err == nil {
		t.Fatal("leftover values should error")
	}
	// Value maps.
	rows, err = ResultsToRows([]any{map[string]types.Value{"a": types.NewInt(7)}}, []string{"a", "b"})
	if err != nil || rows[0][0].I != 7 || !rows[0][1].IsNull() {
		t.Fatalf("map rows = %v, %v", rows, err)
	}
	// Unsupported type.
	if _, err := ResultsToRows([]any{struct{}{}}, []string{"a"}); err == nil {
		t.Fatal("unsupported type should error")
	}
}

func TestDisplayRendersShapes(t *testing.T) {
	el := &graph.Element{ID: "v1", Label: "x"}
	if !strings.Contains(Display(el), "v1") {
		t.Fatal("Display element")
	}
	if Display(types.NewInt(3)) != "3" {
		t.Fatal("Display value")
	}
	if Display([]any{types.NewInt(1), types.NewInt(2)}) != "[1, 2]" {
		t.Fatal("Display list")
	}
	if Display(map[string]int64{"a": 1}) != "{a:1}" {
		t.Fatal("Display counts")
	}
	if Display(map[string]types.Value{"k": types.NewString("v")}) != "{k:v}" {
		t.Fatal("Display map")
	}
}

func TestParseEdgeEndSteps(t *testing.T) {
	g := testGraph(t)
	eq(t, ids(t, parse(t, g, "g.V('d11').bothE('isa').otherV()")), "d10", "d13")
	eq(t, ids(t, parse(t, g, "g.E('e4').bothV()")), "d10", "d11")
	eq(t, ids(t, parse(t, g, "g.E('e4').outV()")), "d11")
	eq(t, ids(t, parse(t, g, "g.V('p1').bothE()")), "e1")
}

func TestParseValueMapTrue(t *testing.T) {
	g := testGraph(t)
	objs, err := parse(t, g, "g.V('p1').valueMap(true, 'name')").ToList()
	if err != nil {
		t.Fatal(err)
	}
	m := objs[0].(map[string]types.Value)
	if m["~id"].Text() != "p1" || m["~label"].Text() != "patient" || m["name"].Text() != "Alice" {
		t.Fatalf("valueMap(true) = %v", m)
	}
}

func TestParseIsAndConstant(t *testing.T) {
	g := testGraph(t)
	vals, err := parse(t, g, "g.V().hasLabel('patient').values('patientID').is(gt(1))").ToValues()
	if err != nil || len(vals) != 2 {
		t.Fatalf("is(gt(1)) = %v, %v", vals, err)
	}
	vals, err = parse(t, g, "g.V('p1').constant('marker')").ToValues()
	if err != nil || vals[0].Text() != "marker" {
		t.Fatalf("constant = %v, %v", vals, err)
	}
}

func TestParseSimplePathAndPath(t *testing.T) {
	g := testGraph(t)
	objs, err := parse(t, g, "g.V('d13').out('isa').out('isa').simplePath().path()").ToList()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || len(objs[0].([]any)) != 3 {
		t.Fatalf("paths = %v", objs)
	}
}

func TestParseAggregateAlias(t *testing.T) {
	// aggregate('x') is accepted as an alias of store('x').
	g := testGraph(t)
	res, err := parse(t, g, "g.V('p1').out('hasDisease').aggregate('x').cap('x')").Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.([]any)) != 1 {
		t.Fatalf("cap = %v", res)
	}
}

func TestParseLimitOnEdges(t *testing.T) {
	g := testGraph(t)
	objs, err := parse(t, g, "g.E().limit(2)").ToList()
	if err != nil || len(objs) != 2 {
		t.Fatalf("limit = %v, %v", objs, err)
	}
}

// Property: the Gremlin lexer/parser never panics on arbitrary input.
func TestGremlinParserNeverPanicsQuick(t *testing.T) {
	g := testGraph(t)
	f := func(input string) bool {
		_, _ = ParseTraversal(g, input, nil)
		_, _ = RunScript(g, input, nil)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
	for _, frag := range []string{
		"g.", "g.V(", "g.V().", "g.V().has(", "g.V().has('a',", "__", "__.",
		"g.V().repeat(", "g.V().where(out(", ";;;", "x =", "= g.V()",
		"g.V().filter(inV().id() ==", "g.V().order().by(",
	} {
		_, _ = ParseTraversal(g, frag, nil)
		_, _ = RunScript(g, frag, nil)
	}
}
