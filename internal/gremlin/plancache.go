package gremlin

import (
	"container/list"
	"sync"
	"sync/atomic"

	"db2graph/internal/graph"
)

// DefaultPlanCacheEntries bounds a PlanCache built with capacity <= 0. Plans
// are small (a few step structs per script), so the bound exists to cap
// pathological workloads that generate unbounded distinct script texts, not
// to manage memory precisely.
const DefaultPlanCacheEntries = 256

// PlanCache is an LRU cache of compiled traversal plans, keyed by the
// *normalized shape* of the script (literals at value positions rendered as
// "?" — see prepared.go) plus the backend's configuration version, the
// statistics epoch the plan was costed under, and whether strategy rewriting
// was disabled. A hit skips the strategy rewrite and cost model: the cached
// plan is the post-strategy, post-cost step list, rebound to the call's
// literal values and executed.
//
// Historical note (documented in DESIGN.md §11): before the cost-based
// planner PR the key was the *exact script text*, so a literal-varying
// workload — g.V('p1').out(), g.V('p2').out(), ... — missed on every request
// and recompiled from scratch. Shape keying lets all literal variants of one
// script share a single compiled template.
//
// Cacheability (decided by RunScriptCtx): a script compiles to a reusable
// plan only when it is a single statement, binds no variable, and references
// none — variable references splice caller-provided values into the plan, so
// those scripts recompile every run. Keying by ConfigVersion means plans
// compiled against an older overlay configuration are never reused after a
// DDL-driven remap (backends without a config version key everything at 0);
// keying by stats epoch retires plans costed under stale statistics the same
// way after an ANALYZE.
//
// Cached step lists are shared by concurrent executions; the engine treats
// plans as read-only after the strategy rewrite (see Traversal.planned), and
// parameter rebinding operates on a private clone (bindParams).
type PlanCache struct {
	cap int

	mu      sync.Mutex
	entries map[planKey]*list.Element
	lru     list.List // front = most recently used

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	// invalidations counts explicit flushes (version-mismatched entries age
	// out of the LRU instead, counted as evictions).
	invalidations atomic.Int64
}

// planKey identifies one compiled plan.
type planKey struct {
	// shape is the normalized script: tokens space-joined with parameterized
	// literals rendered as "?" (renderShape), or the exact script text when
	// normalization is unavailable (shapeSafe false).
	shape   string
	config  uint64
	nostrat bool
	// stats is the statistics epoch the plan was costed under (0 = no
	// statistics; plan is the static strategy output).
	stats uint64
}

// cachedPlan is the compiled form of a cacheable script: the post-strategy,
// post-cost step list (with parameter markers in value slots), the number of
// parameters the shape binds, and the terminal method that closed the chain.
type cachedPlan struct {
	key     planKey
	steps   []Step
	nparams int
	term    terminalKind
}

// NewPlanCache creates a plan cache bounded to capacity entries (<=0 uses
// DefaultPlanCacheEntries).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheEntries
	}
	return &PlanCache{cap: capacity, entries: make(map[planKey]*list.Element)}
}

// get returns the cached plan for k, promoting it to most recently used.
func (c *PlanCache) get(k planKey) (*cachedPlan, bool) {
	c.mu.Lock()
	el, ok := c.entries[k]
	if ok {
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*cachedPlan), true
}

// put inserts a compiled plan, evicting the least recently used entry at
// capacity.
func (c *PlanCache) put(p *cachedPlan) {
	c.mu.Lock()
	if el, ok := c.entries[p.key]; ok {
		el.Value = p
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	if c.lru.Len() >= c.cap {
		if back := c.lru.Back(); back != nil {
			delete(c.entries, back.Value.(*cachedPlan).key)
			c.lru.Remove(back)
			c.evictions.Add(1)
		}
	}
	c.entries[p.key] = c.lru.PushFront(p)
	c.mu.Unlock()
}

// Flush drops every cached plan (the gserver !flushcaches control request).
func (c *PlanCache) Flush() {
	c.mu.Lock()
	n := c.lru.Len()
	c.entries = make(map[planKey]*list.Element)
	c.lru.Init()
	c.mu.Unlock()
	c.invalidations.Add(int64(n))
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() graph.CacheStats {
	c.mu.Lock()
	n := c.lru.Len()
	c.mu.Unlock()
	return graph.CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       int64(n),
	}
}
