package gremlin

import (
	"strconv"
	"strings"

	"db2graph/internal/graph"
	"db2graph/internal/sql/types"
)

// Prepared traversals: the plan cache keys on a *normalized shape* of the
// script instead of the exact text, so literal-varying workloads
// (g.V('p1')..., g.V('p2')..., ...) share one compiled plan.
//
// During a cacheable parse the parser runs in paramize mode: literals at
// value positions (ids, predicate operands, is()/constant() scalars) are
// lifted into an ordered parameter list and replaced in the compiled plan by
// marker strings. The cache key is the token stream with those literals
// rendered as "?" — "?" cannot appear in valid Gremlin (the lexer rejects
// it), so a shape can never collide with a real script. At execution time
// bindParams clones the cached template and substitutes the call's literals
// back into the marker slots.
//
// Structural literals — labels, property keys, limit()/times() counts,
// as()/select()/by() names — are never parameterized: they change the plan
// the strategies and the cost model produce, so they stay part of the shape.

// paramMarkerPrefix tags a parameter slot inside a compiled plan template.
// The NUL bytes keep it disjoint from any script-supplied string (the HasKey
// absent-sentinel "\x00gremlin-absent\x00" shares only "\x00g").
const paramMarkerPrefix = "\x00gp\x00"

// paramMarker renders the placeholder stored in the template for parameter i.
func paramMarker(i int) string { return paramMarkerPrefix + strconv.Itoa(i) }

// paramIndex decodes a marker string; ok is false for ordinary strings.
func paramIndex(s string) (int, bool) {
	if !strings.HasPrefix(s, paramMarkerPrefix) {
		return 0, false
	}
	n, err := strconv.Atoi(s[len(paramMarkerPrefix):])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// paramValueIndex decodes a marker carried in a types.Value.
func paramValueIndex(v types.Value) (int, bool) {
	if v.Kind != types.KindString {
		return 0, false
	}
	return paramIndex(v.S)
}

// shapeSafe reports whether the token stream may be parameterized: a script
// string literal that itself contains the marker prefix could forge a
// parameter slot, so such scripts fall back to exact-text keying.
func shapeSafe(toks []gtok) bool {
	for _, t := range toks {
		if t.kind == gtokString && strings.Contains(t.text, paramMarkerPrefix) {
			return false
		}
	}
	return true
}

// renderShape renders the normalized cache key: the token stream with every
// parameterized literal replaced by "?". Tokens are space-joined, strings
// quoted, so distinct scripts cannot render to the same shape.
func renderShape(toks []gtok, paramToks map[int]bool) string {
	var b strings.Builder
	for i, t := range toks {
		if t.kind == gtokEOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		if paramToks[i] {
			b.WriteByte('?')
			continue
		}
		if t.kind == gtokString {
			b.WriteString(strconv.Quote(t.text))
			continue
		}
		b.WriteString(t.text)
	}
	return b.String()
}

// bindParams clones a cached plan template and substitutes the call's
// literal values into its parameter slots. The template itself is never
// mutated, so concurrent executions of the same cached plan are safe.
func bindParams(steps []Step, params []types.Value) []Step {
	bound := cloneSteps(steps)
	rebindSteps(bound, params)
	return bound
}

func rebindSteps(steps []Step, params []types.Value) {
	for _, s := range steps {
		switch x := s.(type) {
		case *GraphStep:
			rebindQuery(x.Query, params)
		case *VertexStep:
			rebindIDs(x.SeedIDs, params)
			rebindQuery(x.Query, params)
			rebindQuery(x.VQuery, params)
		case *EdgeVertexStep:
			rebindQuery(x.Query, params)
		case *HasStep:
			for i := range x.Preds {
				rebindPred(&x.Preds[i], params)
			}
		case *ConstantStep:
			if idx, ok := paramValueIndex(x.Value); ok {
				x.Value = params[idx]
			}
		case *IsStep:
			if idx, ok := paramValueIndex(x.Value); ok {
				x.Value = params[idx]
			}
		case *RepeatStep:
			rebindSteps(x.Body, params)
			rebindSteps(x.Until, params)
		case *WhereStep:
			rebindSteps(x.Sub, params)
		case *UnionStep:
			for _, b := range x.Branches {
				rebindSteps(b, params)
			}
		}
	}
}

// rebindQuery substitutes parameter slots inside a pushdown query. The
// query is already a private clone (cloneSteps ran Query.Clone), so IDs and
// the Preds slice may be written in place; only Pred.Values inner slices are
// still shared with the template and need copy-on-write (rebindPred).
func rebindQuery(q *graph.Query, params []types.Value) {
	if q == nil {
		return
	}
	rebindIDs(q.IDs, params)
	for i := range q.Preds {
		rebindPred(&q.Preds[i], params)
	}
}

// rebindIDs substitutes marker strings in an id list in place. Non-string
// parameters bind via their text form, matching how toIDList renders ids.
func rebindIDs(ids []string, params []types.Value) {
	for i, id := range ids {
		if idx, ok := paramIndex(id); ok {
			ids[i] = params[idx].Text()
		}
	}
}

// rebindPred substitutes parameter slots in one predicate. Values is shared
// with the cached template (Query.Clone keeps the inner slice), so it is
// copied before the first substitution.
func rebindPred(pr *graph.Pred, params []types.Value) {
	if idx, ok := paramValueIndex(pr.Value); ok {
		pr.Value = params[idx]
	}
	copied := false
	for i, v := range pr.Values {
		idx, ok := paramValueIndex(v)
		if !ok {
			continue
		}
		if !copied {
			pr.Values = append([]types.Value(nil), pr.Values...)
			copied = true
		}
		pr.Values[i] = params[idx]
	}
}
