package gremlin

import (
	"context"
	"errors"
	"testing"
	"time"

	"db2graph/internal/graph"
)

// FuzzParseGremlin drives arbitrary input through the Gremlin lexer,
// parser, and — when a statement parses — the (parallel) traversal engine
// over a small graph with a tight budget. The engine converts its own
// panics to *PanicError, so the target re-raises those as fuzz failures;
// everything else may error freely but must not crash or hang.
func FuzzParseGremlin(f *testing.F) {
	for _, seed := range []string{
		"g.V()",
		"g.V('p1').outE('hasDisease').inV()",
		"g.V().hasLabel('patient').out().dedup().count()",
		"g.V().has('patientID', 2).values('name')",
		"g.V().where(__.out('isa')).valueMap()",
		"g.V('d13').repeat(__.out('isa')).until(__.has('conceptName', 'diabetes')).path()",
		"g.V().union(__.out(), __.in()).groupCount()",
		"g.V($x).bothE().otherV().simplePath().limit(3)",
		"g.E().hasLabel('isa').outV().order().by('conceptName', desc)",
		"g.V().out().profile()",
		"g.V().values('patientID').is(gt(1)).sum()",
		"g.V(; broken",
		"g.V().repeat(__.both())",
	} {
		f.Add(seed)
	}
	vs, es := testElements()
	m := graph.NewMemBackend()
	for _, v := range vs {
		if err := m.AddVertex(v); err != nil {
			f.Fatal(err)
		}
	}
	for _, e := range es {
		if err := m.AddEdge(e); err != nil {
			f.Fatal(err)
		}
	}
	src := NewSource(m).
		WithParallelism(2).
		WithLimits(graph.Limits{MaxTraversers: 1 << 12, MaxRepeatIters: 8, MaxResults: 1 << 12})
	env := map[string]any{"x": "p1", "ids": []string{"p1", "d10"}}
	f.Fuzz(func(t *testing.T, script string) {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		defer cancel()
		_, err := RunScriptCtx(ctx, src, script, env)
		var pe *PanicError
		if errors.As(err, &pe) {
			t.Fatalf("script %q panicked the engine: %v\n%s", script, pe.Value, pe.Stack)
		}
	})
}

// FuzzPreparedBinding differentially fuzzes the prepared-traversal pipeline:
// every script runs once against a plain source and twice against a source
// with statistics and a shape-keyed plan cache (cold compile, then warm
// rebinding of the cached template). Normalization, costing, and parameter
// rebinding must never change results, never panic the engine, and never let
// a marker-shaped literal corrupt a plan.
func FuzzPreparedBinding(f *testing.F) {
	for _, seed := range []string{
		"g.V('p1').out('hasDisease')",
		"g.V('p2').out('hasDisease').values('conceptName')",
		"g.V('d13', 'd11').out('isa').dedup().count()",
		"g.V().has('patientID', 2).values('name')",
		"g.V().has('patientID', within(1, 2, 3)).out()",
		"g.V().hasId('p1', 'd10').bothE().otherV()",
		"g.V().values('patientID').is(gt(1)).sum()",
		"g.V().constant('c').limit(2)",
		"g.V().has('name', 'quo\\'te').count()",
		"g.V().has('name', '\x00gp\x000')",
		"g.V('p1').repeat(__.out()).until(__.has('conceptName', 'diabetes'))",
		"g.V().union(__.out('isa'), __.in('hasDisease')).groupCount()",
		"g.V().where(__.out('isa')).has('conceptName', neq('x'))",
	} {
		f.Add(seed)
	}
	vs, es := testElements()
	m := graph.NewMemBackend()
	for _, v := range vs {
		if err := m.AddVertex(v); err != nil {
			f.Fatal(err)
		}
	}
	for _, e := range es {
		if err := m.AddEdge(e); err != nil {
			f.Fatal(err)
		}
	}
	limits := graph.Limits{MaxTraversers: 1 << 12, MaxRepeatIters: 8, MaxResults: 1 << 12}
	sp := graph.NewStatsProvider(m)
	if _, err := sp.Analyze(context.Background()); err != nil {
		f.Fatal(err)
	}
	plain := NewSource(m).WithParallelism(2).WithLimits(limits)
	f.Fuzz(func(t *testing.T, script string) {
		// Fresh cache per input so "warm" is exactly the second run of this
		// script, not leakage from an earlier input.
		prepared := NewSource(m).WithParallelism(2).WithLimits(limits).
			WithStats(sp).WithPlanCache(NewPlanCache(0))
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		checkPanic := func(err error) {
			var pe *PanicError
			if errors.As(err, &pe) {
				t.Fatalf("script %q panicked the engine: %v\n%s", script, pe.Value, pe.Stack)
			}
		}
		wantObjs, wantErr := RunScriptCtx(ctx, plain, script, nil)
		checkPanic(wantErr)
		for round := 0; round < 2; round++ {
			gotObjs, gotErr := RunScriptCtx(ctx, prepared, script, nil)
			checkPanic(gotErr)
			if ctx.Err() != nil {
				return // deadline: runs are no longer comparable
			}
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("script %q round %d: prepared err %v, plain err %v",
					script, round, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if got, want := render(gotObjs), render(wantObjs); got != want {
				t.Fatalf("script %q round %d diverged\n got: %s\nwant: %s",
					script, round, got, want)
			}
		}
	})
}

// testElements returns the Figure 2(b) dataset used by the engine tests as
// raw elements (the fuzz target cannot use testGraph's *testing.T helper).
func testElements() (vs, es []*graph.Element) {
	src := map[string][3]string{
		"e1": {"hasDisease", "p1", "d11"},
		"e2": {"hasDisease", "p2", "d10"},
		"e3": {"hasDisease", "p3", "d12"},
		"e4": {"isa", "d11", "d10"},
		"e5": {"isa", "d13", "d11"},
		"e6": {"isa", "d10", "d9"},
	}
	for _, id := range []string{"p1", "p2", "p3"} {
		vs = append(vs, &graph.Element{ID: id, Label: "patient"})
	}
	for _, id := range []string{"d9", "d10", "d11", "d12", "d13"} {
		vs = append(vs, &graph.Element{ID: id, Label: "disease"})
	}
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6"} {
		m := src[id]
		es = append(es, &graph.Element{ID: id, Label: m[0], OutV: m[1], InV: m[2], IsEdge: true})
	}
	return vs, es
}
