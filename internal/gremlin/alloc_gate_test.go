package gremlin

import (
	"encoding/json"
	"os"
	"testing"

	"db2graph/internal/graph"
)

// allocBaseline is the committed allocation budget for the hot expansion
// path (testdata/alloc_baseline.json). The gate fails when measured
// allocs/op regresses more than allocGateTolerance over the baseline;
// improvements are reported so the baseline can be ratcheted down.
type allocBaseline struct {
	// BatchedExpandNativePar1 is allocs/op of BenchmarkBatchedExpand
	// native/par=1 (the two-hop frontier expansion over the native batch
	// backend, serial engine).
	BatchedExpandNativePar1 int64 `json:"batched_expand_native_par1"`
}

const allocGateTolerance = 1.10

// TestBatchedExpandAllocBaseline is the allocation-regression gate wired to
// `make bench-alloc` (set BENCH_ALLOC_GATE=1 to run): it measures the
// benchmark body under testing.Benchmark and compares allocs/op against the
// committed baseline. Allocation counts are deterministic enough for a 10%
// tolerance — a pooling regression (a dropped sync.Pool, a lost slab reuse)
// shows up as a multiple, not a percentage.
func TestBatchedExpandAllocBaseline(t *testing.T) {
	if os.Getenv("BENCH_ALLOC_GATE") == "" {
		t.Skip("allocation gate skipped; set BENCH_ALLOC_GATE=1 (make bench-alloc) to run")
	}
	raw, err := os.ReadFile("testdata/alloc_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base allocBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}

	var m *graph.MemBackend
	res := testing.Benchmark(func(b *testing.B) {
		if m == nil {
			m = benchBackend(b, 2000)
		}
		src := NewSource(m).WithParallelism(1)
		trav := func() *Traversal { return src.V().Out("l0").Out().Count() }
		if _, err := trav().ToList(); err != nil { // warm caches and pools
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := trav().ToList(); err != nil {
				b.Fatal(err)
			}
		}
	})
	got := res.AllocsPerOp()
	limit := int64(float64(base.BatchedExpandNativePar1) * allocGateTolerance)
	t.Logf("BatchedExpand native/par=1: %d allocs/op (baseline %d, limit %d)",
		got, base.BatchedExpandNativePar1, limit)
	if got > limit {
		t.Fatalf("allocation regression: %d allocs/op exceeds baseline %d by more than %.0f%%",
			got, base.BatchedExpandNativePar1, (allocGateTolerance-1)*100)
	}
	if got < base.BatchedExpandNativePar1*9/10 {
		t.Logf("note: measured allocs/op is >10%% below baseline; consider ratcheting testdata/alloc_baseline.json down to %d", got)
	}
}
