package gremlin

import (
	"db2graph/internal/graph"
)

// Strategy is a traversal-plan rewrite, the equivalent of a TinkerPop
// provider strategy. Strategies run in order over the flat step list of a
// traversal (and, recursively, over nested sub-traversals).
type Strategy interface {
	// Name identifies the strategy.
	Name() string
	// Apply rewrites a step plan.
	Apply(steps []Step) []Step
}

// StandardStrategies returns the four optimized traversal strategies of the
// paper (Section 6.2) in their canonical application order:
// GraphStep::VertexStep mutation, predicate pushdown, projection pushdown,
// and aggregate pushdown.
func StandardStrategies() []Strategy {
	return []Strategy{
		GraphStepVertexStepStrategy{},
		PredicatePushdownStrategy{},
		ProjectionPushdownStrategy{},
		AggregatePushdownStrategy{},
	}
}

// applyStrategies rewrites the plan with every strategy, recursing into
// container steps (repeat bodies, where/union branches).
func applyStrategies(steps []Step, strategies []Strategy) []Step {
	out := append([]Step{}, steps...)
	for _, st := range strategies {
		out = st.Apply(out)
	}
	for i, s := range out {
		switch x := s.(type) {
		case *RepeatStep:
			cp := *x
			cp.Body = applySubStrategies(x.Body, strategies)
			cp.Until = applySubStrategies(x.Until, strategies)
			out[i] = &cp
		case *WhereStep:
			cp := *x
			cp.Sub = applySubStrategies(x.Sub, strategies)
			out[i] = &cp
		case *UnionStep:
			cp := *x
			cp.Branches = make([][]Step, len(x.Branches))
			for j, b := range x.Branches {
				cp.Branches[j] = applySubStrategies(b, strategies)
			}
			out[i] = &cp
		}
	}
	return out
}

// applySubStrategies rewrites a nested traversal. The GraphStep::VertexStep
// mutation never applies inside (sub-traversals start from incoming
// traversers, not from g.V()), but the pushdown strategies do.
func applySubStrategies(steps []Step, strategies []Strategy) []Step {
	return applyStrategies(steps, strategies)
}

// isGSA reports whether a step accesses the graph structure and returns its
// pushdown query (the edge-level query for VertexStep).
func gsaQuery(s Step) (*graph.Query, bool) {
	switch x := s.(type) {
	case *GraphStep:
		if x.Query == nil {
			x.Query = &graph.Query{}
		}
		return x.Query, true
	case *VertexStep:
		if x.Query == nil {
			x.Query = &graph.Query{}
		}
		return x.Query, true
	case *EdgeVertexStep:
		if x.Query == nil {
			x.Query = &graph.Query{}
		}
		return x.Query, true
	default:
		return nil, false
	}
}

// elementQuery returns the query describing the elements a step EMITS:
// for out()/in()/both() that is the vertex-side VQuery, not the edge query.
func elementQuery(s Step) (*graph.Query, bool) {
	if vs, ok := s.(*VertexStep); ok && !vs.ReturnEdges {
		if vs.VQuery == nil {
			vs.VQuery = &graph.Query{}
		}
		return vs.VQuery, true
	}
	return gsaQuery(s)
}

// foldPred merges a predicate into a query, routing reserved keys to the
// dedicated fields when possible.
func foldPred(q *graph.Query, p graph.Pred) {
	// Label and id restrictions go to the dedicated fields only when the
	// query has none yet — the fields are disjunctive internally, so a
	// second restriction must stay a conjunctive predicate (backends
	// evaluate reserved keys in Preds via Pred.Matches or translate them).
	switch {
	case p.Key == graph.KeyLabel && p.Op == graph.OpEq && len(q.Labels) == 0:
		q.Labels = append(q.Labels, p.Value.Text())
	case p.Key == graph.KeyLabel && p.Op == graph.OpWithin && len(q.Labels) == 0:
		for _, v := range p.Values {
			q.Labels = append(q.Labels, v.Text())
		}
	case p.Key == graph.KeyID && p.Op == graph.OpEq && len(q.IDs) == 0:
		q.IDs = append(q.IDs, p.Value.Text())
	case p.Key == graph.KeyID && p.Op == graph.OpWithin && len(q.IDs) == 0:
		for _, v := range p.Values {
			q.IDs = append(q.IDs, v.Text())
		}
	default:
		q.Preds = append(q.Preds, p)
	}
}

// PredicatePushdownStrategy folds HasSteps following a GSA step into the GSA
// step's query, so the backend evaluates them (for the Db2 Graph provider:
// inside the WHERE clause of the generated SQL).
type PredicatePushdownStrategy struct{}

// Name implements Strategy.
func (PredicatePushdownStrategy) Name() string { return "PredicatePushdown" }

// Apply implements Strategy.
func (PredicatePushdownStrategy) Apply(steps []Step) []Step {
	var out []Step
	for _, s := range steps {
		hs, isHas := s.(*HasStep)
		if isHas && len(out) > 0 {
			if q, ok := elementQuery(out[len(out)-1]); ok {
				// Folding an id/label restriction is only valid when the
				// query has no prior id restriction that it would widen.
				for _, p := range hs.Preds {
					foldPred(q, p)
				}
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// ProjectionPushdownStrategy narrows the properties a GSA step fetches when
// it is immediately followed by values()/valueMap() (for the Db2 Graph
// provider: a narrower SELECT list).
type ProjectionPushdownStrategy struct{}

// Name implements Strategy.
func (ProjectionPushdownStrategy) Name() string { return "ProjectionPushdown" }

// Apply implements Strategy.
func (ProjectionPushdownStrategy) Apply(steps []Step) []Step {
	for i := 1; i < len(steps); i++ {
		var keys []string
		switch x := steps[i].(type) {
		case *ValuesStep:
			keys = x.Keys
		case *ValueMapStep:
			if len(x.Keys) == 0 {
				continue // all properties needed
			}
			keys = x.Keys
		default:
			continue
		}
		if q, ok := elementQuery(steps[i-1]); ok && q.Projection == nil {
			q.Projection = append([]string{}, keys...)
		}
	}
	return steps
}

// AggregatePushdownStrategy folds terminal aggregations into the preceding
// GSA step: count() directly after a GSA step, or values(p) + sum/mean/min/
// max after it (for the Db2 Graph provider: SELECT COUNT(*)/SUM(p)/... in
// SQL).
type AggregatePushdownStrategy struct{}

// Name implements Strategy.
func (AggregatePushdownStrategy) Name() string { return "AggregatePushdown" }

// Apply implements Strategy.
func (AggregatePushdownStrategy) Apply(steps []Step) []Step {
	var out []Step
	for i := 0; i < len(steps); i++ {
		s := steps[i]
		agg, isAgg := s.(*AggregateStep)
		if isAgg && len(out) > 0 {
			prev := out[len(out)-1]
			// Pattern 1: GSA.count()
			if agg.Kind == graph.AggCount {
				if setPushAgg(prev, graph.Agg{Kind: graph.AggCount}) {
					continue
				}
			}
			// Pattern 2: GSA.values(p).<agg>()
			if vs, ok := prev.(*ValuesStep); ok && len(vs.Keys) == 1 && len(out) >= 2 {
				gsa := out[len(out)-2]
				if setPushAgg(gsa, graph.Agg{Kind: agg.Kind, Key: vs.Keys[0]}) {
					out = out[:len(out)-1] // drop the ValuesStep
					continue
				}
			}
		}
		out = append(out, s)
	}
	return out
}

// setPushAgg attaches an aggregate to a GSA step if it supports pushdown
// and has none yet.
func setPushAgg(s Step, agg graph.Agg) bool {
	switch x := s.(type) {
	case *GraphStep:
		if x.PushAgg == nil {
			x.PushAgg = &agg
			return true
		}
	case *VertexStep:
		// Aggregating vertices reached via out()/in() cannot be pushed as an
		// edge aggregate when the vertex side filters differ; only edge
		// steps (outE/inE/bothE) push down cleanly. For count() on out(),
		// the edge count equals the reached-vertex count only without
		// vertex-side filters.
		if x.PushAgg != nil {
			return false
		}
		if x.ReturnEdges {
			x.PushAgg = &agg
			return true
		}
		if agg.Kind == graph.AggCount && (x.VQuery == nil || queryIsEmpty(x.VQuery)) {
			x.PushAgg = &agg
			return true
		}
	}
	return false
}

func queryIsEmpty(q *graph.Query) bool {
	return len(q.IDs) == 0 && len(q.Labels) == 0 && len(q.Preds) == 0 && q.Limit == 0
}

// GraphStepVertexStepStrategy fuses g.V(ids).outE(...)-style prefixes: the
// initial vertex fetch is pure waste because the edge tables already hold
// the source vertex ids (Section 6.2's GraphStep::VertexStep mutation). The
// VertexStep becomes self-seeding from the ids.
type GraphStepVertexStepStrategy struct{}

// Name implements Strategy.
func (GraphStepVertexStepStrategy) Name() string { return "GraphStepVertexStep" }

// Apply implements Strategy.
func (GraphStepVertexStepStrategy) Apply(steps []Step) []Step {
	if len(steps) < 2 {
		return steps
	}
	gs, ok := steps[0].(*GraphStep)
	if !ok || gs.Kind != KindVertex || gs.PushAgg != nil {
		return steps
	}
	// Only fuse when the GraphStep is a pure id lookup: any label or
	// property restriction must be evaluated against the vertices.
	if gs.Query == nil || len(gs.Query.IDs) == 0 || len(gs.Query.Labels) > 0 ||
		len(gs.Query.Preds) > 0 || gs.Query.Limit > 0 {
		return steps
	}
	vs, ok := steps[1].(*VertexStep)
	if !ok || len(vs.SeedIDs) > 0 {
		return steps
	}
	// Fusing drops the vertex objects, so paths would lose an entry.
	if plansPaths(steps) {
		return steps
	}
	fused := *vs
	fused.SeedIDs = append([]string{}, gs.Query.IDs...)
	out := append([]Step{&fused}, steps[2:]...)
	return out
}

// Note on hasLabel after V(ids): TinkerPop evaluates hasLabel against the
// fetched vertices. Db2 Graph additionally uses the label to prune vertex
// tables at runtime (Section 6.3), which the provider implements inside its
// Backend.V.
