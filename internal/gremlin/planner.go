package gremlin

import (
	"fmt"
	"sort"

	"db2graph/internal/graph"
)

// The cost-based planner (ROADMAP item 3): after the rule-based strategies
// rewrite the plan, applyCost consults catalog statistics (graph.Stats) to
// make *physical* choices — multi-label fan-out order, index-vs-scan endpoint
// resolution per hop, and batch chunk sizing — and to annotate every step
// with a cardinality estimate for explain().
//
// Safety bar: statistics influence how a plan executes, never what it
// returns. Every decision below is result-identical by construction:
//
//   - Fan-out label order: VertexStep.Query.Labels is a set-membership
//     filter on every backend (the per-label iteration that makes order
//     observable exists only for root GraphStep scans, which the planner
//     deliberately does not reorder).
//   - ResolveScan: the distinct-id VerticesByIDs + hash-join resolution is
//     aligned-and-filtered exactly like per-edge EdgeVertices by the
//     BatchBackend conformance contract.
//   - BatchHint: chunked execution is position-preserving regardless of
//     chunk count (the serial==parallel bit-identity contract), and the
//     hint only applies when a worker pool is active.
//
// graphtest.RunPlannerDifferential proves the bit-identity on all four
// backends at parallelism 1/2/8.

// CostEst is the planner's cardinality estimate for one step, carried on the
// plan for explain() rendering only — execution never consults it.
type CostEst struct {
	// Rows is the estimated number of traversers leaving the step.
	Rows float64
	// Notes records the planner decisions taken at this step.
	Notes []string
}

// Cost-model tuning constants.
const (
	// predSelectivity is the assumed fraction of rows surviving one
	// property predicate (no per-property histograms yet).
	predSelectivity = 0.25
	// resolveScanDupRatio is the duplicate-endpoint ratio (edges per
	// distinct endpoint vertex) above which out()/in() endpoint resolution
	// switches to the distinct-id multi-get path.
	resolveScanDupRatio = 4.0
	// chunkHintTargetRows is the per-chunk output budget BatchHint aims
	// for: anchors per chunk ≈ target / estimated-rows-per-anchor.
	chunkHintTargetRows = 256
)

// applyCost runs the cost model over a strategy-rewritten plan in place,
// recursing into nested plans the way applyStrategies does. st must be
// non-nil; steps must already be private to this plan (cloned).
func applyCost(steps []Step, st *graph.Stats) {
	est := -1.0 // unknown incoming cardinality (anonymous sub-traversals)
	for _, s := range steps {
		est = costStep(s, st, est)
	}
}

// costStep applies planner decisions to one step and returns the estimated
// outgoing cardinality (-1 = unknown).
func costStep(s Step, st *graph.Stats, in float64) float64 {
	switch x := s.(type) {
	case *GraphStep:
		x.Est = &CostEst{}
		rows := 0.0
		if x.Query != nil && len(x.Query.IDs) > 0 {
			rows = float64(len(x.Query.IDs))
			x.Est.Notes = append(x.Est.Notes, "index: id lookup")
		} else {
			if x.Kind == KindVertex {
				rows = float64(labelRows(st.VertexCount, x.Query, func(l string) int64 { return st.VertexLabelCount(l) }))
			} else {
				rows = float64(labelRows(st.EdgeCount, x.Query, func(l string) int64 { return st.EdgeLabelCount(l) }))
			}
			x.Est.Notes = append(x.Est.Notes, "full scan")
		}
		rows = applyQueryEst(rows, x.Query)
		if x.PushAgg != nil {
			rows = 1
		}
		x.Est.Rows = rows
		return rows

	case *VertexStep:
		x.Est = &CostEst{}
		anchors := in
		if len(x.SeedIDs) > 0 {
			anchors = float64(len(x.SeedIDs))
		}
		perAnchor, dupRatio := fanoutEst(st, x.Dir, x.Query)

		// Decision 1: order a multi-label fan-out by ascending per-label
		// cardinality (cheapest first). Pure set semantics on the
		// adjacency filter — result order is anchor-major, not label-major.
		if x.Query != nil && len(x.Query.Labels) > 1 {
			orderLabelsByCardinality(x.Query.Labels, st)
			x.Est.Notes = append(x.Est.Notes, "labels ordered by cardinality")
		}

		// Decision 2: index-vs-scan endpoint resolution for out()/in().
		// When many edge hits share an endpoint, resolving the distinct
		// endpoint ids with one multi-get beats per-edge EdgeVertices.
		if !x.ReturnEdges && x.Dir != graph.DirBoth && dupRatio >= resolveScanDupRatio {
			x.ResolveScan = true
			x.Est.Notes = append(x.Est.Notes, fmt.Sprintf("scanresolve: distinct-endpoint multi-get (dup ratio %.1f)", dupRatio))
		}

		// Decision 3: size parallel chunks from estimated rows. A
		// high-fan-out hop over few anchors under-fills the worker pool at
		// the static per-chunk floor; cap anchors per chunk so each chunk
		// carries roughly chunkHintTargetRows estimated rows.
		if perAnchor > 0 {
			if hint := int(chunkHintTargetRows / perAnchor); hint < vertexChunkMin {
				if hint < 1 {
					hint = 1
				}
				x.BatchHint = hint
				x.Est.Notes = append(x.Est.Notes, fmt.Sprintf("chunk hint %d (est %.1f rows/anchor)", hint, perAnchor))
			}
		}

		rows := -1.0
		if anchors >= 0 && perAnchor >= 0 {
			rows = anchors * perAnchor
			rows = applyQueryEst(rows, x.Query)
			if !x.ReturnEdges {
				rows = applyQueryEst(rows, x.VQuery)
			}
		}
		if x.PushAgg != nil {
			rows = 1
		}
		x.Est.Rows = rows
		return rows

	case *HasStep:
		if in < 0 {
			return -1
		}
		rows := in
		for range x.Preds {
			rows *= predSelectivity
		}
		return rows

	case *LimitStep:
		if in < 0 || in > float64(x.N) {
			return float64(x.N)
		}
		return in

	case *AggregateStep, *GroupCountStep:
		return 1

	case *RepeatStep:
		applyCost(x.Body, st)
		applyCost(x.Until, st)
		return -1

	case *WhereStep:
		applyCost(x.Sub, st)
		return in

	case *UnionStep:
		for _, b := range x.Branches {
			applyCost(b, st)
		}
		return -1

	default:
		return in
	}
}

// labelRows estimates a label-filtered scan cardinality.
func labelRows(total int64, q *graph.Query, perLabel func(string) int64) int64 {
	if q == nil || len(q.Labels) == 0 {
		return total
	}
	var n int64
	for _, l := range q.Labels {
		n += perLabel(l)
	}
	if n > total {
		n = total
	}
	return n
}

// applyQueryEst folds predicate selectivity and the limit cap into a row
// estimate.
func applyQueryEst(rows float64, q *graph.Query) float64 {
	if q == nil || rows < 0 {
		return rows
	}
	for range q.Preds {
		rows *= predSelectivity
	}
	if q.Limit > 0 && rows > float64(q.Limit) {
		rows = float64(q.Limit)
	}
	return rows
}

// fanoutEst estimates, for one adjacency hop, the mean edges per anchor
// vertex and the duplicate-endpoint ratio (edges per distinct endpoint at
// the far end). Unknown labels fall back to whole-graph degree.
func fanoutEst(st *graph.Stats, dir graph.Direction, q *graph.Query) (perAnchor, dupRatio float64) {
	labels := []string(nil)
	if q != nil {
		labels = q.Labels
	}
	var count, farDistinct int64
	addLabel := func(es graph.EdgeLabelStats) {
		count += es.Count
		if dir == graph.DirIn {
			farDistinct += es.OutVertices // in(): far end is the source
		} else {
			farDistinct += es.InVertices // out()/both(): destination side
		}
	}
	if len(labels) == 0 {
		for _, es := range st.EdgeLabels {
			addLabel(es)
		}
	} else {
		for _, l := range labels {
			if es, ok := st.EdgeLabels[l]; ok {
				addLabel(es)
			}
		}
	}
	if st.VertexCount > 0 {
		perAnchor = float64(count) / float64(st.VertexCount)
		if dir == graph.DirBoth {
			perAnchor *= 2
		}
	}
	if farDistinct > 0 {
		dupRatio = float64(count) / float64(farDistinct)
	}
	return perAnchor, dupRatio
}

// orderLabelsByCardinality sorts edge labels ascending by edge count, ties
// by name, in place — the deterministic fan-out order the planner prefers.
func orderLabelsByCardinality(labels []string, st *graph.Stats) {
	sort.SliceStable(labels, func(i, j int) bool {
		a, b := st.EdgeLabelCount(labels[i]), st.EdgeLabelCount(labels[j])
		if a != b {
			return a < b
		}
		return labels[i] < labels[j]
	})
}
