package gremlin

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"db2graph/internal/graph"
	"db2graph/internal/sql/types"
)

// --- Lexer ---

type gtokKind int

const (
	gtokEOF gtokKind = iota
	gtokIdent
	gtokString
	gtokNumber
	gtokPunct // . ( ) , ; = == != >= <= > <
)

type gtok struct {
	kind gtokKind
	text string
	pos  int
}

func lexGremlin(input string) ([]gtok, error) {
	var toks []gtok
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(input) && input[i+1] == '/':
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case c == '\'' || c == '"':
			quote := c
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= len(input) {
					return nil, fmt.Errorf("gremlin: unterminated string at offset %d", start)
				}
				ch := input[i]
				if ch == '\\' && i+1 < len(input) {
					i += 2
					sb.WriteByte(input[i-1])
					continue
				}
				if ch == quote {
					i++
					break
				}
				sb.WriteByte(ch)
				i++
			}
			toks = append(toks, gtok{kind: gtokString, text: sb.String(), pos: start})
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(input) && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			i++
			for i < len(input) && (input[i] >= '0' && input[i] <= '9' || input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			// Trailing L suffix (Groovy long literals).
			text := input[start:i]
			if i < len(input) && (input[i] == 'L' || input[i] == 'l') {
				i++
			}
			toks = append(toks, gtok{kind: gtokNumber, text: text, pos: start})
		case isGIdentStart(rune(c)):
			start := i
			for i < len(input) && isGIdentPart(rune(input[i])) {
				i++
			}
			toks = append(toks, gtok{kind: gtokIdent, text: input[start:i], pos: start})
		default:
			start := i
			two := ""
			if i+1 < len(input) {
				two = input[i : i+2]
			}
			switch two {
			case "==", "!=", ">=", "<=":
				toks = append(toks, gtok{kind: gtokPunct, text: two, pos: start})
				i += 2
				continue
			}
			switch c {
			case '.', '(', ')', ',', ';', '=', '>', '<':
				toks = append(toks, gtok{kind: gtokPunct, text: string(c), pos: start})
				i++
			default:
				return nil, fmt.Errorf("gremlin: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, gtok{kind: gtokEOF, pos: len(input)})
	return toks, nil
}

func isGIdentStart(r rune) bool { return r == '_' || r == '$' || unicode.IsLetter(r) }
func isGIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// --- Parser ---

// gparser parses Gremlin traversal text into step plans.
type gparser struct {
	toks []gtok
	pos  int
	env  map[string]any
	// envUsed records that the parse resolved a script variable, splicing an
	// environment value into the plan. Such plans are bound to this
	// execution's environment and must not enter the plan cache.
	envUsed bool

	// paramize enables prepared-traversal normalization: literals at value
	// positions (ids, predicate operands, constants — never structural
	// arguments like labels, property keys, or limit counts) are replaced
	// by parameter markers in the plan and collected into params, and their
	// token indices recorded in paramToks so the normalized shape key
	// renders them as "?" (see prepared.go).
	paramize  bool
	params    []types.Value
	paramToks map[int]bool
}

// paramArg returns the value of a literal argument, substituting a parameter
// marker when normalization is active. Non-literal arguments pass through.
func (p *gparser) paramArg(a parsedArg) types.Value {
	if !p.paramize || !a.isVal {
		return a.value
	}
	idx := len(p.params)
	p.params = append(p.params, a.value)
	p.paramToks[a.tok] = true
	return types.NewString(paramMarker(idx))
}

func (p *gparser) cur() gtok { return p.toks[p.pos] }

func (p *gparser) errf(format string, args ...any) error {
	return fmt.Errorf("gremlin: parse error near offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *gparser) acceptPunct(text string) bool {
	if p.cur().kind == gtokPunct && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *gparser) expectPunct(text string) error {
	if !p.acceptPunct(text) {
		return p.errf("expected %q, got %q", text, p.cur().text)
	}
	return nil
}

// ParseTraversal parses Gremlin text like
// "g.V().hasLabel('patient').out('hasDisease')" into a traversal bound to
// src. env supplies script variables referenced by name.
func ParseTraversal(src *Source, input string, env map[string]any) (*Traversal, error) {
	toks, err := lexGremlin(input)
	if err != nil {
		return nil, err
	}
	p := &gparser{toks: toks, env: env}
	tr, _, err := p.parseChain(src, true)
	if err != nil {
		return nil, err
	}
	if p.cur().kind != gtokEOF {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return tr, nil
}

// terminalKind identifies the terminal method closing a chain.
type terminalKind int

const (
	termNone terminalKind = iota
	termNext
	termToList
	termIterate
)

// parseChain parses `g.step()...` (rooted) or `step()...` (anonymous).
// Returns the traversal and any terminal method found.
func (p *gparser) parseChain(src *Source, rooted bool) (*Traversal, terminalKind, error) {
	var tr *Traversal
	if rooted {
		if p.cur().kind != gtokIdent || p.cur().text != "g" {
			return nil, termNone, p.errf("traversal must start with g, got %q", p.cur().text)
		}
		p.pos++
		if err := p.expectPunct("."); err != nil {
			return nil, termNone, err
		}
		name, args, err := p.parseCall(src)
		if err != nil {
			return nil, termNone, err
		}
		ids, err := p.argIDs(args)
		if err != nil {
			return nil, termNone, err
		}
		switch name {
		case "V":
			tr = src.V(ids...)
		case "E":
			tr = src.E(ids...)
		default:
			return nil, termNone, p.errf("traversal must start with g.V() or g.E(), got g.%s()", name)
		}
	} else {
		tr = Anon()
		tr.Src = src
		// Optional leading __ .
		if p.cur().kind == gtokIdent && p.cur().text == "__" {
			p.pos++
			if err := p.expectPunct("."); err != nil {
				return nil, termNone, err
			}
		}
		name, args, err := p.parseCall(src)
		if err != nil {
			return nil, termNone, err
		}
		if err := p.applyStep(src, tr, name, args); err != nil {
			return nil, termNone, err
		}
	}
	for p.acceptPunct(".") {
		name, args, err := p.parseCall(src)
		if err != nil {
			return nil, termNone, err
		}
		switch name {
		case "next":
			return tr, termNext, nil
		case "toList":
			return tr, termToList, nil
		case "iterate":
			return tr, termIterate, nil
		}
		if err := p.applyStep(src, tr, name, args); err != nil {
			return nil, termNone, err
		}
	}
	return tr, termNone, nil
}

// parsedArg is one argument: a literal value, a variable's value, a
// predicate, or a sub-traversal.
type parsedArg struct {
	value  types.Value
	isVal  bool
	raw    any // variable values keep their Go shape (lists etc.)
	isRaw  bool
	pred   *P
	sub    *Traversal
	isDesc bool // order modulators: desc/decr/incr/asc keywords
	name   string
	tok    int // token index of a literal (parameter normalization)
}

// anonStepNames are step names that can begin an anonymous sub-traversal.
var anonStepNames = map[string]bool{
	"out": true, "in": true, "both": true, "outE": true, "inE": true,
	"bothE": true, "outV": true, "inV": true, "bothV": true, "otherV": true,
	"has": true, "hasLabel": true, "hasId": true, "values": true,
	"valueMap": true, "id": true, "label": true, "count": true, "dedup": true,
	"store": true, "limit": true, "order": true, "where": true, "not": true,
	"filter": true, "repeat": true, "union": true, "constant": true,
	"until":  true,
	"select": true, "is": true, "simplePath": true, "path": true, "cap": true,
	"sum": true, "mean": true, "min": true, "max": true, "as": true,
	"groupCount": true, "emit": true, "times": true,
}

// predFns are Gremlin P.* predicate constructors.
var predFns = map[string]graph.PredOp{
	"eq": graph.OpEq, "neq": graph.OpNeq, "lt": graph.OpLt, "lte": graph.OpLte,
	"gt": graph.OpGt, "gte": graph.OpGte, "within": graph.OpWithin,
}

// parseCall parses `name(args...)`.
func (p *gparser) parseCall(src *Source) (string, []parsedArg, error) {
	if p.cur().kind != gtokIdent {
		return "", nil, p.errf("expected step name, got %q", p.cur().text)
	}
	name := p.cur().text
	p.pos++
	if err := p.expectPunct("("); err != nil {
		return "", nil, err
	}
	var args []parsedArg
	if p.acceptPunct(")") {
		return name, args, nil
	}
	for {
		arg, err := p.parseArg(src)
		if err != nil {
			return "", nil, err
		}
		args = append(args, arg)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return "", nil, err
	}
	return name, args, nil
}

func (p *gparser) parseArg(src *Source) (parsedArg, error) {
	t := p.cur()
	tok := p.pos
	switch t.kind {
	case gtokString:
		p.pos++
		return parsedArg{value: types.NewString(t.text), isVal: true, tok: tok}, nil
	case gtokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return parsedArg{}, p.errf("bad number %q", t.text)
			}
			return parsedArg{value: types.NewFloat(f), isVal: true, tok: tok}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return parsedArg{}, p.errf("bad number %q", t.text)
		}
		return parsedArg{value: types.NewInt(n), isVal: true, tok: tok}, nil
	case gtokIdent:
		name := t.text
		// Keywords for booleans and order modulators.
		switch name {
		case "true":
			p.pos++
			return parsedArg{value: types.NewBool(true), isVal: true, tok: tok}, nil
		case "false":
			p.pos++
			return parsedArg{value: types.NewBool(false), isVal: true, tok: tok}, nil
		case "desc", "decr":
			p.pos++
			return parsedArg{isDesc: true, name: name}, nil
		case "asc", "incr":
			p.pos++
			return parsedArg{name: name}, nil
		}
		// Predicate constructor?
		next := p.toks[p.pos+1]
		if op, isPred := predFns[name]; isPred && next.kind == gtokPunct && next.text == "(" {
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return parsedArg{}, err
			}
			pr := &P{Op: op}
			for {
				a, err := p.parseArg(src)
				if err != nil {
					return parsedArg{}, err
				}
				if !a.isVal {
					return parsedArg{}, p.errf("predicate %s expects literal arguments", name)
				}
				if op == graph.OpWithin {
					pr.Values = append(pr.Values, p.paramArg(a))
				} else {
					pr.Value = p.paramArg(a)
				}
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return parsedArg{}, err
			}
			return parsedArg{pred: pr}, nil
		}
		// Anonymous sub-traversal?
		if (anonStepNames[name] || name == "__") && next.kind == gtokPunct && (next.text == "(" || (name == "__" && next.text == ".")) {
			sub, term, err := p.parseChain(src, false)
			if err != nil {
				return parsedArg{}, err
			}
			if term != termNone {
				return parsedArg{}, p.errf("terminal methods are not allowed inside sub-traversals")
			}
			// Comparison sugar: filter(outV().id() == id2).
			if cmp := p.cur(); cmp.kind == gtokPunct {
				var op graph.PredOp
				matched := true
				switch cmp.text {
				case "==":
					op = graph.OpEq
				case "!=":
					op = graph.OpNeq
				case ">":
					op = graph.OpGt
				case ">=":
					op = graph.OpGte
				case "<":
					op = graph.OpLt
				case "<=":
					op = graph.OpLte
				default:
					matched = false
				}
				if matched {
					p.pos++
					rhs, err := p.parseArg(src)
					if err != nil {
						return parsedArg{}, err
					}
					var v types.Value
					if rhs.isVal {
						v = p.paramArg(rhs)
					} else {
						var ok bool
						v, ok = p.argScalar(rhs)
						if !ok {
							return parsedArg{}, p.errf("comparison requires a literal or variable")
						}
					}
					sub = sub.Is(P{Op: op, Value: v})
				}
			}
			return parsedArg{sub: sub}, nil
		}
		// Variable reference.
		p.pos++
		if p.env != nil {
			if v, ok := p.env[name]; ok {
				p.envUsed = true
				return parsedArg{raw: v, isRaw: true, name: name}, nil
			}
		}
		return parsedArg{}, p.errf("unknown identifier %q", name)
	default:
		return parsedArg{}, p.errf("unexpected token %q in argument list", t.text)
	}
}

// argScalar converts an argument to a single scalar value when possible.
func (p *gparser) argScalar(a parsedArg) (types.Value, bool) {
	if a.isVal {
		return a.value, true
	}
	if a.isRaw {
		v, err := types.FromGo(a.raw)
		if err == nil {
			return v, true
		}
		// A single-element list also works as a scalar.
		if list, ok := a.raw.([]any); ok && len(list) == 1 {
			v, err := types.FromGo(list[0])
			if err == nil {
				return v, true
			}
		}
	}
	return types.Null, false
}

// argStrings renders arguments as a string list (labels, property keys).
func argStrings(args []parsedArg) ([]string, error) {
	out := make([]string, 0, len(args))
	for _, a := range args {
		if !a.isVal {
			return nil, fmt.Errorf("gremlin: expected string argument")
		}
		out = append(out, a.value.Text())
	}
	return out, nil
}

// argIDs renders arguments as element ids, flattening variables. Literal ids
// are value positions: under paramize they become parameter markers (the
// markers flow through toIDList into Query.IDs / HasStep preds as strings,
// where bindParams substitutes them back).
func (p *gparser) argIDs(args []parsedArg) ([]any, error) {
	var out []any
	for _, a := range args {
		switch {
		case a.isVal:
			out = append(out, p.paramArg(a))
		case a.isRaw:
			out = append(out, a.raw)
		default:
			return nil, fmt.Errorf("gremlin: expected id argument")
		}
	}
	return out, nil
}

// applyStep appends a parsed step to the traversal.
func (p *gparser) applyStep(src *Source, tr *Traversal, name string, args []parsedArg) error {
	switch name {
	case "V", "E":
		return p.errf("%s() is only valid at the start of a rooted traversal", name)
	case "out", "in", "both", "outE", "inE", "bothE":
		labels, err := argStrings(args)
		if err != nil {
			return err
		}
		switch name {
		case "out":
			tr.Out(labels...)
		case "in":
			tr.In(labels...)
		case "both":
			tr.Both(labels...)
		case "outE":
			tr.OutE(labels...)
		case "inE":
			tr.InE(labels...)
		case "bothE":
			tr.BothE(labels...)
		}
	case "outV":
		tr.OutV()
	case "inV":
		tr.InV()
	case "bothV":
		tr.BothV()
	case "otherV":
		tr.OtherV()
	case "has":
		switch len(args) {
		case 1:
			if !args[0].isVal {
				return p.errf("has() expects a property name")
			}
			tr.HasKey(args[0].value.Text())
		case 2:
			if !args[0].isVal {
				return p.errf("has() expects a property name")
			}
			key := args[0].value.Text()
			if args[1].pred != nil {
				tr.HasP(key, *args[1].pred)
			} else if args[1].isVal {
				tr.HasP(key, P{Op: graph.OpEq, Value: p.paramArg(args[1])})
			} else if v, ok := p.argScalar(args[1]); ok {
				tr.HasP(key, P{Op: graph.OpEq, Value: v})
			} else {
				return p.errf("has() expects a literal, variable, or predicate")
			}
		default:
			return p.errf("has() expects 1 or 2 arguments")
		}
	case "hasNot":
		if len(args) != 1 || !args[0].isVal {
			return p.errf("hasNot() expects a property name")
		}
		key := args[0].value.Text()
		tr.Not(Anon().HasKey(key))
	case "hasLabel":
		labels, err := argStrings(args)
		if err != nil {
			return err
		}
		tr.HasLabel(labels...)
	case "hasId":
		ids, err := p.argIDs(args)
		if err != nil {
			return err
		}
		tr.HasID(ids...)
	case "values":
		keys, err := argStrings(args)
		if err != nil {
			return err
		}
		tr.Values(keys...)
	case "valueMap":
		// valueMap(true) includes id/label.
		withIDLabel := false
		var keys []string
		for _, a := range args {
			if a.isVal && a.value.Kind == types.KindBool {
				withIDLabel = a.value.Bool()
				continue
			}
			if !a.isVal {
				return p.errf("valueMap() expects string keys")
			}
			keys = append(keys, a.value.Text())
		}
		tr.add(&ValueMapStep{Keys: keys, WithIDLabel: withIDLabel})
	case "id":
		tr.ID()
	case "label":
		tr.Label()
	case "count":
		tr.Count()
	case "sum":
		tr.Sum()
	case "mean":
		tr.Mean()
	case "min":
		tr.Min()
	case "max":
		tr.Max()
	case "dedup":
		tr.Dedup()
	case "limit":
		if len(args) != 1 {
			return p.errf("limit() expects one number")
		}
		n, ok := args[0].value.Int()
		if !args[0].isVal || !ok {
			return p.errf("limit() expects one number")
		}
		tr.Limit(int(n))
	case "order":
		tr.Order()
	case "by":
		// Modulator for order()/groupCount().
		if len(tr.Steps) == 0 {
			return p.errf("by() requires a preceding step")
		}
		last := tr.Steps[len(tr.Steps)-1]
		switch x := last.(type) {
		case *OrderStep:
			for _, a := range args {
				switch {
				case a.isDesc:
					x.Desc = true
				case a.name == "asc" || a.name == "incr":
				case a.isVal:
					x.By = a.value.Text()
				default:
					return p.errf("unsupported by() argument")
				}
			}
		case *GroupCountStep:
			if len(args) != 1 || !args[0].isVal {
				return p.errf("groupCount().by() expects a property name")
			}
			x.By = args[0].value.Text()
		default:
			return p.errf("by() cannot modulate %s()", last.Name())
		}
	case "store", "aggregate":
		if len(args) != 1 || !args[0].isVal {
			return p.errf("%s() expects a key", name)
		}
		tr.Store(args[0].value.Text())
	case "cap":
		if len(args) != 1 || !args[0].isVal {
			return p.errf("cap() expects a key")
		}
		tr.Cap(args[0].value.Text())
	case "repeat":
		if len(args) != 1 || args[0].sub == nil {
			return p.errf("repeat() expects a sub-traversal")
		}
		tr.Repeat(args[0].sub)
	case "until":
		if len(args) != 1 || args[0].sub == nil {
			return p.errf("until() expects a sub-traversal")
		}
		tr.Until(args[0].sub)
	case "times":
		if len(args) != 1 {
			return p.errf("times() expects one number")
		}
		n, ok := args[0].value.Int()
		if !args[0].isVal || !ok {
			return p.errf("times() expects one number")
		}
		tr.Times(int(n))
	case "emit":
		tr.Emit()
	case "where", "filter":
		if len(args) != 1 || args[0].sub == nil {
			return p.errf("%s() expects a sub-traversal", name)
		}
		tr.Where(args[0].sub)
	case "not":
		if len(args) != 1 || args[0].sub == nil {
			return p.errf("not() expects a sub-traversal")
		}
		tr.Not(args[0].sub)
	case "union":
		var branches []*Traversal
		for _, a := range args {
			if a.sub == nil {
				return p.errf("union() expects sub-traversals")
			}
			branches = append(branches, a.sub)
		}
		tr.Union(branches...)
	case "path":
		tr.Path()
	case "simplePath":
		tr.SimplePath()
	case "as":
		if len(args) != 1 || !args[0].isVal {
			return p.errf("as() expects a label")
		}
		tr.As(args[0].value.Text())
	case "select":
		labels, err := argStrings(args)
		if err != nil {
			return err
		}
		tr.Select(labels...)
	case "groupCount":
		tr.GroupCount()
	case "constant":
		if len(args) != 1 {
			return p.errf("constant() expects one value")
		}
		if args[0].isVal {
			tr.add(&ConstantStep{Value: p.paramArg(args[0])})
			break
		}
		v, ok := p.argScalar(args[0])
		if !ok {
			return p.errf("constant() expects a literal")
		}
		tr.add(&ConstantStep{Value: v})
	case "is":
		if len(args) != 1 {
			return p.errf("is() expects a predicate or value")
		}
		if args[0].pred != nil {
			tr.Is(*args[0].pred)
		} else if args[0].isVal {
			tr.Is(P{Op: graph.OpEq, Value: p.paramArg(args[0])})
		} else if v, ok := p.argScalar(args[0]); ok {
			tr.Is(P{Op: graph.OpEq, Value: v})
		} else {
			return p.errf("is() expects a predicate or value")
		}
	case "profile":
		if len(args) != 0 {
			return p.errf("profile() expects no arguments")
		}
		tr.Profile()
	case "explain":
		if len(args) != 0 {
			return p.errf("explain() expects no arguments")
		}
		tr.Explain()
	default:
		return p.errf("unsupported step %s()", name)
	}
	return tr.err
}
