package gremlin

import (
	"fmt"
	"sync"
	"testing"

	"db2graph/internal/graph"
)

// arenaTestBackend builds a small graph with properties and paths long
// enough to exercise slab growth, frame pooling, and path copying.
func arenaTestBackend(t testing.TB, n int) *graph.MemBackend {
	t.Helper()
	m := graph.NewMemBackend()
	for i := 0; i < n; i++ {
		if err := m.AddVertex(&graph.Element{
			ID:    fmt.Sprintf("v%d", i),
			Label: fmt.Sprintf("t%d", i%3),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := m.AddEdge(&graph.Element{
			ID:     fmt.Sprintf("e%d", i),
			Label:  "link",
			OutV:   fmt.Sprintf("v%d", i),
			InV:    fmt.Sprintf("v%d", (i+1)%n),
			IsEdge: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// churn runs a mix of queries whose arenas lease, dirty, and release the
// same pooled slabs and frame buffers the captured results would still be
// sitting in if copy-on-emit were broken.
func churn(t *testing.T, src *Source, rounds int) {
	t.Helper()
	scripts := []string{
		`g.V().out('link').out().path()`,
		`g.V().hasLabel('t1').both().dedup().values('id')`,
		`g.E().limit(500)`,
		`g.V().as('a').out().select('a')`,
	}
	for r := 0; r < rounds; r++ {
		if _, err := RunScript(src, scripts[r%len(scripts)], nil); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPooledAliasing is the reset-on-release / copy-on-emit regression suite
// (DESIGN.md §15): results captured from one query must survive, bit for
// bit, any number of later queries that recycle the same pooled slabs.
func TestPooledAliasing(t *testing.T) {
	m := arenaTestBackend(t, 600)
	src := NewSource(m).WithParallelism(4)

	trs, err := src.V().Out("link").Path().Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 600 {
		t.Fatalf("got %d traversers, want 600", len(trs))
	}
	// Snapshot the captured results by value before any churn.
	type snap struct {
		obj   string
		path  []string
		fromV string
	}
	render := func(tr *Traverser) snap {
		if tr == nil {
			return snap{obj: "<nil traverser>"}
		}
		s := snap{fromV: tr.FromV}
		if el, ok := tr.Obj.(*graph.Element); ok {
			s.obj = el.ID
		} else {
			s.obj = fmt.Sprint(tr.Obj)
		}
		for _, p := range tr.Path {
			if el, ok := p.(*graph.Element); ok {
				s.path = append(s.path, el.ID)
			} else {
				s.path = append(s.path, fmt.Sprint(p))
			}
		}
		return s
	}
	before := make([]snap, len(trs))
	for i, tr := range trs {
		before[i] = render(tr)
	}

	churn(t, src, 40)

	for i, tr := range trs {
		after := render(tr)
		if fmt.Sprint(after) != fmt.Sprint(before[i]) {
			t.Fatalf("result %d mutated by later queries:\n before %+v\n after  %+v", i, before[i], after)
		}
	}
}

// TestAliasingDetectsMissingEmitCopy proves the suite above has teeth: with
// the copy-on-emit escape rule deliberately disabled, the arena release that
// runs when ExecuteCtx returns visibly destroys the caller's results. If
// this test ever starts passing results through intact, reset-on-release has
// silently stopped clearing pooled memory — exactly the regression the suite
// exists to catch.
func TestAliasingDetectsMissingEmitCopy(t *testing.T) {
	debugSkipEmitCopy = true
	defer func() { debugSkipEmitCopy = false }()

	m := arenaTestBackend(t, 64)
	trs, err := NewSource(m).V().Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 64 {
		t.Fatalf("got %d traversers, want 64", len(trs))
	}
	corrupted := 0
	for _, tr := range trs {
		if tr == nil || tr.Obj == nil {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("copy-on-emit disabled but results survived arena release: reset-on-release is not clearing pooled memory")
	}
}

// TestPooledAliasingConcurrent hammers the pools from many goroutines, each
// verifying its own results after every query. Run under -race this proves
// pooled objects never cross live queries.
func TestPooledAliasingConcurrent(t *testing.T) {
	m := arenaTestBackend(t, 300)
	src := NewSource(m).WithParallelism(4)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				trs, err := src.V().Out("link").Execute()
				if err != nil {
					errc <- err
					return
				}
				if len(trs) != 300 {
					errc <- fmt.Errorf("worker %d: got %d traversers, want 300", w, len(trs))
					return
				}
				for _, tr := range trs {
					el, ok := tr.Obj.(*graph.Element)
					if !ok || el == nil || el.ID == "" {
						errc <- fmt.Errorf("worker %d: corrupted traverser %+v", w, tr)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
