package gremlin

import (
	"fmt"

	"db2graph/internal/graph"
	"db2graph/internal/sql/types"
	"db2graph/internal/telemetry"
)

// Source is a traversal source bound to a backend: the `g` in g.V(). The
// provider supplies its optimization strategies (the Traversal Strategy
// module of the paper); they can be disabled for experiments.
type Source struct {
	Backend    graph.Backend
	Strategies []Strategy
	// DisableStrategies turns off plan rewriting (Figure 4's "without
	// optimized traversal strategies" configuration).
	DisableStrategies bool
	// Limits is the per-query resource budget enforced during execution.
	// The zero value selects graph.DefaultLimits(); negative fields disable
	// individual bounds.
	Limits graph.Limits
	// Parallelism is the maximum number of goroutines one query execution
	// may use for step-level parallel execution: 0 selects
	// runtime.GOMAXPROCS(0), 1 forces the serial engine. Parallel and
	// serial runs produce identical results (see DESIGN.md §9); the
	// backend must support concurrent reads, which all in-tree backends
	// do.
	Parallelism int
	// WorkerGauge, when non-nil, tracks the number of borrowed parallel
	// workers across queries (wired to gremlin_parallel_workers by the
	// server).
	WorkerGauge *telemetry.Gauge
	// PlanCache, when non-nil, lets RunScriptCtx reuse compiled plans for
	// repeated script texts (see PlanCache for the keying and the
	// cacheability rules). Safe to share across sources and goroutines.
	PlanCache *PlanCache
	// BatchSize, when positive, caps the number of source elements per
	// batched backend lookup: chunked fan-out steps split so no chunk
	// exceeds it (bounding IN-list and multi-get sizes), even on the serial
	// engine. 0 leaves chunk sizing to the parallelism heuristics alone.
	// Results are unaffected — it only applies where chunking is already
	// proven order-preserving.
	BatchSize int
	// BatchHist, when non-nil, records the size of every batched backend
	// expansion call (gremlin_batch_size in the server's registry).
	BatchHist *telemetry.IntHistogram
	// Stats, when non-nil, enables the cost-based planner: after the
	// rule-based strategies run, applyCost consults the provider's current
	// statistics to pick result-identical physical choices (fan-out label
	// order, index-vs-scan endpoint resolution, batch chunk sizing) and to
	// annotate the plan for explain(). A nil provider — or one that has
	// never been Analyzed — leaves plans exactly as the static strategies
	// produced them.
	Stats *graph.StatsProvider
}

// NewSource creates a traversal source with the standard strategy set.
func NewSource(b graph.Backend) *Source {
	return &Source{Backend: b, Strategies: StandardStrategies()}
}

// WithoutStrategies returns a copy of the source that skips plan rewriting.
func (s *Source) WithoutStrategies() *Source {
	cp := *s
	cp.DisableStrategies = true
	return &cp
}

// WithLimits returns a copy of the source with the given query budget.
func (s *Source) WithLimits(l graph.Limits) *Source {
	cp := *s
	cp.Limits = l
	return &cp
}

// WithParallelism returns a copy of the source whose queries may use up to
// n goroutines per execution (0 = GOMAXPROCS, 1 = serial).
func (s *Source) WithParallelism(n int) *Source {
	cp := *s
	cp.Parallelism = n
	return &cp
}

// WithPlanCache returns a copy of the source that compiles scripts through
// the given plan cache.
func (s *Source) WithPlanCache(pc *PlanCache) *Source {
	cp := *s
	cp.PlanCache = pc
	return &cp
}

// WithBatchSize returns a copy of the source whose batched backend lookups
// are capped at n source elements per call (0 = uncapped).
func (s *Source) WithBatchSize(n int) *Source {
	cp := *s
	cp.BatchSize = n
	return &cp
}

// WithStats returns a copy of the source whose plans are costed against the
// given statistics provider (nil disables the cost-based planner).
func (s *Source) WithStats(sp *graph.StatsProvider) *Source {
	cp := *s
	cp.Stats = sp
	return &cp
}

// Traversal is a step pipeline under construction or execution.
type Traversal struct {
	Src   *Source
	Steps []Step
	// err defers builder errors until execution.
	err error
	// planned marks Steps as already cloned and strategy-rewritten (a plan
	// served by PlanCache). Execution reads them as-is — and must not mutate
	// them, since cached plans are shared across executions.
	planned bool
}

// V starts a vertex traversal. Arguments are element ids (strings, numbers,
// elements, or slices of those — the paper's g.V(similar_diseases) passes a
// collected list).
func (s *Source) V(ids ...any) *Traversal {
	t := &Traversal{Src: s}
	strIDs, err := toIDList(ids)
	if err != nil {
		t.err = err
	}
	t.Steps = append(t.Steps, &GraphStep{Kind: KindVertex, Query: &graph.Query{IDs: strIDs}})
	return t
}

// E starts an edge traversal.
func (s *Source) E(ids ...any) *Traversal {
	t := &Traversal{Src: s}
	strIDs, err := toIDList(ids)
	if err != nil {
		t.err = err
	}
	t.Steps = append(t.Steps, &GraphStep{Kind: KindEdge, Query: &graph.Query{IDs: strIDs}})
	return t
}

// toIDList flattens heterogeneous id arguments into strings.
func toIDList(ids []any) ([]string, error) {
	var out []string
	var add func(v any) error
	add = func(v any) error {
		switch x := v.(type) {
		case nil:
			return nil
		case string:
			out = append(out, x)
		case *graph.Element:
			out = append(out, x.ID)
		case types.Value:
			out = append(out, x.Text())
		case []any:
			for _, e := range x {
				if err := add(e); err != nil {
					return err
				}
			}
		case []string:
			out = append(out, x...)
		case int:
			out = append(out, types.NewInt(int64(x)).Text())
		case int64:
			out = append(out, types.NewInt(x).Text())
		default:
			return fmt.Errorf("gremlin: cannot use %T as an element id", v)
		}
		return nil
	}
	for _, v := range ids {
		if err := add(v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Anon starts an anonymous traversal (Gremlin's __), used as argument to
// repeat/where/union.
func Anon() *Traversal { return &Traversal{} }

func (t *Traversal) add(s Step) *Traversal {
	t.Steps = append(t.Steps, s)
	return t
}

// Out moves to adjacent vertices along outgoing edges with the given labels.
func (t *Traversal) Out(labels ...string) *Traversal {
	return t.add(&VertexStep{Dir: graph.DirOut, Query: &graph.Query{Labels: labels}})
}

// In moves to adjacent vertices along incoming edges.
func (t *Traversal) In(labels ...string) *Traversal {
	return t.add(&VertexStep{Dir: graph.DirIn, Query: &graph.Query{Labels: labels}})
}

// Both moves to adjacent vertices along edges in either direction.
func (t *Traversal) Both(labels ...string) *Traversal {
	return t.add(&VertexStep{Dir: graph.DirBoth, Query: &graph.Query{Labels: labels}})
}

// OutE moves to outgoing edges.
func (t *Traversal) OutE(labels ...string) *Traversal {
	return t.add(&VertexStep{Dir: graph.DirOut, ReturnEdges: true, Query: &graph.Query{Labels: labels}})
}

// InE moves to incoming edges.
func (t *Traversal) InE(labels ...string) *Traversal {
	return t.add(&VertexStep{Dir: graph.DirIn, ReturnEdges: true, Query: &graph.Query{Labels: labels}})
}

// BothE moves to incident edges in either direction.
func (t *Traversal) BothE(labels ...string) *Traversal {
	return t.add(&VertexStep{Dir: graph.DirBoth, ReturnEdges: true, Query: &graph.Query{Labels: labels}})
}

// OutV moves from edges to their source vertices.
func (t *Traversal) OutV() *Traversal {
	return t.add(&EdgeVertexStep{End: EndOut, Query: &graph.Query{}})
}

// InV moves from edges to their destination vertices.
func (t *Traversal) InV() *Traversal {
	return t.add(&EdgeVertexStep{End: EndIn, Query: &graph.Query{}})
}

// BothV moves from edges to both endpoints.
func (t *Traversal) BothV() *Traversal {
	return t.add(&EdgeVertexStep{End: EndBoth, Query: &graph.Query{}})
}

// OtherV moves from edges to the endpoint the traverser did not come from.
func (t *Traversal) OtherV() *Traversal {
	return t.add(&EdgeVertexStep{End: EndOther, Query: &graph.Query{}})
}

// Has filters elements by property equality.
func (t *Traversal) Has(key string, value any) *Traversal {
	v, err := types.FromGo(value)
	if err != nil {
		t.err = err
	}
	return t.add(&HasStep{Preds: []graph.Pred{{Key: key, Op: graph.OpEq, Value: v}}})
}

// HasP filters elements by an arbitrary predicate.
func (t *Traversal) HasP(key string, p P) *Traversal {
	return t.add(&HasStep{Preds: []graph.Pred{{Key: key, Op: p.Op, Value: p.Value, Values: p.Values}}})
}

// HasKey filters elements that carry the named property at all.
func (t *Traversal) HasKey(key string) *Traversal {
	return t.add(&HasStep{Preds: []graph.Pred{{Key: key, Op: graph.OpNeq, Value: types.NewString("\x00gremlin-absent\x00")}}})
}

// HasLabel filters by label.
func (t *Traversal) HasLabel(labels ...string) *Traversal {
	vals := make([]types.Value, len(labels))
	for i, l := range labels {
		vals[i] = types.NewString(l)
	}
	return t.add(&HasStep{Preds: []graph.Pred{{Key: graph.KeyLabel, Op: graph.OpWithin, Values: vals}}})
}

// HasID filters by element id.
func (t *Traversal) HasID(ids ...any) *Traversal {
	strIDs, err := toIDList(ids)
	if err != nil {
		t.err = err
	}
	vals := make([]types.Value, len(strIDs))
	for i, id := range strIDs {
		vals[i] = types.NewString(id)
	}
	return t.add(&HasStep{Preds: []graph.Pred{{Key: graph.KeyID, Op: graph.OpWithin, Values: vals}}})
}

// Values emits the values of the named properties.
func (t *Traversal) Values(keys ...string) *Traversal {
	return t.add(&ValuesStep{Keys: keys})
}

// ValueMap emits property maps.
func (t *Traversal) ValueMap(keys ...string) *Traversal {
	return t.add(&ValueMapStep{Keys: keys})
}

// ID emits element ids.
func (t *Traversal) ID() *Traversal { return t.add(&IDStep{}) }

// Label emits element labels.
func (t *Traversal) Label() *Traversal { return t.add(&LabelStep{}) }

// Count reduces to the number of traversers.
func (t *Traversal) Count() *Traversal { return t.add(&AggregateStep{Kind: graph.AggCount}) }

// Sum reduces numeric values to their sum.
func (t *Traversal) Sum() *Traversal { return t.add(&AggregateStep{Kind: graph.AggSum}) }

// Mean reduces numeric values to their mean.
func (t *Traversal) Mean() *Traversal { return t.add(&AggregateStep{Kind: graph.AggMean}) }

// Min reduces values to their minimum.
func (t *Traversal) Min() *Traversal { return t.add(&AggregateStep{Kind: graph.AggMin}) }

// Max reduces values to their maximum.
func (t *Traversal) Max() *Traversal { return t.add(&AggregateStep{Kind: graph.AggMax}) }

// Dedup removes duplicates.
func (t *Traversal) Dedup() *Traversal { return t.add(&DedupStep{}) }

// Limit keeps the first n traversers.
func (t *Traversal) Limit(n int) *Traversal { return t.add(&LimitStep{N: n}) }

// Order sorts by the traverser value.
func (t *Traversal) Order() *Traversal { return t.add(&OrderStep{}) }

// OrderBy sorts elements by a property.
func (t *Traversal) OrderBy(key string, desc bool) *Traversal {
	return t.add(&OrderStep{By: key, Desc: desc})
}

// Store appends objects to a side-effect list.
func (t *Traversal) Store(key string) *Traversal { return t.add(&StoreStep{Key: key}) }

// Cap replaces the stream with a side-effect list.
func (t *Traversal) Cap(key string) *Traversal { return t.add(&CapStep{Key: key}) }

// Repeat runs the sub-traversal repeatedly; follow with Times and/or Until.
func (t *Traversal) Repeat(sub *Traversal) *Traversal {
	if sub.err != nil {
		t.err = sub.err
	}
	return t.add(&RepeatStep{Body: sub.Steps, Times: 1})
}

// Until makes the preceding Repeat release traversers whose sub-traversal
// yields a result (repeat-until semantics). Combine with Times to bound the
// walk, or leave unbounded (capped internally to prevent infinite loops).
func (t *Traversal) Until(sub *Traversal) *Traversal {
	if sub.err != nil {
		t.err = sub.err
	}
	if len(t.Steps) > 0 {
		if r, ok := t.Steps[len(t.Steps)-1].(*RepeatStep); ok {
			r.Until = sub.Steps
			r.Times = 0 // unbounded unless Times() follows
			return t
		}
	}
	t.err = fmt.Errorf("gremlin: until() requires a preceding repeat()")
	return t
}

// Times sets the iteration count of the preceding Repeat.
func (t *Traversal) Times(n int) *Traversal {
	if len(t.Steps) == 0 {
		t.err = fmt.Errorf("gremlin: times() requires a preceding repeat()")
		return t
	}
	if r, ok := t.Steps[len(t.Steps)-1].(*RepeatStep); ok {
		r.Times = n
	} else {
		t.err = fmt.Errorf("gremlin: times() requires a preceding repeat()")
	}
	return t
}

// Emit makes the preceding Repeat emit intermediate frontiers.
func (t *Traversal) Emit() *Traversal {
	if len(t.Steps) > 0 {
		if r, ok := t.Steps[len(t.Steps)-1].(*RepeatStep); ok {
			r.Emit = true
			return t
		}
	}
	t.err = fmt.Errorf("gremlin: emit() requires a preceding repeat()")
	return t
}

// Where keeps traversers whose sub-traversal yields at least one result.
func (t *Traversal) Where(sub *Traversal) *Traversal {
	if sub.err != nil {
		t.err = sub.err
	}
	return t.add(&WhereStep{Sub: sub.Steps})
}

// Filter is an alias of Where.
func (t *Traversal) Filter(sub *Traversal) *Traversal { return t.Where(sub) }

// Not keeps traversers whose sub-traversal yields no result.
func (t *Traversal) Not(sub *Traversal) *Traversal {
	if sub.err != nil {
		t.err = sub.err
	}
	return t.add(&WhereStep{Sub: sub.Steps, Negate: true})
}

// Union runs every branch from each traverser.
func (t *Traversal) Union(branches ...*Traversal) *Traversal {
	bs := make([][]Step, len(branches))
	for i, b := range branches {
		if b.err != nil {
			t.err = b.err
		}
		bs[i] = b.Steps
	}
	return t.add(&UnionStep{Branches: bs})
}

// Path emits the visited-object path.
func (t *Traversal) Path() *Traversal { return t.add(&PathStep{}) }

// SimplePath drops traversers that revisit an element.
func (t *Traversal) SimplePath() *Traversal { return t.add(&SimplePathStep{}) }

// As labels the current object.
func (t *Traversal) As(label string) *Traversal { return t.add(&AsStep{Label: label}) }

// Select emits previously labeled objects.
func (t *Traversal) Select(labels ...string) *Traversal {
	return t.add(&SelectStep{Labels: labels})
}

// GroupCount reduces to occurrence counts.
func (t *Traversal) GroupCount() *Traversal { return t.add(&GroupCountStep{}) }

// GroupCountBy reduces to occurrence counts of a property value.
func (t *Traversal) GroupCountBy(key string) *Traversal {
	return t.add(&GroupCountStep{By: key})
}

// Constant replaces each object with a constant.
func (t *Traversal) Constant(v any) *Traversal {
	val, err := types.FromGo(v)
	if err != nil {
		t.err = err
	}
	return t.add(&ConstantStep{Value: val})
}

// Is filters values by comparison with a constant.
func (t *Traversal) Is(p P) *Traversal {
	return t.add(&IsStep{Op: p.Op, Value: p.Value})
}

// Profile closes the traversal with the profile() terminal step: the run is
// instrumented and yields a single *telemetry.Profile report (per-step
// traverser counts and wall time) instead of its normal results.
func (t *Traversal) Profile() *Traversal { return t.add(&ProfileStep{}) }

// Explain closes the traversal with the explain() terminal step: the run is
// instrumented and yields a single *ExplainReport (the chosen plan tree with
// estimated vs actual rows and the planner's decisions) instead of its
// normal results.
func (t *Traversal) Explain() *Traversal { return t.add(&ExplainStep{}) }

// P is a comparison predicate (Gremlin's P.gt(5) etc.).
type P struct {
	Op     graph.PredOp
	Value  types.Value
	Values []types.Value
}

// Eq builds an equality predicate.
func Eq(v any) P { return mkP(graph.OpEq, v) }

// Neq builds an inequality predicate.
func Neq(v any) P { return mkP(graph.OpNeq, v) }

// Lt builds a less-than predicate.
func Lt(v any) P { return mkP(graph.OpLt, v) }

// Lte builds a less-or-equal predicate.
func Lte(v any) P { return mkP(graph.OpLte, v) }

// Gt builds a greater-than predicate.
func Gt(v any) P { return mkP(graph.OpGt, v) }

// Gte builds a greater-or-equal predicate.
func Gte(v any) P { return mkP(graph.OpGte, v) }

// Within builds a membership predicate.
func Within(vs ...any) P {
	out := P{Op: graph.OpWithin}
	for _, v := range vs {
		val, err := types.FromGo(v)
		if err != nil {
			continue
		}
		out.Values = append(out.Values, val)
	}
	return out
}

func mkP(op graph.PredOp, v any) P {
	val, err := types.FromGo(v)
	if err != nil {
		val = types.Null
	}
	return P{Op: op, Value: val}
}
