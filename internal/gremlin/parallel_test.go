package gremlin

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"db2graph/internal/graph"
	"db2graph/internal/sql/types"
	"db2graph/internal/telemetry"
)

// bigGraph builds a deterministic random graph large enough that every
// fan-out step clears the chunking floor.
func bigGraph(t *testing.T, nv, ne int) *Source {
	t.Helper()
	m := graph.NewMemBackend()
	rng := rand.New(rand.NewSource(7))
	labels := []string{"alpha", "beta"}
	for i := 0; i < nv; i++ {
		el := &graph.Element{
			ID:    fmt.Sprintf("v%d", i),
			Label: labels[i%len(labels)],
			Props: map[string]types.Value{"n": types.NewInt(int64(i))},
		}
		if err := m.AddVertex(el); err != nil {
			t.Fatal(err)
		}
	}
	elabels := []string{"knows", "likes"}
	for i := 0; i < ne; i++ {
		el := &graph.Element{
			ID:    fmt.Sprintf("e%d", i),
			Label: elabels[rng.Intn(len(elabels))],
			OutV:  fmt.Sprintf("v%d", rng.Intn(nv)),
			InV:   fmt.Sprintf("v%d", rng.Intn(nv)),
			Props: map[string]types.Value{"w": types.NewInt(int64(rng.Intn(100)))},
		}
		if err := m.AddEdge(el); err != nil {
			t.Fatal(err)
		}
	}
	return NewSource(m)
}

// renderTraversers serializes every observable field of a traverser stream
// so two runs can be compared bit-for-bit, order included.
func renderTraversers(trs []*Traverser) []string {
	out := make([]string, len(trs))
	for i, tr := range trs {
		var b strings.Builder
		b.WriteString(Display(tr.Obj))
		if tr.FromV != "" {
			b.WriteString(" from=" + tr.FromV)
		}
		if len(tr.Path) > 0 {
			b.WriteString(" path=" + Display(tr.Path))
		}
		if len(tr.Labels) > 0 {
			b.WriteString(" labels=" + Display(map[string]any(tr.Labels)))
		}
		out[i] = b.String()
	}
	return out
}

// parallelCases enumerates traversal shapes covering every parallelized
// path: vertex fan-out (out/in/both, edge and vertex forms), edge-endpoint
// resolution, sub-traversal loops (where/union/until), paths, side effects,
// and aggregates.
func parallelCases(src *Source) map[string]func() *Traversal {
	return map[string]func() *Traversal{
		"out":        func() *Traversal { return src.V().Out() },
		"out-label":  func() *Traversal { return src.V().Out("knows") },
		"in":         func() *Traversal { return src.V().In("likes") },
		"both":       func() *Traversal { return src.V().Both() },
		"outE-inV":   func() *Traversal { return src.V().OutE().InV() },
		"inE-outV":   func() *Traversal { return src.V().InE("knows").OutV() },
		"bothE-othV": func() *Traversal { return src.V().BothE().OtherV() },
		"bothV":      func() *Traversal { return src.V().OutE().BothV() },
		"two-hop":    func() *Traversal { return src.V().Out().Out() },
		"hop-count":  func() *Traversal { return src.V().Out().Out().Count() },
		"hop-values": func() *Traversal { return src.V().Out().Values("n") },
		"where":      func() *Traversal { return src.V().Where(Anon().Out("likes")) },
		"not":        func() *Traversal { return src.V().Not(Anon().Out()) },
		"union": func() *Traversal {
			return src.V().HasLabel("alpha").Union(Anon().Out(), Anon().In())
		},
		"repeat-times": func() *Traversal {
			return src.V().HasLabel("beta").Repeat(Anon().Out("knows")).Times(2)
		},
		"repeat-until": func() *Traversal {
			return src.V().Repeat(Anon().Out()).Until(Anon().HasLabel("beta")).Times(3).Emit()
		},
		"path":       func() *Traversal { return src.V().Out().Path() },
		"store-cap":  func() *Traversal { return src.V().Out().Store("x").Cap("x") },
		"dedup":      func() *Traversal { return src.V().Out().Dedup() },
		"groupcount": func() *Traversal { return src.V().Out().GroupCountBy("n") },
		"as-select":  func() *Traversal { return src.V().As("a").Out().As("b").Select("a", "b") },
	}
}

// TestParallelIdenticalResults is the determinism contract: the traverser
// stream of a parallel run is bit-identical to the serial one, in order,
// for every parallelized execution path.
func TestParallelIdenticalResults(t *testing.T) {
	src := bigGraph(t, 300, 900)
	for name, build := range parallelCases(src) {
		t.Run(name, func(t *testing.T) {
			var want []string
			for _, par := range []int{1, 2, 8} {
				trs, err := build().WithSource(src.WithParallelism(par)).Execute()
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				got := renderTraversers(trs)
				if par == 1 {
					want = got
					if len(want) == 0 {
						t.Fatalf("serial run returned no traversers (vacuous test)")
					}
					continue
				}
				if len(got) != len(want) {
					t.Fatalf("parallelism %d: %d traversers, serial %d", par, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("parallelism %d: traverser %d:\n  got  %s\n  want %s", par, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestParallelProfileCounts checks that profile() traverser counts are
// independent of parallelism: in/out/calls are atomic sums, so every level
// must report the same numbers.
func TestParallelProfileCounts(t *testing.T) {
	src := bigGraph(t, 200, 600)
	builds := parallelCases(src)
	for _, name := range []string{"two-hop", "where", "union", "repeat-until"} {
		build := builds[name]
		t.Run(name, func(t *testing.T) {
			type counts struct {
				name           string
				in, out, calls int64
			}
			var want []counts
			for _, par := range []int{1, 8} {
				trs, err := build().Profile().WithSource(src.WithParallelism(par)).Execute()
				if err != nil {
					t.Fatal(err)
				}
				if len(trs) != 1 {
					t.Fatalf("profile() returned %d traversers", len(trs))
				}
				p, ok := trs[0].Obj.(*telemetry.Profile)
				if !ok {
					t.Fatalf("profile() returned %T", trs[0].Obj)
				}
				got := make([]counts, len(p.Steps))
				for i, s := range p.Steps {
					got[i] = counts{name: s.Name, in: s.In, out: s.Out, calls: s.Calls}
				}
				if par == 1 {
					want = got
					continue
				}
				if len(got) != len(want) {
					t.Fatalf("parallelism %d: %d profiled steps, serial %d", par, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("parallelism %d: step %d: got %+v want %+v", par, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestParallelBudget checks that the shared atomic traverser budget aborts
// oversized frontiers with the same typed error as the serial engine.
func TestParallelBudget(t *testing.T) {
	src := bigGraph(t, 300, 900)
	for _, par := range []int{1, 8} {
		s := src.WithParallelism(par).WithLimits(graph.Limits{MaxTraversers: 50})
		_, err := s.V().Out().Out().Execute()
		if !errors.Is(err, graph.ErrBudgetExceeded) {
			t.Fatalf("parallelism %d: got %v, want budget error", par, err)
		}
		var be *graph.BudgetError
		if !errors.As(err, &be) || be.Resource != "traversers" || be.Limit != 50 {
			t.Fatalf("parallelism %d: got %#v", par, err)
		}
	}
}

// panicBackend panics inside VertexEdges to simulate a buggy provider.
type panicBackend struct{ graph.Backend }

func (p *panicBackend) VertexEdges(ctx context.Context, vids []string, dir graph.Direction, q *graph.Query) ([]*graph.Element, error) {
	panic("backend exploded")
}

// TestParallelPanicCapture checks that a panic on a worker goroutine is
// folded into *PanicError instead of crashing the process.
func TestParallelPanicCapture(t *testing.T) {
	src := bigGraph(t, 300, 900)
	bad := NewSource(&panicBackend{Backend: src.Backend}).WithParallelism(8)
	_, err := bad.V().Out().Execute()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "backend exploded" || pe.Stack == "" {
		t.Fatalf("got %#v", pe)
	}
}

// errOnVidBackend fails VertexEdges only when the batch contains a given
// vertex, so exactly one chunk of a parallel step errors and must cancel
// its siblings.
type errOnVidBackend struct {
	graph.Backend
	vid string
}

func (b *errOnVidBackend) VertexEdges(ctx context.Context, vids []string, dir graph.Direction, q *graph.Query) ([]*graph.Element, error) {
	for _, v := range vids {
		if v == b.vid {
			return nil, fmt.Errorf("injected failure for %s", b.vid)
		}
	}
	return b.Backend.VertexEdges(ctx, vids, dir, q)
}

// TestParallelFirstErrorWins checks that a failing chunk surfaces its own
// error, not the context.Canceled fallout its cancellation causes in
// sibling chunks.
func TestParallelFirstErrorWins(t *testing.T) {
	src := bigGraph(t, 300, 900)
	bad := NewSource(&errOnVidBackend{Backend: src.Backend, vid: "v250"}).WithParallelism(8)
	for i := 0; i < 20; i++ {
		_, err := bad.V().Out().Execute()
		if err == nil || !strings.Contains(err.Error(), "injected failure") {
			t.Fatalf("run %d: got %v, want injected failure", i, err)
		}
	}
}

// TestParallelCancellation checks that a cancelled query context aborts a
// parallel run with the usual interrupted error.
func TestParallelCancellation(t *testing.T) {
	src := bigGraph(t, 300, 900).WithParallelism(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := src.V().Out().ExecuteCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestParallelWorkerGauge checks that borrowed workers are tracked and the
// gauge settles back to zero after the query.
func TestParallelWorkerGauge(t *testing.T) {
	src := bigGraph(t, 300, 900)
	g := &telemetry.Gauge{}
	s := src.WithParallelism(8)
	s.WorkerGauge = g
	if _, err := s.V().Out().Out().Execute(); err != nil {
		t.Fatal(err)
	}
	if v := g.Value(); v != 0 {
		t.Fatalf("worker gauge = %d after query, want 0", v)
	}
}

// TestParallelNestedNoDeadlock drives nested parallelism (fan-out inside
// where() sub-traversals) at a tiny pool size; the inline-execution
// fallback must keep making progress.
func TestParallelNestedNoDeadlock(t *testing.T) {
	src := bigGraph(t, 300, 900).WithParallelism(2)
	got, err := src.V().Where(Anon().Out().Out()).Count().ToList()
	if err != nil {
		t.Fatal(err)
	}
	want, err := bigGraph(t, 300, 900).WithParallelism(1).V().Where(Anon().Out().Out()).Count().ToList()
	if err != nil {
		t.Fatal(err)
	}
	if Display(got[0]) != Display(want[0]) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// WithSource rebinds a built traversal to another source; test helper for
// running one plan at several parallelism levels.
func (t *Traversal) WithSource(s *Source) *Traversal {
	t.Src = s
	return t
}
