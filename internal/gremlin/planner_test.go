package gremlin

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"db2graph/internal/graph"
	"db2graph/internal/sql/types"
)

// skewGraph builds the skewed-degree property graph the planner tests run
// on: a hub topic every user follows (duplicate-endpoint skew), a dense
// mention ring (high fan-out), and a sparse knows relation, with a small
// integer group property for predicates.
func skewGraph(t testing.TB) *graph.MemBackend {
	m := graph.NewMemBackend()
	add := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	const users = 40
	for i := 0; i < 3; i++ {
		add(m.AddVertex(&graph.Element{ID: fmt.Sprintf("t%d", i), Label: "topic"}))
	}
	for i := 0; i < users; i++ {
		g, _ := types.FromGo(i % 4)
		n, _ := types.FromGo(fmt.Sprintf("user%d", i))
		add(m.AddVertex(&graph.Element{ID: fmt.Sprintf("u%d", i), Label: "user",
			Props: map[string]types.Value{"group": g, "name": n}}))
	}
	eid := 0
	edge := func(label, out, in string) {
		eid++
		add(m.AddEdge(&graph.Element{ID: fmt.Sprintf("e%d", eid), Label: label,
			OutV: out, InV: in, IsEdge: true}))
	}
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("u%d", i)
		edge("follows", u, "t0") // hub: every user follows t0
		if i%4 == 0 {
			edge("follows", u, "t1")
		}
		edge("likes", "t0", u) // hub likes back
		for j := 1; j <= 6; j++ {
			edge("mentions", u, fmt.Sprintf("u%d", (i+j)%users))
		}
		edge("knows", u, fmt.Sprintf("u%d", (i*7)%users))
	}
	edge("follows", "u0", "t2")
	return m
}

// randScript generates one random traversal over the skew graph. The
// generator is loosely typed (it tracks element-vs-value streams) so most
// scripts execute successfully; the rest must fail identically planned and
// unplanned.
func randScript(r *rand.Rand) string {
	labels := []string{"follows", "likes", "mentions", "knows"}
	pick := func(ss []string) string { return ss[r.Intn(len(ss))] }
	labelArgs := func() string {
		switch r.Intn(4) {
		case 0:
			return ""
		case 1:
			return "'" + pick(labels) + "'"
		default:
			a, b := pick(labels), pick(labels)
			return "'" + a + "','" + b + "'"
		}
	}
	var b strings.Builder
	switch r.Intn(4) {
	case 0:
		b.WriteString("g.V()")
	case 1:
		fmt.Fprintf(&b, "g.V('u%d')", r.Intn(40))
	case 2:
		fmt.Fprintf(&b, "g.V('u%d','u%d','t0')", r.Intn(40), r.Intn(40))
	default:
		b.WriteString("g.V('t0')")
	}
	values := false
	for n := 1 + r.Intn(4); n > 0 && !values; n-- {
		switch r.Intn(12) {
		case 0, 1, 2:
			fmt.Fprintf(&b, ".%s(%s)", pick([]string{"out", "in", "both"}), labelArgs())
		case 3:
			fmt.Fprintf(&b, ".%sE('%s').%s", pick([]string{"out", "in"}), pick(labels),
				pick([]string{"inV()", "outV()", "otherV()"}))
		case 4:
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(&b, ".has('group', %d)", r.Intn(4))
			case 1:
				fmt.Fprintf(&b, ".has('group', gt(%d))", r.Intn(3))
			default:
				fmt.Fprintf(&b, ".has('group', within(%d, %d))", r.Intn(4), r.Intn(4))
			}
		case 5:
			fmt.Fprintf(&b, ".hasLabel('%s')", pick([]string{"user", "topic"}))
		case 6:
			b.WriteString(".dedup()")
		case 7:
			fmt.Fprintf(&b, ".limit(%d)", 1+r.Intn(20))
		case 8:
			fmt.Fprintf(&b, ".where(out('%s'))", pick(labels))
		case 9:
			fmt.Fprintf(&b, ".not(out('%s'))", pick(labels))
		case 10:
			b.WriteString(".values('name')")
			values = true
		default:
			fmt.Fprintf(&b, ".hasId('u%d', 'u%d', 't0')", r.Intn(40), r.Intn(40))
		}
	}
	switch r.Intn(4) {
	case 0:
		b.WriteString(".count()")
	case 1:
		if !values {
			b.WriteString(".order().by('name')")
		}
	case 2:
		if !values {
			b.WriteString(".groupCount().by('group')")
		}
	}
	return b.String()
}

// render serializes results for exact comparison.
func render(objs []any) string {
	parts := make([]string, len(objs))
	for i, o := range objs {
		parts[i] = Display(o)
	}
	return strings.Join(parts, ",")
}

// TestPlannerRandomDifferential is the property test behind the cost model:
// 500 random traversals over the skewed graph must return bit-identical
// results planned (statistics + shape-keyed plan cache + parallel engine)
// and unplanned (static serial). Each script runs twice planned, so the
// second execution covers the prepared-plan rebinding path.
func TestPlannerRandomDifferential(t *testing.T) {
	m := skewGraph(t)
	sp := graph.NewStatsProvider(m)
	if _, err := sp.Analyze(context.Background()); err != nil {
		t.Fatal(err)
	}
	golden := NewSource(m)
	planned := NewSource(m).WithParallelism(8).WithPlanCache(NewPlanCache(0)).WithStats(sp)

	r := rand.New(rand.NewSource(20260808))
	for i := 0; i < 500; i++ {
		script := randScript(r)
		wantObjs, wantErr := RunScript(golden, script, nil)
		for round := 0; round < 2; round++ {
			gotObjs, gotErr := RunScript(planned, script, nil)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("script %d %q round %d: planned err %v, unplanned err %v",
					i, script, round, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if got, want := render(gotObjs), render(wantObjs); got != want {
				t.Fatalf("script %d %q round %d diverged\n got: %s\nwant: %s",
					i, script, round, got, want)
			}
		}
	}
}

// TestPlanCacheLiteralVariantsShareOnePlan is the regression test for the
// old exact-text keying: two scripts differing only in literals must compile
// once and share a single cached plan (the second is a hit).
func TestPlanCacheLiteralVariantsShareOnePlan(t *testing.T) {
	src := testGraph(t).WithPlanCache(NewPlanCache(0))
	a, err := RunScript(src, `g.V('p1').out('hasDisease').values('conceptName')`, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScript(src, `g.V('p2').out('hasDisease').values('conceptName')`, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := src.PlanCache.Stats()
	if st.Entries != 1 {
		t.Fatalf("literal variants compiled %d plans, want 1 shared (stats %+v)", st.Entries, st)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("want 1 miss + 1 hit, got %+v", st)
	}
	if render(a) == render(b) {
		t.Fatalf("p1/p2 variants returned identical results %q; binding did not substitute", render(a))
	}
	// The same ids must keep answering correctly after many rebinding
	// rounds against the shared template.
	for i := 0; i < 3; i++ {
		again, err := RunScript(src, `g.V('p1').out('hasDisease').values('conceptName')`, nil)
		if err != nil {
			t.Fatal(err)
		}
		if render(again) != render(a) {
			t.Fatalf("rebinding drifted: %q vs %q", render(again), render(a))
		}
	}
}

// TestPlanCacheHitRateLiteralWorkload replays a literal-varying workload —
// the shape mix a parameterized OLTP client produces — and requires a >90%
// plan-cache hit rate. Under exact-text keying this workload measured ~0%.
func TestPlanCacheHitRateLiteralWorkload(t *testing.T) {
	m := skewGraph(t)
	src := NewSource(m).WithPlanCache(NewPlanCache(0))
	shapes := []func(i int) string{
		func(i int) string { return fmt.Sprintf(`g.V('u%d').out('follows')`, i%40) },
		func(i int) string { return fmt.Sprintf(`g.V('u%d').out('mentions').has('group', %d).count()`, i%40, i%4) },
		func(i int) string { return fmt.Sprintf(`g.V().has('group', %d).out('knows').values('name')`, i%4) },
		func(i int) string { return fmt.Sprintf(`g.V('u%d','u%d').both('mentions').dedup().count()`, i%40, (i*3)%40) },
	}
	const rounds = 50
	for i := 0; i < rounds; i++ {
		for _, shape := range shapes {
			if _, err := RunScript(src, shape(i), nil); err != nil {
				t.Fatalf("%q: %v", shape(i), err)
			}
		}
	}
	st := src.PlanCache.Stats()
	total := st.Hits + st.Misses
	rate := float64(st.Hits) / float64(total)
	if rate <= 0.9 {
		t.Fatalf("hit rate %.3f (%d/%d), want > 0.9: %+v", rate, st.Hits, total, st)
	}
	if st.Entries != int64(len(shapes)) {
		t.Fatalf("workload of %d shapes cached %d plans: %+v", len(shapes), st.Entries, st)
	}
}

// TestPlanCacheEviction fills a tiny cache past capacity and checks LRU
// eviction bookkeeping.
func TestPlanCacheEviction(t *testing.T) {
	src := testGraph(t).WithPlanCache(NewPlanCache(2))
	scripts := []string{
		`g.V().hasLabel('patient').count()`,
		`g.V().hasLabel('disease').count()`,
		`g.V().out('isa').count()`,
	}
	for _, s := range scripts {
		if _, err := RunScript(src, s, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := src.PlanCache.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("want 2 entries + 1 eviction, got %+v", st)
	}
	// The evicted (least recently used) shape recompiles: a miss.
	if _, err := RunScript(src, scripts[0], nil); err != nil {
		t.Fatal(err)
	}
	if st = src.PlanCache.Stats(); st.Misses != 4 {
		t.Fatalf("evicted shape should miss (4 total), got %+v", st)
	}
}

// TestPlanCacheInvalidation checks both invalidation axes of the plan key:
// a backend configuration change and a statistics epoch change must each
// retire cached plans (age-out keying, not explicit flush).
func TestPlanCacheInvalidation(t *testing.T) {
	m := skewGraph(t)
	sp := graph.NewStatsProvider(m)
	src := NewSource(m).WithPlanCache(NewPlanCache(0)).WithStats(sp)
	script := `g.V('u1').out('follows')`

	run := func() {
		t.Helper()
		if _, err := RunScript(src, script, nil); err != nil {
			t.Fatal(err)
		}
	}
	run()
	run()
	st := src.PlanCache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("warmup: want 1 miss + 1 hit, got %+v", st)
	}

	// A new statistics epoch must recompile (the plan was costed — or not
	// costed at all — under the old epoch).
	if _, err := sp.Analyze(context.Background()); err != nil {
		t.Fatal(err)
	}
	run()
	if st = src.PlanCache.Stats(); st.Misses != 2 {
		t.Fatalf("stats epoch bump should miss, got %+v", st)
	}
	run()
	if st = src.PlanCache.Stats(); st.Hits != 2 {
		t.Fatalf("same epoch should hit again, got %+v", st)
	}
}

// TestExplainReportShape checks the explain() terminal step end to end:
// static and costed reports, estimate vs actual columns, and the
// planner-decision notes on the skewed graph.
func TestExplainReportShape(t *testing.T) {
	m := skewGraph(t)
	src := NewSource(m)
	res, err := RunScript(src, `g.V().out('follows').explain()`, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := res[0].(*ExplainReport)
	if !ok {
		t.Fatalf("explain returned %T, want *ExplainReport", res[0])
	}
	if rep.Costed {
		t.Fatal("report costed without statistics")
	}
	if !strings.Contains(rep.String(), "static (no statistics)") {
		t.Fatalf("static render missing marker:\n%s", rep.String())
	}

	sp := graph.NewStatsProvider(m)
	if _, err := sp.Analyze(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err = RunScript(src.WithStats(sp), `g.V().out('follows').explain()`, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep = res[0].(*ExplainReport)
	if !rep.Costed || !rep.StatsFresh {
		t.Fatalf("want costed+fresh report, got %+v", rep)
	}
	if len(rep.Nodes) != 2 {
		t.Fatalf("want 2 plan nodes, got %d: %s", len(rep.Nodes), rep.String())
	}
	hop := rep.Nodes[1]
	if hop.EstRows < 0 {
		t.Fatalf("hop estimate missing: %+v", hop)
	}
	if hop.ActualRows != 51 { // 40 u->t0, 10 u->t1, 1 u0->t2
		t.Fatalf("hop actual rows = %d, want 51", hop.ActualRows)
	}
	if !strings.Contains(rep.String(), "scanresolve") {
		t.Fatalf("hub hop should carry a scanresolve note:\n%s", rep.String())
	}
	// explain() anywhere but last is a planning error.
	if _, err := RunScript(src, `g.V().explain().count()`, nil); err == nil {
		t.Fatal("mid-chain explain() should fail")
	}
}

// TestPreparedMarkerStringsAreInert checks the normalization guard: a script
// whose *string literal* contains the parameter-marker prefix must execute
// correctly (shapeSafe falls back to exact-text keying) and never corrupt
// the bound plan.
func TestPreparedMarkerStringsAreInert(t *testing.T) {
	src := testGraph(t).WithPlanCache(NewPlanCache(0))
	script := "g.V().has('name', '\x00gp\x000')"
	for round := 0; round < 2; round++ {
		res, err := RunScript(src, script, nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(res) != 0 {
			t.Fatalf("round %d: marker-looking literal matched %d vertices", round, len(res))
		}
	}
}
