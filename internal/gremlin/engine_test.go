package gremlin

import (
	"sort"
	"testing"

	"db2graph/internal/graph"
	"db2graph/internal/sql/types"
)

// testGraph builds the paper's Figure 2(b) property graph on the memory
// backend:
//
//	patients p1..p3, diseases d10 (diabetes) <- d11 (type2) <- d13 (mody),
//	d12 (hypertension); hasDisease and isa edges.
func testGraph(t *testing.T) *Source {
	t.Helper()
	m := graph.NewMemBackend()
	add := func(el *graph.Element, edge bool) {
		t.Helper()
		var err error
		if edge {
			err = m.AddEdge(el)
		} else {
			err = m.AddVertex(el)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	p := func(kv ...any) map[string]types.Value {
		out := map[string]types.Value{}
		for i := 0; i+1 < len(kv); i += 2 {
			v, _ := types.FromGo(kv[i+1])
			out[kv[i].(string)] = v
		}
		return out
	}
	add(&graph.Element{ID: "p1", Label: "patient", Props: p("patientID", 1, "name", "Alice", "subscriptionID", 100)}, false)
	add(&graph.Element{ID: "p2", Label: "patient", Props: p("patientID", 2, "name", "Bob", "subscriptionID", 200)}, false)
	add(&graph.Element{ID: "p3", Label: "patient", Props: p("patientID", 3, "name", "Carol", "subscriptionID", 300)}, false)
	add(&graph.Element{ID: "d10", Label: "disease", Props: p("conceptName", "diabetes")}, false)
	add(&graph.Element{ID: "d11", Label: "disease", Props: p("conceptName", "type 2 diabetes")}, false)
	add(&graph.Element{ID: "d12", Label: "disease", Props: p("conceptName", "hypertension")}, false)
	add(&graph.Element{ID: "d13", Label: "disease", Props: p("conceptName", "mody diabetes")}, false)
	add(&graph.Element{ID: "d9", Label: "disease", Props: p("conceptName", "metabolic disease")}, false)
	add(&graph.Element{ID: "e1", Label: "hasDisease", OutV: "p1", InV: "d11", Props: p("description", "2018")}, true)
	add(&graph.Element{ID: "e2", Label: "hasDisease", OutV: "p2", InV: "d10", Props: p("description", "2019")}, true)
	add(&graph.Element{ID: "e3", Label: "hasDisease", OutV: "p3", InV: "d12", Props: p("description", "2020")}, true)
	add(&graph.Element{ID: "e4", Label: "isa", OutV: "d11", InV: "d10"}, true)
	add(&graph.Element{ID: "e5", Label: "isa", OutV: "d13", InV: "d11"}, true)
	add(&graph.Element{ID: "e6", Label: "isa", OutV: "d10", InV: "d9"}, true)
	return NewSource(m)
}

func ids(t *testing.T, tr *Traversal) []string {
	t.Helper()
	objs, err := tr.ToList()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, o := range objs {
		switch x := o.(type) {
		case *graph.Element:
			out = append(out, x.ID)
		case types.Value:
			out = append(out, x.Text())
		default:
			t.Fatalf("unexpected object %T", o)
		}
	}
	sort.Strings(out)
	return out
}

func eq(t *testing.T, got []string, want ...string) {
	t.Helper()
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestVAndHasLabel(t *testing.T) {
	g := testGraph(t)
	eq(t, ids(t, g.V().HasLabel("patient")), "p1", "p2", "p3")
	eq(t, ids(t, g.V("p2")), "p2")
	eq(t, ids(t, g.V().HasLabel("nope")))
}

func TestHasProperty(t *testing.T) {
	g := testGraph(t)
	eq(t, ids(t, g.V().Has("name", "Alice")), "p1")
	eq(t, ids(t, g.V().HasLabel("patient").HasP("patientID", Gte(2))), "p2", "p3")
	eq(t, ids(t, g.V().HasP("patientID", Within(1, 3))), "p1", "p3")
}

func TestOutInBoth(t *testing.T) {
	g := testGraph(t)
	eq(t, ids(t, g.V("p1").Out("hasDisease")), "d11")
	eq(t, ids(t, g.V("d10").In("isa")), "d11")
	eq(t, ids(t, g.V("d11").Both("isa")), "d10", "d13")
	eq(t, ids(t, g.V("d11").Out()), "d10")
	eq(t, ids(t, g.V("d11").In()), "d13", "p1")
}

func TestEdgeSteps(t *testing.T) {
	g := testGraph(t)
	eq(t, ids(t, g.V("p1").OutE("hasDisease")), "e1")
	eq(t, ids(t, g.V("d10").InE()), "e2", "e4")
	eq(t, ids(t, g.V("p1").OutE("hasDisease").InV()), "d11")
	eq(t, ids(t, g.V("p1").OutE("hasDisease").OutV()), "p1")
	eq(t, ids(t, g.E("e4")), "e4")
	eq(t, ids(t, g.E().HasLabel("isa")), "e4", "e5", "e6")
	eq(t, ids(t, g.V("d11").BothE("isa").OtherV()), "d10", "d13")
}

func TestValuesAndValueMap(t *testing.T) {
	g := testGraph(t)
	vals, err := g.V("p1").Values("name", "subscriptionID").ToValues()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0].Text() != "Alice" || vals[1].I != 100 {
		t.Fatalf("values = %v", vals)
	}
	objs, err := g.V("p1").ValueMap("name").ToList()
	if err != nil {
		t.Fatal(err)
	}
	m := objs[0].(map[string]types.Value)
	if len(m) != 1 || m["name"].Text() != "Alice" {
		t.Fatalf("valueMap = %v", m)
	}
}

func TestIDAndLabelSteps(t *testing.T) {
	g := testGraph(t)
	vals, err := g.V("p1").ID().ToValues()
	if err != nil || vals[0].Text() != "p1" {
		t.Fatalf("id = %v, %v", vals, err)
	}
	vals, err = g.V("p1").Label().ToValues()
	if err != nil || vals[0].Text() != "patient" {
		t.Fatalf("label = %v, %v", vals, err)
	}
}

func TestCountAndAggregates(t *testing.T) {
	g := testGraph(t)
	n, err := g.V().Count().Next()
	if err != nil {
		t.Fatal(err)
	}
	if n.(types.Value).I != 8 {
		t.Fatalf("count = %v", n)
	}
	n, _ = g.V("p1").OutE("hasDisease").Count().Next()
	if n.(types.Value).I != 1 {
		t.Fatalf("edge count = %v", n)
	}
	n, _ = g.V().HasLabel("patient").Values("subscriptionID").Sum().Next()
	if f, _ := n.(types.Value).Float(); f != 600 {
		t.Fatalf("sum = %v", n)
	}
	n, _ = g.V().HasLabel("patient").Values("subscriptionID").Mean().Next()
	if n.(types.Value).F != 200 {
		t.Fatalf("mean = %v", n)
	}
	n, _ = g.V().HasLabel("patient").Values("subscriptionID").Max().Next()
	if v, _ := n.(types.Value).Int(); v != 300 {
		t.Fatalf("max = %v", n)
	}
}

func TestDedupLimitOrder(t *testing.T) {
	g := testGraph(t)
	// p1 and p3's diseases both reach d10... build duplicates via both().
	eq(t, ids(t, g.V("d11").Both("isa").Both("isa").Dedup()), "d11", "d9")
	objs, err := g.V().HasLabel("patient").OrderBy("name", true).Limit(2).Values("name").ToValues()
	if err != nil {
		t.Fatal(err)
	}
	if objs[0].Text() != "Carol" || objs[1].Text() != "Bob" {
		t.Fatalf("ordered = %v", objs)
	}
	vals, _ := g.V().HasLabel("patient").Values("name").Order().ToValues()
	if vals[0].Text() != "Alice" || vals[2].Text() != "Carol" {
		t.Fatalf("value order = %v", vals)
	}
}

func TestRepeatTimesStoreCap(t *testing.T) {
	g := testGraph(t)
	// The paper's similar-diseases pattern: from p1's disease, walk the
	// ontology up 2 hops collecting everything.
	res, err := g.V("p1").Out("hasDisease").
		Repeat(Anon().Out("isa").Dedup().Store("x")).Times(2).
		Cap("x").Next()
	if err != nil {
		t.Fatal(err)
	}
	list := res.([]any)
	var got []string
	for _, o := range list {
		got = append(got, o.(*graph.Element).ID)
	}
	sort.Strings(got)
	eq(t, got, "d10", "d9") // two hops up the ontology
}

func TestSimilarDiseasesEndToEnd(t *testing.T) {
	g := testGraph(t)
	// Up 2 then down 2 from p1's disease d11: up gives d10; down from d10
	// gives d11, then d13.
	res, err := g.V().HasLabel("patient").Has("patientID", 1).Out("hasDisease").
		Repeat(Anon().Out("isa").Dedup().Store("x")).Times(2).
		Repeat(Anon().In("isa").Dedup().Store("x")).Times(2).
		Cap("x").Next()
	if err != nil {
		t.Fatal(err)
	}
	similar := res.([]any)
	// Up-walk stores d10, d9; down-walk from d9 re-stores d10 then d11.
	// cap() keeps duplicates (the paper dedups after in('hasDisease')).
	seen := map[string]bool{}
	for _, o := range similar {
		seen[o.(*graph.Element).ID] = true
	}
	var names []string
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	eq(t, names, "d10", "d11", "d9")

	// Second statement of the paper's query: patients with any of these.
	out, err := g.V(similar).In("hasDisease").Dedup().Values("patientID").ToValues()
	if err != nil {
		t.Fatal(err)
	}
	var pids []int64
	for _, v := range out {
		pids = append(pids, v.I)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	if len(pids) != 2 || pids[0] != 1 || pids[1] != 2 {
		t.Fatalf("similar patients = %v", pids)
	}
}

func TestRepeatEmit(t *testing.T) {
	g := testGraph(t)
	eq(t, ids(t, g.V("d13").Repeat(Anon().Out("isa")).Times(2).Emit()), "d10", "d11")
}

func TestWhereAndNot(t *testing.T) {
	g := testGraph(t)
	// Patients whose disease has an isa-parent (p1: d11 isa d10; p2: d10 isa d9).
	eq(t, ids(t, g.V().HasLabel("patient").Where(Anon().Out("hasDisease").Out("isa"))), "p1", "p2")
	eq(t, ids(t, g.V().HasLabel("patient").Not(Anon().Out("hasDisease").Out("isa"))), "p3")
	// getLink pattern: does an edge p1-hasDisease->d11 exist?
	eq(t, ids(t, g.V("p1").OutE("hasDisease").Where(Anon().InV().HasID("d11"))), "e1")
	eq(t, ids(t, g.V("p1").OutE("hasDisease").Where(Anon().InV().HasID("d99"))))
}

func TestUnion(t *testing.T) {
	g := testGraph(t)
	eq(t, ids(t, g.V("d11").Union(Anon().Out("isa"), Anon().In("isa"))), "d10", "d13")
}

func TestPath(t *testing.T) {
	g := testGraph(t)
	objs, err := g.V("p1").Out("hasDisease").Out("isa").Path().ToList()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Fatalf("paths = %d", len(objs))
	}
	path := objs[0].([]any)
	if len(path) != 3 {
		t.Fatalf("path len = %d", len(path))
	}
	if path[0].(*graph.Element).ID != "p1" || path[2].(*graph.Element).ID != "d10" {
		t.Fatalf("path = %v", path)
	}
}

func TestSimplePath(t *testing.T) {
	g := testGraph(t)
	// both() from d11 then back revisits d11; simplePath keeps only the
	// genuinely extending walks (d11 -> d10 -> d9).
	eq(t, ids(t, g.V("d11").Both("isa").Both("isa").SimplePath()), "d9")
	got := ids(t, g.V("d13").Out("isa").Out("isa").SimplePath())
	eq(t, got, "d10")
}

func TestAsSelect(t *testing.T) {
	g := testGraph(t)
	objs, err := g.V("p1").As("p").Out("hasDisease").As("d").Select("p", "d").ToList()
	if err != nil {
		t.Fatal(err)
	}
	m := objs[0].(map[string]any)
	if m["p"].(*graph.Element).ID != "p1" || m["d"].(*graph.Element).ID != "d11" {
		t.Fatalf("select = %v", m)
	}
	objs, err = g.V("p1").As("p").Out("hasDisease").Select("p").ToList()
	if err != nil || objs[0].(*graph.Element).ID != "p1" {
		t.Fatalf("single select = %v, %v", objs, err)
	}
}

func TestGroupCount(t *testing.T) {
	g := testGraph(t)
	obj, err := g.V().GroupCountBy("~missing").Next()
	if err != nil {
		t.Fatal(err)
	}
	_ = obj
	obj, err = g.V().Label().GroupCount().Next()
	if err != nil {
		t.Fatal(err)
	}
	counts := obj.(map[string]int64)
	if counts["patient"] != 3 || counts["disease"] != 5 {
		t.Fatalf("groupCount = %v", counts)
	}
}

func TestConstantAndIs(t *testing.T) {
	g := testGraph(t)
	vals, err := g.V("p1").Constant("yes").ToValues()
	if err != nil || vals[0].Text() != "yes" {
		t.Fatalf("constant = %v, %v", vals, err)
	}
	eq(t, ids(t, g.V("p1").OutE("hasDisease").InV().ID().Is(Eq("d11"))), "d11")
	got, err := g.V().HasLabel("patient").Values("patientID").Is(Gt(1)).ToValues()
	if err != nil || len(got) != 2 {
		t.Fatalf("is(gt) = %v, %v", got, err)
	}
}

func TestStrategiesProduceSameResults(t *testing.T) {
	g := testGraph(t)
	naive := g.WithoutStrategies()
	queries := []func(s *Source) *Traversal{
		func(s *Source) *Traversal { return s.V().HasLabel("patient").Has("patientID", 2) },
		func(s *Source) *Traversal { return s.V("p1").OutE("hasDisease") },
		func(s *Source) *Traversal { return s.V("p1").OutE("hasDisease").Count() },
		func(s *Source) *Traversal { return s.V("p1").Out("hasDisease").Out("isa") },
		func(s *Source) *Traversal { return s.V().HasLabel("patient").Values("subscriptionID").Sum() },
		func(s *Source) *Traversal { return s.V().Count() },
		func(s *Source) *Traversal {
			return s.V("p1").OutE("hasDisease").Where(Anon().InV().HasID("d11"))
		},
	}
	for i, q := range queries {
		a, err := q(g).ToList()
		if err != nil {
			t.Fatalf("query %d optimized: %v", i, err)
		}
		b, err := q(naive).ToList()
		if err != nil {
			t.Fatalf("query %d naive: %v", i, err)
		}
		if Display(a) != Display(b) {
			t.Fatalf("query %d: optimized %v != naive %v", i, Display(a), Display(b))
		}
	}
}

func TestStrategyPlanShapes(t *testing.T) {
	g := testGraph(t)
	// Aggregate pushdown: V().count() becomes a single aggregated GraphStep.
	tr := g.V().Count()
	steps := applyStrategies(cloneSteps(tr.Steps), g.Strategies)
	if len(steps) != 1 {
		t.Fatalf("plan = %s", PlanString(steps))
	}
	if gs := steps[0].(*GraphStep); gs.PushAgg == nil || gs.PushAgg.Kind != graph.AggCount {
		t.Fatalf("no agg pushdown: %s", PlanString(steps))
	}
	// GraphStep::VertexStep mutation: V(id).outE() fuses to one seeded step.
	tr = g.V("p1").OutE("hasDisease").Count()
	steps = applyStrategies(cloneSteps(tr.Steps), g.Strategies)
	if len(steps) != 1 {
		t.Fatalf("plan = %s", PlanString(steps))
	}
	vs := steps[0].(*VertexStep)
	if len(vs.SeedIDs) != 1 || vs.SeedIDs[0] != "p1" || vs.PushAgg == nil {
		t.Fatalf("fusion failed: %s", PlanString(steps))
	}
	// Predicate pushdown into GraphStep.
	tr = g.V().HasLabel("patient").Has("name", "Alice")
	steps = applyStrategies(cloneSteps(tr.Steps), g.Strategies)
	if len(steps) != 1 {
		t.Fatalf("plan = %s", PlanString(steps))
	}
	gs := steps[0].(*GraphStep)
	if len(gs.Query.Labels) != 1 || len(gs.Query.Preds) != 1 {
		t.Fatalf("predicate pushdown failed: %+v", gs.Query)
	}
	// Projection pushdown.
	tr = g.V().HasLabel("patient").Values("name")
	steps = applyStrategies(cloneSteps(tr.Steps), g.Strategies)
	gs = steps[0].(*GraphStep)
	if len(gs.Query.Projection) != 1 || gs.Query.Projection[0] != "name" {
		t.Fatalf("projection pushdown failed: %+v", gs.Query)
	}
	// Paths disable the fusion.
	tr = g.V("p1").OutE("hasDisease").Path()
	steps = applyStrategies(cloneSteps(tr.Steps), g.Strategies)
	if _, ok := steps[0].(*GraphStep); !ok {
		t.Fatalf("fusion should be disabled with path(): %s", PlanString(steps))
	}
}

func TestRepeatedExecutionStable(t *testing.T) {
	g := testGraph(t)
	tr := g.V().HasLabel("patient").Count()
	for i := 0; i < 3; i++ {
		n, err := tr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if n.(types.Value).I != 3 {
			t.Fatalf("iteration %d: count = %v", i, n)
		}
	}
	// The original plan must be untouched by strategy application.
	if len(tr.Steps) != 3 {
		t.Fatalf("original steps mutated: %s", PlanString(tr.Steps))
	}
}

func TestErrorPaths(t *testing.T) {
	g := testGraph(t)
	if _, err := g.V().Values("name").Out().ToList(); err == nil {
		t.Fatal("out() on values should fail")
	}
	if _, err := g.V().OutV().ToList(); err == nil {
		t.Fatal("outV() on vertices should fail")
	}
	if _, err := g.V().Sum().ToList(); err == nil {
		t.Fatal("sum() on elements should fail")
	}
	if _, err := (&Traversal{}).ToList(); err == nil {
		t.Fatal("sourceless traversal should fail")
	}
	if _, err := g.V().Times(2).ToList(); err == nil {
		t.Fatal("times without repeat should fail")
	}
	if _, err := g.V("p1").Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.V("nope").Next(); err == nil {
		t.Fatal("Next on empty should fail")
	}
}

func TestStepNamesAndPlanString(t *testing.T) {
	g := testGraph(t)
	tr := g.V("p1").HasLabel("patient").OutE("hasDisease").InV().
		Has("conceptName", "x").Values("conceptName").Dedup().Limit(3).
		OrderBy("conceptName", false).Store("s").Cap("s")
	// Every step renders a name and the plan renders without panicking.
	for _, s := range tr.Steps {
		if s.Name() == "" {
			t.Fatalf("step %T has empty name", s)
		}
	}
	if PlanString(tr.Steps) == "" {
		t.Fatal("empty plan string")
	}
	// Container steps too.
	tr2 := g.V().Repeat(Anon().Out()).Times(2).Emit().
		Where(Anon().In()).Not(Anon().Both()).
		Union(Anon().Out(), Anon().In()).
		Path().SimplePath().As("a").Select("a").
		GroupCount().Constant(1).Is(Eq(1)).Count().Sum().Mean().Min().Max().
		ID().Label().ValueMap("x").BothV().OtherV().OutV()
	for _, s := range tr2.Steps {
		if s.Name() == "" {
			t.Fatalf("step %T has empty name", s)
		}
	}
	if PlanString(applyStrategies(cloneSteps(tr2.Steps), g.Strategies)) == "" {
		t.Fatal("empty optimized plan string")
	}
}

func TestIterateRunsSideEffects(t *testing.T) {
	g := testGraph(t)
	tr := g.V().HasLabel("patient").Store("seen")
	if err := tr.Iterate(); err != nil {
		t.Fatal(err)
	}
	// Iterate on a failing traversal surfaces the error.
	if err := g.V().Values("name").Out().Iterate(); err == nil {
		t.Fatal("Iterate swallowed an error")
	}
}

func TestObjKeyDistinguishesShapes(t *testing.T) {
	v := &graph.Element{ID: "x"}
	e := &graph.Element{ID: "x", IsEdge: true}
	if objKey(v) == objKey(e) {
		t.Fatal("vertex and edge with same id collide in dedup")
	}
	if objKey(types.NewInt(1)) == objKey(types.NewString("1")) {
		t.Fatal("int 1 and string '1' collide in dedup")
	}
	if objKey([]any{1}) == "" {
		t.Fatal("list key empty")
	}
}

func TestRepeatUntil(t *testing.T) {
	g := testGraph(t)
	// Walk the ontology upward until reaching the root (d9): from d13 the
	// chain is d13 -> d11 -> d10 -> d9.
	eq(t, ids(t, g.V("d13").Repeat(Anon().Out("isa")).Until(Anon().HasID("d9"))), "d9")
	// until + times bound: stop early, nothing satisfied yet.
	eq(t, ids(t, g.V("d13").Repeat(Anon().Out("isa")).Until(Anon().HasID("d9")).Times(2)))
	// until satisfied within the bound.
	eq(t, ids(t, g.V("d13").Repeat(Anon().Out("isa")).Until(Anon().HasID("d9")).Times(5)), "d9")
	// A walk whose frontier dies out returns empty without error
	// (traverser death, standard Gremlin semantics).
	eq(t, ids(t, g.V("d13").Repeat(Anon().Out("isa")).Until(Anon().HasID("nope"))))
	// A cyclic walk that never satisfies until() errors out instead of
	// spinning forever (the ontology's both() walk cycles indefinitely).
	if _, err := g.V("d11").Repeat(Anon().Both("isa").Dedup()).Until(Anon().HasID("nope")).ToList(); err == nil {
		t.Fatal("non-converging cyclic until accepted")
	}
	// Without dedup the frontier explodes; the engine must error rather
	// than consume unbounded memory.
	if _, err := g.V("d11").Repeat(Anon().Both("isa")).Until(Anon().HasID("nope")).ToList(); err == nil {
		t.Fatal("exponential frontier accepted")
	}
	// repeat without times or until errors.
	tr := g.V("d13")
	tr.Steps = append(tr.Steps, &RepeatStep{Body: Anon().Out("isa").Steps})
	tr.Steps[len(tr.Steps)-1].(*RepeatStep).Times = 0
	if _, err := tr.ToList(); err == nil {
		t.Fatal("unbounded repeat without until accepted")
	}
	// until without preceding repeat errors.
	if _, err := g.V().Until(Anon().Out()).ToList(); err == nil {
		t.Fatal("until without repeat accepted")
	}
}

func TestRepeatUntilText(t *testing.T) {
	g := testGraph(t)
	eq(t, ids(t, parse(t, g, "g.V('d13').repeat(out('isa')).until(hasId('d9'))")), "d9")
	// until + emit collects intermediate frontiers too.
	eq(t, ids(t, parse(t, g, "g.V('d13').repeat(out('isa')).until(hasId('d9')).emit()")),
		"d10", "d11", "d9")
}
