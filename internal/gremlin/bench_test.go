package gremlin

import (
	"fmt"
	"math/rand"
	"testing"

	"db2graph/internal/graph"
)

// benchBackend builds a deterministic scale-free-ish graph on the memory
// backend: n vertices in 4 labels, ~4 out-edges each.
func benchBackend(b *testing.B, n int) *graph.MemBackend {
	b.Helper()
	m := graph.NewMemBackend()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		if err := m.AddVertex(&graph.Element{
			ID:    fmt.Sprintf("v%d", i),
			Label: fmt.Sprintf("t%d", i%4),
		}); err != nil {
			b.Fatal(err)
		}
	}
	eid := 0
	for i := 0; i < n; i++ {
		for k := 0; k < 4; k++ {
			if err := m.AddEdge(&graph.Element{
				ID:     fmt.Sprintf("e%d", eid),
				Label:  fmt.Sprintf("l%d", k%2),
				OutV:   fmt.Sprintf("v%d", i),
				InV:    fmt.Sprintf("v%d", rng.Intn(n)),
				IsEdge: true,
			}); err != nil {
				b.Fatal(err)
			}
			eid++
		}
	}
	return m
}

// BenchmarkTraverserPool measures the arena lease/allocate/release cycle in
// isolation (DESIGN.md §15). Steady state is allocation-free for batch sizes
// whose slabs and frame buffers come from the pools; the oversized subtest
// shows the deliberate fall-through to plain heap allocation.
func BenchmarkTraverserPool(b *testing.B) {
	for _, batch := range []int{64, 2048, 3 * frameLargeCap} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := newArena()
				al := a.local()
				frame := a.frame(batch)
				for j := 0; j < batch; j++ {
					tr := al.get()
					tr.FromV = "v"
					frame = append(frame, tr)
				}
				if len(frame) != batch {
					b.Fatal("frame short")
				}
				a.release()
			}
		})
	}
}

// BenchmarkPlanCache measures script execution with a cold parse on every
// run (miss) vs the compiled-plan cache serving the parsed, strategy-
// rewritten plan (hit). The difference is the lex+parse+rewrite overhead
// the cache removes from every repeated query.
func BenchmarkPlanCache(b *testing.B) {
	// Small graph: execution is cheap, so the parse/rewrite overhead the
	// cache removes dominates the difference between the two runs.
	m := benchBackend(b, 40)
	const script = `g.V().hasLabel('t1').out('l0').has('id').in().both().dedup().where(out('l1')).order().by('id').limit(5).values('id')`
	b.Run("miss", func(b *testing.B) {
		src := NewSource(m)
		for i := 0; i < b.N; i++ {
			if _, err := RunScript(src, script, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		src := NewSource(m).WithPlanCache(NewPlanCache(0))
		if _, err := RunScript(src, script, nil); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunScript(src, script, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchedExpand measures a two-hop frontier expansion through the
// backend's native vectorized multi-get (one sorted lookup per chunk) vs
// the generic per-contract fallback adapter, at serial and parallel
// execution.
func BenchmarkBatchedExpand(b *testing.B) {
	m := benchBackend(b, 2000)
	run := func(b *testing.B, src *Source) {
		b.Helper()
		tr := func() *Traversal { return src.V().Out("l0").Out().Count() }
		if _, err := tr().ToList(); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tr().ToList(); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("native/par=%d", par), func(b *testing.B) {
			run(b, NewSource(m).WithParallelism(par))
		})
		b.Run(fmt.Sprintf("fallback/par=%d", par), func(b *testing.B) {
			run(b, NewSource(graph.FallbackBatch(m)).WithParallelism(par))
		})
	}
}
