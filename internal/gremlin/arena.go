// Traverser memory discipline (see DESIGN.md §15): every traverser and
// chunk-output frame the engine materializes during one query comes from a
// per-query arena of pooled slabs instead of individual heap allocations.
//
// Lifecycle contract:
//
//   - Allocation is monotonic: slots are handed out in order and never
//     recycled while the query runs, so within a query every *Traverser is a
//     unique slot and aliasing is impossible by construction.
//   - Escape rule (copy-on-emit): ExecuteCtx deep-copies the final frame
//     into fresh heap objects before the arena is released, so nothing the
//     caller can reach ever points into pooled memory. Side effects
//     (store/cap), path snapshots, and labels only ever capture heap objects
//     (Obj values, copied []any paths, label maps), never arena slots.
//   - Reset-on-release: when the query finishes (success, error, or panic),
//     every slab and frame buffer is zeroed before going back to its
//     sync.Pool, so a pooled object can never leak one query's data into the
//     next. TestPooledAliasing proves both halves: results survive arbitrary
//     later queries, and deliberately disabling the emit copy makes the
//     corruption visible immediately.
//
// Concurrency: each parallel chunk (parallel.go runChunks) gets its own
// travAlloc — a private bump allocator over slabs leased from the shared
// arena under a mutex — so chunk goroutines never contend per traverser and
// never hand the same slot to two chunks. Proven under -race by the
// serial==parallel differential suites.
package gremlin

import (
	"sync"
	"sync/atomic"
)

// Slab sizing. A fresh allocator starts with a small slab so the thousands
// of tiny chunks a batched query can spawn don't each pin a full slab, and
// doubles up to travSlabMax; only full-size slabs are pooled (smaller ones
// are cheap enough to leave to the GC).
const (
	travSlabMin = 32
	travSlabMax = 512
)

// Frame-buffer size classes for chunk outputs ([]*Traverser).
const (
	frameSmallCap = 512
	frameLargeCap = 8192
)

// Pool telemetry, surfaced as gremlin_pool_hits / gremlin_pool_misses in the
// server's !metrics: a hit is a slab or frame buffer served from a
// sync.Pool, a miss is one freshly allocated.
var (
	poolHits   atomic.Int64
	poolMisses atomic.Int64
)

// PoolStats reports the cumulative pooled-object reuse counters.
func PoolStats() (hits, misses int64) {
	return poolHits.Load(), poolMisses.Load()
}

var (
	travSlabPool = sync.Pool{}
	frameSmall   = sync.Pool{}
	frameLarge   = sync.Pool{}
)

// debugSkipEmitCopy disables the copy-on-emit escape rule. Test-only: it
// exists so the aliasing regression suite can prove the suite would catch a
// missing copy (results visibly die when the arena resets under them).
var debugSkipEmitCopy = false

// travArena owns every slab and frame buffer one query execution leases.
type travArena struct {
	mu     sync.Mutex
	slabs  [][]Traverser
	frames [][]*Traverser
}

var arenaPool = sync.Pool{New: func() any { return new(travArena) }}

// newArena leases an arena for one query.
func newArena() *travArena {
	return arenaPool.Get().(*travArena)
}

// lease hands a fresh zeroed slab of capacity size to a chunk allocator.
func (a *travArena) lease(size int) []Traverser {
	var s []Traverser
	if size >= travSlabMax {
		size = travSlabMax
		if v := travSlabPool.Get(); v != nil {
			s = v.([]Traverser)
			poolHits.Add(1)
		}
	}
	if s == nil {
		s = make([]Traverser, size)
		poolMisses.Add(1)
	}
	a.mu.Lock()
	a.slabs = append(a.slabs, s)
	a.mu.Unlock()
	return s
}

// frame returns an empty []*Traverser with capacity >= hint for a step or
// chunk output. Buffers in the two pooled size classes are registered with
// the arena and recycled at release; oversized requests fall through to a
// plain allocation the GC reclaims (they still never outlive the query's
// copy-on-emit, so nothing is lost).
func (a *travArena) frame(hint int) []*Traverser {
	var pool *sync.Pool
	var capSize int
	switch {
	case hint <= frameSmallCap:
		pool, capSize = &frameSmall, frameSmallCap
	case hint <= frameLargeCap:
		pool, capSize = &frameLarge, frameLargeCap
	default:
		return make([]*Traverser, 0, hint)
	}
	var buf []*Traverser
	if v := pool.Get(); v != nil {
		buf = v.([]*Traverser)
		poolHits.Add(1)
	} else {
		buf = make([]*Traverser, capSize)
		poolMisses.Add(1)
	}
	a.mu.Lock()
	a.frames = append(a.frames, buf)
	a.mu.Unlock()
	return buf[:0]
}

// release resets every leased object (reset-on-release) and returns the
// pooled ones to their pools. Called exactly once per query, after
// copy-on-emit; the arena itself is recycled too.
func (a *travArena) release() {
	a.mu.Lock()
	slabs, frames := a.slabs, a.frames
	a.slabs, a.frames = a.slabs[:0], a.frames[:0]
	a.mu.Unlock()
	for _, s := range slabs {
		clear(s)
		if cap(s) >= travSlabMax {
			travSlabPool.Put(s[:travSlabMax])
		}
	}
	for _, f := range frames {
		f = f[:cap(f)]
		clear(f)
		switch cap(f) {
		case frameSmallCap:
			frameSmall.Put(f)
		case frameLargeCap:
			frameLarge.Put(f)
		}
	}
	arenaPool.Put(a)
}

// travAlloc is a chunk-private bump allocator over arena slabs. Not safe for
// concurrent use — runChunks gives every chunk goroutine its own.
type travAlloc struct {
	arena *travArena
	// cur is the active slab, len = slots handed out so far.
	cur  []Traverser
	next int // next slab size (doubling growth)
}

// local returns a fresh chunk-private allocator over the same arena.
func (a *travArena) local() *travAlloc {
	return &travAlloc{arena: a, next: travSlabMin}
}

// get hands out one zeroed traverser slot.
func (a *travAlloc) get() *Traverser {
	if len(a.cur) == cap(a.cur) {
		size := a.next
		if size < travSlabMin {
			size = travSlabMin
		}
		if size < travSlabMax {
			a.next = size * 2
		}
		a.cur = a.arena.lease(size)[:0]
	}
	n := len(a.cur)
	a.cur = a.cur[:n+1]
	return &a.cur[n]
}

// newFrame allocates a chunk-output slice from the query arena.
func (ctx *execCtx) newFrame(hint int) []*Traverser {
	return ctx.alloc.arena.frame(hint)
}

// emitFrame deep-copies the final frame out of the arena so released slots
// can never alias a result the caller retains (copy-on-emit). The traverser
// structs are copied by value: Obj, Path, and Labels always reference heap
// objects, never arena memory, so a shallow field copy is a full escape.
func emitFrame(frame []*Traverser) []*Traverser {
	if debugSkipEmitCopy || len(frame) == 0 {
		return frame
	}
	out := make([]*Traverser, len(frame))
	copies := make([]Traverser, len(frame))
	for i, tr := range frame {
		copies[i] = *tr
		out[i] = &copies[i]
	}
	return out
}
