package gremlin

import (
	"fmt"
	"strings"
	"time"
)

// ExplainNode is one step of an explained plan: the physical step rendering
// plus the planner's estimate and the measured actuals.
type ExplainNode struct {
	// Name is the physical step rendering (describeStep), including
	// planner annotations like +scanresolve and +hint:N.
	Name string `json:"name"`
	// Depth indents steps nested inside repeat()/where()/union() bodies.
	Depth int `json:"depth,omitempty"`
	// EstRows is the planner's estimated output cardinality; negative when
	// unknown (no statistics, or an unestimatable step).
	EstRows float64 `json:"est_rows"`
	// ActualRows / Calls are the measured traverser output count and
	// invocation count (invocation-summed, parallelism-independent).
	ActualRows int64 `json:"actual_rows"`
	Calls      int64 `json:"calls"`
	// Notes records the planner decisions taken at this step.
	Notes []string `json:"notes,omitempty"`
}

// ExplainReport is the result of the explain() terminal step: the chosen
// plan tree with estimated vs actual rows per step and the statistics
// context the plan was costed under.
type ExplainReport struct {
	Backend     string `json:"backend"`
	Plan        string `json:"plan"`
	Parallelism int    `json:"parallelism,omitempty"`
	// Costed reports whether statistics were available: false means the
	// plan is exactly what the static rule-based strategies produced.
	Costed bool `json:"costed"`
	// StatsEpoch / StatsFresh describe the statistics snapshot: the
	// ANALYZE generation and whether it still matches the backend's
	// current data version.
	StatsEpoch uint64 `json:"stats_epoch,omitempty"`
	StatsFresh bool   `json:"stats_fresh,omitempty"`

	Nodes   []ExplainNode `json:"nodes"`
	Results int           `json:"results"`
	Total   time.Duration `json:"total_ns"`
}

// buildExplain assembles the report after an instrumented run. prof may not
// be nil (ExecuteCtx always instruments explain runs).
func buildExplain(src *Source, steps []Step, prof *profiler, total time.Duration, results int) *ExplainReport {
	r := &ExplainReport{
		Backend:     src.Backend.Name(),
		Plan:        PlanString(steps),
		Parallelism: src.Parallelism,
		Results:     results,
		Total:       total,
	}
	if src.Stats != nil && src.Stats.Current() != nil {
		r.Costed = true
		r.StatsEpoch = src.Stats.Epoch()
		r.StatsFresh = src.Stats.Fresh()
	}
	explainWalk(steps, 0, prof, r)
	return r
}

func explainWalk(steps []Step, depth int, prof *profiler, r *ExplainReport) {
	for _, s := range steps {
		node := ExplainNode{Name: describeStep(s), Depth: depth, EstRows: -1}
		if est := stepEst(s); est != nil {
			node.EstRows = est.Rows
			node.Notes = est.Notes
		}
		prof.mu.Lock()
		st := prof.stats[s]
		prof.mu.Unlock()
		if st != nil {
			node.ActualRows = st.out.Load()
			node.Calls = st.calls.Load()
		}
		r.Nodes = append(r.Nodes, node)
		switch x := s.(type) {
		case *RepeatStep:
			explainWalk(x.Body, depth+1, prof, r)
			explainWalk(x.Until, depth+1, prof, r)
		case *WhereStep:
			explainWalk(x.Sub, depth+1, prof, r)
		case *UnionStep:
			for _, b := range x.Branches {
				explainWalk(b, depth+1, prof, r)
			}
		}
	}
}

// stepEst extracts the planner annotation of a step, if any.
func stepEst(s Step) *CostEst {
	switch x := s.(type) {
	case *GraphStep:
		return x.Est
	case *VertexStep:
		return x.Est
	default:
		return nil
	}
}

// String renders the report as the aligned text table the gserver !explain
// control request and console output show.
func (r *ExplainReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explain [%s]", r.Backend)
	if r.Costed {
		fmt.Fprintf(&b, " costed stats_epoch=%d fresh=%v", r.StatsEpoch, r.StatsFresh)
	} else {
		b.WriteString(" static (no statistics)")
	}
	fmt.Fprintf(&b, "\nplan: %s\n", r.Plan)
	fmt.Fprintf(&b, "%-44s %12s %12s %8s\n", "step", "est.rows", "actual", "calls")
	for _, n := range r.Nodes {
		name := strings.Repeat("  ", n.Depth) + n.Name
		est := "-"
		if n.EstRows >= 0 {
			est = fmt.Sprintf("%.1f", n.EstRows)
		}
		fmt.Fprintf(&b, "%-44s %12s %12d %8d\n", name, est, n.ActualRows, n.Calls)
		for _, note := range n.Notes {
			fmt.Fprintf(&b, "%s  • %s\n", strings.Repeat("  ", n.Depth), note)
		}
	}
	fmt.Fprintf(&b, "results: %d  total: %s", r.Results, r.Total.Round(time.Microsecond))
	return b.String()
}
