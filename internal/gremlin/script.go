package gremlin

import (
	"context"
	"errors"
	"fmt"

	"db2graph/internal/graph"
	"db2graph/internal/sql/types"
)

// ErrParse is the sentinel matched by errors.Is for script lexing and
// parsing failures, letting callers (the server's error-code mapping)
// distinguish malformed queries from execution failures.
var ErrParse = errors.New("gremlin: parse error")

// Script execution supports the mini-language the paper embeds in the
// graphQuery table function: semicolon-separated statements, each either a
// traversal or an assignment `name = <traversal>.next()`. Variables are
// usable as id lists in later statements, e.g.:
//
//	similar_diseases = g.V().hasLabel('patient').has('patientID', '1')
//	    .out('hasDisease')
//	    .repeat(out('isa').dedup().store('x')).times(2)
//	    .repeat(in('isa').dedup().store('x')).times(2).cap('x').next();
//	g.V(similar_diseases).in('hasDisease').dedup()
//	    .values('patientID', 'subscriptionID')

// RunScript executes a Gremlin script against src and returns the result
// objects of the final statement. env seeds the variable environment (may
// be nil); it is not mutated.
func RunScript(src *Source, script string, env map[string]any) ([]any, error) {
	return RunScriptCtx(context.Background(), src, script, env)
}

// RunScriptCtx is RunScript under a context carrying the query deadline and
// cancellation; the context is threaded through every statement execution
// down to the backend.
func RunScriptCtx(ctx context.Context, src *Source, script string, env map[string]any) ([]any, error) {
	toks, err := lexGremlin(script)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	vars := make(map[string]any, len(env))
	for k, v := range env {
		vars[k] = v
	}

	// Split statements on top-level semicolons.
	var stmts [][]gtok
	start := 0
	depth := 0
	for i, t := range toks {
		if t.kind == gtokPunct {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
			case ";":
				if depth == 0 {
					if i > start {
						stmts = append(stmts, append(append([]gtok{}, toks[start:i]...), gtok{kind: gtokEOF, pos: t.pos}))
					}
					start = i + 1
				}
			}
		}
		if t.kind == gtokEOF {
			if i > start {
				stmts = append(stmts, toks[start:i+1])
			}
		}
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("%w: empty script", ErrParse)
	}

	var lastResult []any
	for si, stmt := range stmts {
		// Assignment prefix?
		varName := ""
		body := stmt
		if len(stmt) >= 2 && stmt[0].kind == gtokIdent && stmt[1].kind == gtokPunct && stmt[1].text == "=" {
			varName = stmt[0].text
			body = stmt[2:]
		}
		// A single-statement script without an assignment may hit the plan
		// cache. The cache keys on the script's *normalized shape* — the
		// parse runs in paramize mode so literals at value positions render
		// as "?" in the key and literal variants share one compiled
		// template (see prepared.go). A hit pays lex+parse but skips the
		// strategy rewrite and the cost model; the template is rebound to
		// this call's literals. Scripts that bind or reference variables
		// splice environment values into the plan and always recompile
		// (see PlanCache).
		cacheable := src.PlanCache != nil && len(stmts) == 1 && varName == ""
		p := &gparser{toks: body, env: vars}
		if cacheable && shapeSafe(body) {
			p.paramize = true
			p.paramToks = make(map[int]bool)
		}
		tr, term, err := p.parseChain(src, true)
		if err != nil {
			return nil, fmt.Errorf("%w: statement %d: %v", ErrParse, si+1, err)
		}
		if p.cur().kind != gtokEOF {
			return nil, fmt.Errorf("%w: statement %d: unexpected trailing input %q", ErrParse, si+1, p.cur().text)
		}
		if cacheable && !p.envUsed && tr.err == nil {
			shape := script
			if p.paramize {
				shape = renderShape(body, p.paramToks)
			}
			key := planKey{
				shape:   shape,
				config:  graph.ConfigVersionOf(src.Backend),
				nostrat: src.DisableStrategies,
				stats:   statsEpoch(src),
			}
			if plan, ok := src.PlanCache.get(key); ok && plan.nparams == len(p.params) {
				steps := plan.steps
				if plan.nparams > 0 {
					steps = bindParams(steps, p.params)
				}
				trs, err := (&Traversal{Src: src, Steps: steps, planned: true}).ExecuteCtx(ctx)
				if err != nil {
					return nil, fmt.Errorf("gremlin: statement %d: %w", si+1, err)
				}
				return finishStatement(trs, plan.term, si, vars, varName, &lastResult)
			}
			// Compile the template once — strategies, then the cost model
			// when statistics are available — and cache it; this run
			// executes a bound copy of the very plan later hits will share.
			steps := cloneSteps(tr.Steps)
			if !src.DisableStrategies {
				steps = applyStrategies(steps, src.Strategies)
			}
			if src.Stats != nil {
				if st := src.Stats.Current(); st != nil {
					applyCost(steps, st)
				}
			}
			src.PlanCache.put(&cachedPlan{key: key, steps: steps, nparams: len(p.params), term: term})
			if len(p.params) > 0 {
				steps = bindParams(steps, p.params)
			}
			tr = &Traversal{Src: src, Steps: steps, planned: true}
		} else if len(p.params) > 0 {
			// The paramized parse turned out uncacheable (variable
			// reference or builder error): substitute the literals back
			// before normal execution.
			tr.Steps = bindParams(tr.Steps, p.params)
		}
		trs, err := tr.ExecuteCtx(ctx)
		if err != nil {
			return nil, fmt.Errorf("gremlin: statement %d: %w", si+1, err)
		}
		if _, err := finishStatement(trs, term, si, vars, varName, &lastResult); err != nil {
			return nil, err
		}
	}
	return lastResult, nil
}

// statsEpoch is the ANALYZE generation plans are costed under — part of the
// plan-cache key so plans compiled against stale statistics retire after the
// next ANALYZE (0 = no statistics configured or none collected yet).
func statsEpoch(src *Source) uint64 {
	if src.Stats == nil {
		return 0
	}
	return src.Stats.Epoch()
}

// finishStatement applies a statement's terminal method to its raw
// traversers, updating the variable environment and the running script
// result. It returns the statement's result so single-statement callers (the
// plan-cache hit path) can return it directly.
func finishStatement(trs []*Traverser, term terminalKind, si int, vars map[string]any, varName string, lastResult *[]any) ([]any, error) {
	objs := make([]any, len(trs))
	for i, t := range trs {
		objs[i] = t.Obj
	}
	switch term {
	case termNext:
		if len(objs) == 0 {
			return nil, fmt.Errorf("gremlin: statement %d: next() on empty traversal", si+1)
		}
		*lastResult = objs[:1]
		if varName != "" {
			vars[varName] = objs[0]
		}
	case termIterate:
		*lastResult = nil
		if varName != "" {
			vars[varName] = nil
		}
	default: // none or toList
		*lastResult = objs
		if varName != "" {
			vars[varName] = objs
		}
	}
	return *lastResult, nil
}

// ResultsToRows converts script results into relational rows with the given
// column count, for the graphQuery polymorphic table function. Supported
// result shapes:
//   - scalar values: each value becomes a 1-column row, or consecutive
//     values are folded into rows of ncols (the paper's
//     values('patientID','subscriptionID') pattern emits column-major
//     value streams per element);
//   - value maps: column values are matched by column name;
//   - elements: id, label, then properties in column order;
//   - lists (from cap()): flattened.
func ResultsToRows(results []any, cols []string) ([][]types.Value, error) {
	ncols := len(cols)
	var rows [][]types.Value
	var pending []types.Value

	flushPending := func() error {
		for len(pending) >= ncols {
			rows = append(rows, pending[:ncols:ncols])
			pending = pending[ncols:]
		}
		return nil
	}

	var handle func(obj any) error
	handle = func(obj any) error {
		switch x := obj.(type) {
		case types.Value:
			pending = append(pending, x)
			return flushPending()
		case map[string]types.Value:
			row := make([]types.Value, ncols)
			for i, c := range cols {
				row[i] = x[c]
			}
			rows = append(rows, row)
			return nil
		case *graph.Element:
			row := make([]types.Value, 0, ncols)
			row = append(row, types.NewString(x.ID))
			if ncols >= 2 {
				row = append(row, types.NewString(x.Label))
			}
			// Fill remaining columns by property name.
			for len(row) < ncols {
				c := cols[len(row)]
				row = append(row, x.Props[c])
			}
			rows = append(rows, row[:ncols])
			return nil
		case []any:
			for _, o := range x {
				if err := handle(o); err != nil {
					return err
				}
			}
			return nil
		case map[string]int64:
			// groupCount: key + count columns.
			for k, v := range x {
				row := make([]types.Value, ncols)
				row[0] = types.NewString(k)
				if ncols >= 2 {
					row[1] = types.NewInt(v)
				}
				rows = append(rows, row)
			}
			return nil
		case nil:
			return nil
		default:
			return fmt.Errorf("gremlin: cannot convert result of type %T into rows", obj)
		}
	}
	for _, obj := range results {
		if err := handle(obj); err != nil {
			return nil, err
		}
	}
	if len(pending) != 0 {
		return nil, fmt.Errorf("gremlin: %d leftover values do not fill a %d-column row", len(pending), ncols)
	}
	return rows, nil
}
