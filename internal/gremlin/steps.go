// Package gremlin implements the Gremlin graph traversal language subset
// used by the paper: a fluent Go builder and a text parser produce a step
// plan; provider strategies (Section 6.2 of the paper) rewrite the plan;
// and the traversal engine executes it against a graph.Backend.
package gremlin

import (
	"fmt"
	"strings"

	"db2graph/internal/graph"
	"db2graph/internal/sql/types"
)

// Step is one operation in a traversal plan.
type Step interface {
	// Name returns the Gremlin step name for diagnostics.
	Name() string
}

// ElementKind selects vertices or edges for a GraphStep.
type ElementKind int

// Element kinds.
const (
	KindVertex ElementKind = iota
	KindEdge
)

// GraphStep is the start step: g.V(ids...) or g.E(ids...). It is a
// graph-structure-accessing (GSA) step; strategies fold predicates,
// projections, and aggregates into Query/PushAgg.
type GraphStep struct {
	Kind ElementKind
	// Query carries ids plus pushed-down filters.
	Query *graph.Query
	// PushAgg, when non-nil, turns the step into a single aggregated value.
	PushAgg *graph.Agg
	// Est carries the planner's cardinality estimate (explain() rendering
	// only; never consulted during execution).
	Est *CostEst
}

// Name implements Step.
func (s *GraphStep) Name() string {
	if s.Kind == KindVertex {
		return "V"
	}
	return "E"
}

// VertexStep navigates adjacency from vertices: out/in/both (vertices) and
// outE/inE/bothE (edges). It is a GSA step.
type VertexStep struct {
	Dir graph.Direction
	// ReturnEdges selects outE/inE/bothE; otherwise out/in/both.
	ReturnEdges bool
	// Query carries edge labels plus pushed-down filters (on the edges).
	Query *graph.Query
	// VQuery carries filters/projections pushed down onto the destination
	// vertices of out()/in()/both() (nil when ReturnEdges).
	VQuery *graph.Query
	// PushAgg aggregates the reached edges without materializing them.
	PushAgg *graph.Agg
	// SeedIDs, when non-empty, makes the step self-seeding: it was fused
	// with a preceding g.V(ids) by the GraphStep::VertexStep mutation
	// strategy and starts directly from these vertex ids.
	SeedIDs []string

	// ResolveScan switches out()/in() endpoint resolution from the
	// per-edge EdgeVertices path to a distinct-id VerticesByIDs multi-get
	// with a hash join back into edge order. The cost-based planner enables
	// it on hub-heavy hops where many edges share endpoints; results are
	// identical by the BatchBackend alignment contract.
	ResolveScan bool
	// BatchHint, when > 0, caps the number of anchor vertices per parallel
	// chunk for this step. The planner sets it when the estimated fan-out
	// per anchor is high so a small anchor set still spreads across the
	// whole worker pool. Only consulted when a worker pool is active; it
	// never changes results (chunked merge order is position-preserving).
	BatchHint int
	// Est carries the planner's cardinality estimate (explain() rendering
	// only; never consulted during execution).
	Est *CostEst
}

// Name implements Step.
func (s *VertexStep) Name() string {
	n := s.Dir.String()
	if s.ReturnEdges {
		n += "E"
	}
	return n
}

// EdgeEnd selects which endpoint EdgeVertexStep resolves.
type EdgeEnd int

// Edge endpoints.
const (
	EndOut EdgeEnd = iota
	EndIn
	EndBoth
	EndOther
)

// EdgeVertexStep moves from edges to their endpoint vertices
// (outV/inV/bothV/otherV).
type EdgeVertexStep struct {
	End EdgeEnd
	// Query filters/projects the fetched vertices.
	Query *graph.Query
}

// Name implements Step.
func (s *EdgeVertexStep) Name() string {
	switch s.End {
	case EndOut:
		return "outV"
	case EndIn:
		return "inV"
	case EndBoth:
		return "bothV"
	default:
		return "otherV"
	}
}

// HasStep filters elements by predicates (hasLabel/hasId fold into the
// reserved ~label/~id keys).
type HasStep struct {
	Preds []graph.Pred
}

// Name implements Step.
func (s *HasStep) Name() string { return "has" }

// ValuesStep emits the values of the named properties, one traverser per
// present property.
type ValuesStep struct {
	Keys []string
}

// Name implements Step.
func (s *ValuesStep) Name() string { return "values" }

// ValueMapStep emits a map of property name to value per element. With no
// keys it emits all properties.
type ValueMapStep struct {
	Keys []string
	// WithIDLabel includes ~id and ~label entries (valueMap(true)).
	WithIDLabel bool
}

// Name implements Step.
func (s *ValueMapStep) Name() string { return "valueMap" }

// IDStep emits element ids.
type IDStep struct{}

// Name implements Step.
func (s *IDStep) Name() string { return "id" }

// LabelStep emits element labels.
type LabelStep struct{}

// Name implements Step.
func (s *LabelStep) Name() string { return "label" }

// AggregateStep reduces the incoming stream: count over anything;
// sum/mean/min/max over values.
type AggregateStep struct {
	Kind graph.AggKind
}

// Name implements Step.
func (s *AggregateStep) Name() string { return s.Kind.String() }

// DedupStep removes duplicate traversers (by element id, or by value).
type DedupStep struct{}

// Name implements Step.
func (s *DedupStep) Name() string { return "dedup" }

// LimitStep keeps the first N traversers.
type LimitStep struct {
	N int
}

// Name implements Step.
func (s *LimitStep) Name() string { return "limit" }

// OrderStep sorts traversers by their value or by a property.
type OrderStep struct {
	// By is the property key to sort elements by; empty sorts by the
	// traverser value itself.
	By   string
	Desc bool
}

// Name implements Step.
func (s *OrderStep) Name() string { return "order" }

// StoreStep appends each traverser's object to a named side-effect list.
type StoreStep struct {
	Key string
}

// Name implements Step.
func (s *StoreStep) Name() string { return "store" }

// CapStep replaces the stream with the accumulated side-effect list.
type CapStep struct {
	Key string
}

// Name implements Step.
func (s *CapStep) Name() string { return "cap" }

// RepeatStep executes Body over the traverser set. Times bounds the
// iteration count (0 means unbounded, requiring Until). With Emit,
// intermediate frontiers are also emitted. With Until, traversers whose
// until-traversal yields a result leave the loop as output after each
// iteration.
type RepeatStep struct {
	Body  []Step
	Times int
	Emit  bool
	Until []Step
}

// Name implements Step.
func (s *RepeatStep) Name() string { return "repeat" }

// WhereStep keeps traversers for which the sub-traversal produces at least
// one result (or none, when Negate — Gremlin's not()).
type WhereStep struct {
	Sub    []Step
	Negate bool
}

// Name implements Step.
func (s *WhereStep) Name() string {
	if s.Negate {
		return "not"
	}
	return "where"
}

// UnionStep runs each branch from each traverser and concatenates results.
type UnionStep struct {
	Branches [][]Step
}

// Name implements Step.
func (s *UnionStep) Name() string { return "union" }

// PathStep emits the path (the sequence of objects visited).
type PathStep struct{}

// Name implements Step.
func (s *PathStep) Name() string { return "path" }

// AsStep labels the current object for later select().
type AsStep struct {
	Label string
}

// Name implements Step.
func (s *AsStep) Name() string { return "as" }

// SelectStep emits previously labeled objects: one label yields the object,
// several yield a map.
type SelectStep struct {
	Labels []string
}

// Name implements Step.
func (s *SelectStep) Name() string { return "select" }

// GroupCountStep reduces the stream to a map from object (or property
// value, when By is set) to occurrence count.
type GroupCountStep struct {
	By string
}

// Name implements Step.
func (s *GroupCountStep) Name() string { return "groupCount" }

// ConstantStep replaces each traverser's object with a constant.
type ConstantStep struct {
	Value types.Value
}

// Name implements Step.
func (s *ConstantStep) Name() string { return "constant" }

// IsStep filters value traversers by comparing against a constant
// (Gremlin's is(); also produced by parsing `filter(... .id() == x)`).
type IsStep struct {
	Op    graph.PredOp
	Value types.Value
}

// Name implements Step.
func (s *IsStep) Name() string { return "is" }

// SimplePathStep drops traversers whose path contains a repeated element.
type SimplePathStep struct{}

// Name implements Step.
func (s *SimplePathStep) Name() string { return "simplePath" }

// ProfileStep is the TinkerPop-style profile() terminal step: it must close
// the chain, enables per-step instrumentation for the run, and replaces the
// result stream with a single *telemetry.Profile report.
type ProfileStep struct{}

// Name implements Step.
func (s *ProfileStep) Name() string { return "profile" }

// ExplainStep is the explain() terminal step: it must close the chain, runs
// the traversal with per-step instrumentation enabled, and replaces the
// result stream with a single *ExplainReport rendering the chosen plan with
// estimated vs actual rows per step.
type ExplainStep struct{}

// Name implements Step.
func (s *ExplainStep) Name() string { return "explain" }

// PlanString renders a step plan for diagnostics and tests.
func PlanString(steps []Step) string {
	parts := make([]string, len(steps))
	for i, s := range steps {
		parts[i] = describeStep(s)
	}
	return strings.Join(parts, ".")
}

func describeStep(s Step) string {
	switch x := s.(type) {
	case *GraphStep:
		extra := ""
		if x.PushAgg != nil {
			extra = "+agg:" + x.PushAgg.Kind.String()
		}
		if x.Query != nil && len(x.Query.Preds) > 0 {
			extra += fmt.Sprintf("+preds:%d", len(x.Query.Preds))
		}
		if x.Query != nil && x.Query.Projection != nil {
			extra += "+proj"
		}
		return x.Name() + "(" + strings.Join(x.Query.IDs, ",") + ")" + extra
	case *VertexStep:
		extra := ""
		if len(x.SeedIDs) > 0 {
			extra = "+seeded"
		}
		if x.PushAgg != nil {
			extra += "+agg:" + x.PushAgg.Kind.String()
		}
		if x.Query != nil && len(x.Query.Preds) > 0 {
			extra += fmt.Sprintf("+preds:%d", len(x.Query.Preds))
		}
		if x.Query != nil && x.Query.Projection != nil {
			extra += "+proj"
		}
		if x.ResolveScan {
			extra += "+scanresolve"
		}
		if x.BatchHint > 0 {
			extra += fmt.Sprintf("+hint:%d", x.BatchHint)
		}
		lbl := ""
		if x.Query != nil {
			lbl = strings.Join(x.Query.Labels, ",")
		}
		return x.Name() + "(" + lbl + ")" + extra
	default:
		return s.Name() + "()"
	}
}
