// Parallel step execution: the engine partitions a step's traverser batch
// into contiguous chunks and dispatches them to a bounded worker pool.
// Determinism contract: every chunk writes into a pre-indexed slot and the
// slots are merged in input order, so a parallel run produces exactly the
// traverser sequence the serial run would. Budgets are enforced across
// workers with atomic counters, the first failing chunk cancels its
// siblings through the query context, and worker panics are captured as
// *PanicError just like panics on the query goroutine.
package gremlin

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"db2graph/internal/graph"
	"db2graph/internal/telemetry"
)

// Chunk-size floors. Backend fan-out steps batch many ids into one call, so
// splitting below vertexChunkMin trades a batched lookup for goroutine and
// call overhead. Sub-traversal loops (where/union/until) run a full plan per
// traverser, which is expensive enough to farm out in small groups.
const (
	vertexChunkMin = 16
	subChunkMin    = 4
)

// workerPool bounds the extra goroutines a query may use for step-level
// parallelism. The pool holds n-1 tokens for a parallelism of n: the
// query's own goroutine always executes one chunk itself, so a chunked step
// makes progress even when every token is borrowed (nested parallel steps
// inside where()/union() sub-traversals degrade to inline execution instead
// of deadlocking on the pool).
type workerPool struct {
	sem chan struct{}
	// gauge, when non-nil, tracks the number of borrowed workers
	// (gremlin_parallel_workers in the server's registry).
	gauge *telemetry.Gauge
}

// newWorkerPool sizes a pool for parallelism n. n <= 1 returns nil: the nil
// pool is the serial engine, every chunked helper collapses to one inline
// call with no goroutines, channels, or atomics on the path.
func newWorkerPool(n int, gauge *telemetry.Gauge) *workerPool {
	if n <= 1 {
		return nil
	}
	return &workerPool{sem: make(chan struct{}, n-1), gauge: gauge}
}

// size returns the parallelism the pool was built for.
func (p *workerPool) size() int { return cap(p.sem) + 1 }

// tryAcquire borrows a worker token without blocking. Callers that fail to
// acquire must run the work inline. A nil pool (the serial engine) never
// lends workers: chunks produced purely by a BatchSize cap run inline.
func (p *workerPool) tryAcquire() bool {
	if p == nil {
		return false
	}
	select {
	case p.sem <- struct{}{}:
		if p.gauge != nil {
			p.gauge.Inc()
		}
		return true
	default:
		return false
	}
}

// release returns a borrowed token.
func (p *workerPool) release() {
	<-p.sem
	if p.gauge != nil {
		p.gauge.Dec()
	}
}

// chunkable reports how many chunks a batch of total items should split
// into: 1 unless the execution has a pool and the batch clears the floor.
// A positive batch-size cap (Source.BatchSize) raises the chunk count so no
// chunk exceeds it, even on the serial engine — callers only invoke
// chunkable on paths where chunking is order-preserving, so the cap never
// changes results, only the size of individual backend calls.
func (ctx *execCtx) chunkable(total, minChunk int) int {
	n := 1
	if ctx.pool != nil && total >= 2*minChunk {
		n = total / minChunk
		if max := ctx.pool.size(); n > max {
			n = max
		}
		if n < 2 {
			n = 1
		}
	}
	if b := ctx.batchSize; b > 0 {
		if need := (total + b - 1) / b; need > n {
			n = need
		}
	}
	return n
}

// runChunks splits [0, total) into nchunks contiguous ranges and runs fn on
// each, concurrently when workers are available. fn receives an execCtx
// whose context is cancelled as soon as any sibling chunk fails, so backend
// calls inside a doomed step stop early. Panics inside a chunk are captured
// as *PanicError. The error returned is deterministic: the first real
// failure in chunk order wins, and cancellation errors that are mere
// fallout of a sibling's failure (or of the caller's own context) never
// mask it.
func (ctx *execCtx) runChunks(total, nchunks int, fn func(c *execCtx, idx, lo, hi int) error) error {
	if nchunks <= 1 {
		return fn(ctx, 0, 0, total)
	}
	goctx, cancel := context.WithCancel(ctx.goctx)
	defer cancel()
	child := *ctx
	child.goctx = goctx
	errs := make([]error, nchunks)
	run := func(i, lo, hi int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &PanicError{Value: r, Stack: string(debug.Stack())}
				cancel()
			}
		}()
		// Each chunk gets a private traverser allocator over the shared
		// arena: chunk goroutines bump-allocate without contention, and two
		// chunks can never be handed the same slot (see arena.go).
		cctx := child
		cctx.alloc = child.alloc.arena.local()
		if err := fn(&cctx, i, lo, hi); err != nil {
			errs[i] = err
			cancel()
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < nchunks; i++ {
		lo, hi := i*total/nchunks, (i+1)*total/nchunks
		// The last chunk always runs on the calling goroutine; earlier
		// chunks run inline too when the pool is exhausted.
		if i == nchunks-1 || !ctx.pool.tryAcquire() {
			run(i, lo, hi)
			continue
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			defer ctx.pool.release()
			run(i, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	if firstErr == nil {
		return nil
	}
	// Every failure is a cancellation: either the caller's context fired
	// (report that, as the serial engine would), or — not reachable with
	// the current chunk bodies — a chunk returned context.Canceled on its
	// own; surface it rather than swallow it.
	if err := ctx.interrupted(); err != nil {
		return err
	}
	return firstErr
}

// mapChunks runs fn over nchunks contiguous chunks of [0, total) and
// concatenates the per-chunk traverser slices in chunk order, giving a
// result identical to one serial left-to-right pass. The traverser budget
// is enforced across workers with a shared atomic counter so a chunk that
// blows the limit aborts its siblings instead of materializing the rest of
// an oversized frontier.
func (ctx *execCtx) mapChunks(total, nchunks int, fn func(c *execCtx, lo, hi int) ([]*Traverser, error)) ([]*Traverser, error) {
	if nchunks <= 1 {
		// Serial: runSteps' post-step frame check enforces the budget.
		return fn(ctx, 0, total)
	}
	outs := make([][]*Traverser, nchunks)
	var produced atomic.Int64
	lim := int64(ctx.limits.MaxTraversers)
	err := ctx.runChunks(total, nchunks, func(c *execCtx, idx, lo, hi int) error {
		out, err := fn(c, lo, hi)
		if err != nil {
			return err
		}
		if lim > 0 && produced.Add(int64(len(out))) > lim {
			return &graph.BudgetError{Resource: "traversers", Limit: int(lim)}
		}
		outs[idx] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	var n int
	for _, o := range outs {
		n += len(o)
	}
	merged := ctx.newFrame(n)
	for _, o := range outs {
		merged = append(merged, o...)
	}
	return merged, nil
}

// plansSideEffects reports whether any step (recursively) writes or reads
// the shared side-effect store. Sub-traversal loops over such plans stay
// serial: store() appends in traverser order, and that order is part of the
// observable result of cap().
func plansSideEffects(steps []Step) bool {
	for _, s := range steps {
		switch x := s.(type) {
		case *StoreStep, *CapStep:
			return true
		case *RepeatStep:
			if plansSideEffects(x.Body) || plansSideEffects(x.Until) {
				return true
			}
		case *WhereStep:
			if plansSideEffects(x.Sub) {
				return true
			}
		case *UnionStep:
			for _, b := range x.Branches {
				if plansSideEffects(b) {
					return true
				}
			}
		}
	}
	return false
}

// serial returns an execution context that runs everything inline. Used for
// sub-traversal loops whose plans carry side effects.
func (ctx *execCtx) serial() *execCtx {
	if ctx.pool == nil {
		return ctx
	}
	cp := *ctx
	cp.pool = nil
	return &cp
}

// runSubFilter evaluates a filter sub-traversal for every input traverser,
// in parallel chunks, writing verdicts into a pre-indexed slice so the
// caller partitions the frame in input order.
func runSubFilter(ctx *execCtx, sub []Step, in []*Traverser) ([]bool, error) {
	sctx := ctx
	if plansSideEffects(sub) {
		sctx = ctx.serial()
	}
	keep := make([]bool, len(in))
	nchunks := sctx.chunkable(len(in), subChunkMin)
	err := sctx.runChunks(len(in), nchunks, func(c *execCtx, _, lo, hi int) error {
		for i := lo; i < hi; i++ {
			res, err := runSteps(c, sub, []*Traverser{c.cloneForSub(in[i])})
			if err != nil {
				return err
			}
			keep[i] = len(res) > 0
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return keep, nil
}

// checkEdgeVertices validates the positional contract of
// Backend.EdgeVertices for DirOut/DirIn resolution.
func checkEdgeVertices(b graph.Backend, vs, batch []*graph.Element) error {
	if len(vs) != len(batch) {
		return fmt.Errorf("gremlin: backend %s returned %d vertices for %d edges",
			b.Name(), len(vs), len(batch))
	}
	return nil
}
