package gremlin

import (
	"time"

	"db2graph/internal/telemetry"
)

// stepStats accumulates the cost of one step over a query. Repeat bodies and
// sub-traversals run the same step many times; the counters sum over every
// invocation.
type stepStats struct {
	in, out, calls int64
	dur            time.Duration
}

// profiler records per-step costs for a single traversal execution. It is
// keyed by step pointer identity: ExecuteCtx clones the plan per run, so
// every executed step is a unique pointer, and the engine is
// single-goroutine, so no locking is needed. A nil profiler disables
// instrumentation with a single branch in runSteps — there is no
// per-traverser cost.
type profiler struct {
	stats map[Step]*stepStats
}

func newProfiler() *profiler {
	return &profiler{stats: make(map[Step]*stepStats)}
}

func (p *profiler) get(s Step) *stepStats {
	st := p.stats[s]
	if st == nil {
		st = &stepStats{}
		p.stats[s] = st
	}
	return st
}

// report renders the accumulated stats as a telemetry.Profile, walking the
// executed plan in order and indenting steps nested inside
// repeat()/where()/not()/union() bodies. A nested step's time is included in
// its parent's.
func (p *profiler) report(steps []Step, total time.Duration) *telemetry.Profile {
	pr := &telemetry.Profile{Query: PlanString(steps), Total: total}
	p.walk(steps, 0, pr)
	return pr
}

func (p *profiler) walk(steps []Step, depth int, pr *telemetry.Profile) {
	for _, s := range steps {
		st := p.stats[s]
		if st == nil {
			continue // never executed (e.g. an until() that never ran)
		}
		pr.Steps = append(pr.Steps, telemetry.StepProfile{
			Name:  describeStep(s),
			Depth: depth,
			In:    st.in,
			Out:   st.out,
			Calls: st.calls,
			Dur:   st.dur,
		})
		switch x := s.(type) {
		case *RepeatStep:
			p.walk(x.Body, depth+1, pr)
			p.walk(x.Until, depth+1, pr)
		case *WhereStep:
			p.walk(x.Sub, depth+1, pr)
		case *UnionStep:
			for _, b := range x.Branches {
				p.walk(b, depth+1, pr)
			}
		}
	}
}
