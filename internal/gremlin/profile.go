package gremlin

import (
	"sync"
	"sync/atomic"
	"time"

	"db2graph/internal/telemetry"
)

// stepStats accumulates the cost of one step over a query. Repeat bodies and
// sub-traversals run the same step many times — possibly from several worker
// goroutines when sub-traversal loops execute in parallel chunks — so the
// counters are atomics that sum over every invocation. Sums are
// order-independent: in/out/calls are identical whatever the parallelism,
// which is what lets the differential suite compare profile() reports across
// parallelism levels. dur aggregates per-invocation wall time; under
// parallel execution the nested steps of concurrent sub-traversals overlap,
// so their summed durations can exceed the parent step's wall time.
type stepStats struct {
	in, out, calls atomic.Int64
	durNS          atomic.Int64
}

// profiler records per-step costs for a single traversal execution. It is
// keyed by step pointer identity: ExecuteCtx clones the plan per run, so
// every executed step is a unique pointer. The map is guarded by a mutex
// because parallel sub-traversal chunks profile concurrently; the lock is
// per step invocation, not per traverser. A nil profiler disables
// instrumentation with a single branch in runSteps — there is no
// per-traverser cost.
type profiler struct {
	mu    sync.Mutex
	stats map[Step]*stepStats
}

func newProfiler() *profiler {
	return &profiler{stats: make(map[Step]*stepStats)}
}

func (p *profiler) get(s Step) *stepStats {
	p.mu.Lock()
	st := p.stats[s]
	if st == nil {
		st = &stepStats{}
		p.stats[s] = st
	}
	p.mu.Unlock()
	return st
}

// report renders the accumulated stats as a telemetry.Profile, walking the
// executed plan in order and indenting steps nested inside
// repeat()/where()/not()/union() bodies. A nested step's time is included in
// its parent's.
func (p *profiler) report(steps []Step, total time.Duration) *telemetry.Profile {
	pr := &telemetry.Profile{Query: PlanString(steps), Total: total}
	p.walk(steps, 0, pr)
	return pr
}

func (p *profiler) walk(steps []Step, depth int, pr *telemetry.Profile) {
	for _, s := range steps {
		p.mu.Lock()
		st := p.stats[s]
		p.mu.Unlock()
		if st == nil {
			continue // never executed (e.g. an until() that never ran)
		}
		pr.Steps = append(pr.Steps, telemetry.StepProfile{
			Name:  describeStep(s),
			Depth: depth,
			In:    st.in.Load(),
			Out:   st.out.Load(),
			Calls: st.calls.Load(),
			Dur:   time.Duration(st.durNS.Load()),
		})
		switch x := s.(type) {
		case *RepeatStep:
			p.walk(x.Body, depth+1, pr)
			p.walk(x.Until, depth+1, pr)
		case *WhereStep:
			p.walk(x.Sub, depth+1, pr)
		case *UnionStep:
			for _, b := range x.Branches {
				p.walk(b, depth+1, pr)
			}
		}
	}
}
