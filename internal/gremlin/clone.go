package gremlin

import "db2graph/internal/graph"

// cloneSteps deep-copies a step plan so strategy rewrites never mutate the
// original traversal (which may be executed again, or executed with
// strategies disabled for comparison).
func cloneSteps(steps []Step) []Step {
	out := make([]Step, len(steps))
	for i, s := range steps {
		out[i] = cloneStep(s)
	}
	return out
}

func cloneStep(s Step) Step {
	switch x := s.(type) {
	case *GraphStep:
		cp := *x
		cp.Query = x.Query.Clone()
		if x.PushAgg != nil {
			agg := *x.PushAgg
			cp.PushAgg = &agg
		}
		return &cp
	case *VertexStep:
		cp := *x
		cp.Query = x.Query.Clone()
		if x.VQuery != nil {
			cp.VQuery = x.VQuery.Clone()
		}
		if x.PushAgg != nil {
			agg := *x.PushAgg
			cp.PushAgg = &agg
		}
		cp.SeedIDs = append([]string(nil), x.SeedIDs...)
		return &cp
	case *EdgeVertexStep:
		cp := *x
		if x.Query != nil {
			cp.Query = x.Query.Clone()
		}
		return &cp
	case *HasStep:
		cp := *x
		cp.Preds = append([]graph.Pred(nil), x.Preds...)
		return &cp
	case *RepeatStep:
		cp := *x
		cp.Body = cloneSteps(x.Body)
		cp.Until = cloneSteps(x.Until)
		return &cp
	case *WhereStep:
		cp := *x
		cp.Sub = cloneSteps(x.Sub)
		return &cp
	case *UnionStep:
		cp := *x
		cp.Branches = make([][]Step, len(x.Branches))
		for i, b := range x.Branches {
			cp.Branches[i] = cloneSteps(b)
		}
		return &cp
	case *ConstantStep:
		// Value-carrying leaves are copied so prepared-plan rebinding
		// (bindParams) can substitute parameter slots without touching the
		// shared template.
		cp := *x
		return &cp
	case *IsStep:
		cp := *x
		return &cp
	default:
		// Remaining steps are immutable during execution.
		return s
	}
}
