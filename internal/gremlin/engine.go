package gremlin

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"db2graph/internal/graph"
	"db2graph/internal/sql/types"
	"db2graph/internal/telemetry"
)

// Traverser is one unit of traversal state: the current object plus
// optional path history and step labels.
type Traverser struct {
	// Obj is the current object: *graph.Element, types.Value,
	// map[string]types.Value (valueMap), map[string]int64 (groupCount),
	// []any (path or cap list), or map[string]any (select).
	Obj any
	// Path records visited objects when the plan contains path().
	Path []any
	// Labels holds objects recorded by as().
	Labels map[string]any
	// FromV is the vertex id an edge traverser was reached from (otherV).
	FromV string
}

// value returns the traverser object as a scalar value if it is one.
func (t *Traverser) value() (types.Value, bool) {
	v, ok := t.Obj.(types.Value)
	return v, ok
}

// element returns the traverser object as a graph element if it is one.
func (t *Traverser) element() (*graph.Element, bool) {
	e, ok := t.Obj.(*graph.Element)
	return e, ok
}

// execCtx carries shared execution state.
type execCtx struct {
	goctx       context.Context
	backend     graph.Backend
	// batch is the backend's vectorized view (native BatchBackend or the
	// conformance-proven fallback adapter), resolved once per execution.
	batch graph.BatchBackend
	// batchSize, when positive, caps chunk sizes on the order-preserving
	// fan-out paths (Source.BatchSize).
	batchSize int
	// batchHist, when non-nil, records batched expansion sizes.
	batchHist   *telemetry.IntHistogram
	sideEffects map[string][]any
	trackPaths  bool
	limits      graph.Limits
	// prof, when non-nil, records per-step traverser counts and wall time.
	// It stays nil unless profile() closes the chain or a telemetry.Span
	// rides in the query context, so the unprofiled hot path pays one nil
	// check per step and nothing per traverser.
	prof *profiler
	// pool, when non-nil, lends worker goroutines to chunked step
	// execution (see parallel.go). A nil pool is the serial engine.
	pool *workerPool
	// alloc is the goroutine-private traverser allocator over the query's
	// arena (see arena.go). Shared by execCtx copies on the same goroutine
	// (serial(), sub-traversals); runChunks replaces it with a fresh local
	// per chunk goroutine.
	alloc *travAlloc
}

// interrupted returns a non-nil error once the query context is done.
func (ctx *execCtx) interrupted() error {
	return graph.Interrupted(ctx.goctx)
}

// observeBatch records the size of one batched backend expansion.
func (ctx *execCtx) observeBatch(n int) {
	if ctx.batchHist != nil {
		ctx.batchHist.Observe(int64(n))
	}
}

// PanicError is a panic that occurred while executing a query, converted to
// an error so one bad step evaluator or backend cannot take down the caller.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery time.
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("gremlin: query panicked: %v", e.Value)
}

// Execute runs the traversal and returns the final traversers.
func (t *Traversal) Execute() ([]*Traverser, error) {
	return t.ExecuteCtx(context.Background())
}

// ExecuteCtx runs the traversal under a context carrying the query deadline
// and cancellation, enforcing the source's resource budget (Source.Limits).
// Panics raised by steps or backends are recovered and returned as a
// *PanicError with the stack captured.
func (t *Traversal) ExecuteCtx(goctx context.Context) (trs []*Traverser, err error) {
	if t.err != nil {
		return nil, t.err
	}
	if t.Src == nil || t.Src.Backend == nil {
		return nil, fmt.Errorf("gremlin: traversal has no source backend")
	}
	if goctx == nil {
		goctx = context.Background()
	}
	defer func() {
		if r := recover(); r != nil {
			trs = nil
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	steps := t.Steps
	if !t.planned {
		// Clone so strategy rewrites never mutate the caller's traversal;
		// plan-cache hits arrive already cloned and rewritten, and execution
		// treats step plans as read-only, so they are shared as-is.
		steps = cloneSteps(steps)
		if !t.Src.DisableStrategies {
			steps = applyStrategies(steps, t.Src.Strategies)
		}
		if t.Src.Stats != nil {
			if st := t.Src.Stats.Current(); st != nil {
				applyCost(steps, st)
			}
		}
	}
	// profile()/explain() must close the chain; strip the marker and
	// instrument the run.
	wantProfile := false
	wantExplain := false
	if n := len(steps); n > 0 {
		switch steps[n-1].(type) {
		case *ProfileStep:
			wantProfile = true
			steps = steps[:n-1]
		case *ExplainStep:
			wantExplain = true
			steps = steps[:n-1]
		}
	}
	span := telemetry.SpanFrom(goctx)
	// profile() without a caller span opens a local one, so backend and SQL
	// operator timings recorded downstream land in the report's ops table.
	var localSpan *telemetry.Span
	if wantProfile && span == nil {
		localSpan = telemetry.NewSpan()
		span = localSpan
		goctx = telemetry.WithSpan(goctx, span)
	}
	par := t.Src.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	arena := newArena()
	// Reset-on-release on every exit path (success, error, panic): zero all
	// leased slabs and frame buffers before they go back to their pools. The
	// deferred release runs after the return value is computed, i.e. after
	// emitFrame has copied the final frame out of the arena.
	defer arena.release()
	ctx := &execCtx{
		goctx:       goctx,
		backend:     t.Src.Backend,
		batch:       graph.Batched(t.Src.Backend),
		batchSize:   t.Src.BatchSize,
		batchHist:   t.Src.BatchHist,
		sideEffects: make(map[string][]any),
		trackPaths:  plansPaths(steps),
		limits:      t.Src.Limits.Normalized(),
		pool:        newWorkerPool(par, t.Src.WorkerGauge),
		alloc:       arena.local(),
	}
	var start time.Time
	if wantProfile || wantExplain || span != nil {
		ctx.prof = newProfiler()
		start = time.Now()
	}
	frame, err := runSteps(ctx, steps, nil)
	if err != nil {
		return nil, err
	}
	if lim := ctx.limits.MaxResults; lim > 0 && len(frame) > lim {
		return nil, &graph.BudgetError{Resource: "results", Limit: lim}
	}
	if ctx.prof != nil && span != nil {
		p := ctx.prof.report(steps, time.Since(start))
		if localSpan != nil {
			p.Ops = localSpan.Ops()
		}
		span.AddProfile(p)
		if wantProfile {
			return []*Traverser{{Obj: p}}, nil
		}
	}
	if wantExplain {
		return []*Traverser{{Obj: buildExplain(t.Src, steps, ctx.prof, time.Since(start), len(frame))}}, nil
	}
	// Copy-on-emit: the caller's frame must not alias arena memory.
	return emitFrame(frame), nil
}

// plansPaths reports whether any step (recursively) needs path tracking.
func plansPaths(steps []Step) bool {
	for _, s := range steps {
		switch x := s.(type) {
		case *PathStep, *SimplePathStep:
			return true
		case *RepeatStep:
			if plansPaths(x.Body) || plansPaths(x.Until) {
				return true
			}
		case *WhereStep:
			if plansPaths(x.Sub) {
				return true
			}
		case *UnionStep:
			for _, b := range x.Branches {
				if plansPaths(b) {
					return true
				}
			}
		}
	}
	return false
}

// derive creates a child traverser from a parent with a new object. The
// slot comes from the chunk-private arena allocator; the path extension is
// one exact-size copy (the old double append re-copied the parent path into
// a growth-sized backing first).
func (ctx *execCtx) derive(parent *Traverser, obj any) *Traverser {
	child := ctx.alloc.get()
	child.Obj = obj
	if parent != nil {
		child.Labels = parent.Labels
		child.FromV = parent.FromV
		if ctx.trackPaths {
			p := make([]any, len(parent.Path)+1)
			copy(p, parent.Path)
			p[len(p)-1] = obj
			child.Path = p
		}
	} else if ctx.trackPaths {
		child.Path = []any{obj}
	}
	return child
}

// replace creates a traverser that substitutes the object in place (no new
// path entry), used by value-extraction steps.
func (ctx *execCtx) replace(parent *Traverser, obj any) *Traverser {
	t := ctx.alloc.get()
	t.Obj = obj
	t.Path = parent.Path
	t.Labels = parent.Labels
	t.FromV = parent.FromV
	return t
}

func runSteps(ctx *execCtx, steps []Step, frame []*Traverser) ([]*Traverser, error) {
	var err error
	for i, s := range steps {
		if err := ctx.interrupted(); err != nil {
			return nil, err
		}
		if ctx.prof != nil {
			st := ctx.prof.get(s)
			st.calls.Add(1)
			st.in.Add(int64(len(frame)))
			begin := time.Now()
			frame, err = runStep(ctx, s, frame, i == 0)
			st.durNS.Add(int64(time.Since(begin)))
			st.out.Add(int64(len(frame)))
		} else {
			frame, err = runStep(ctx, s, frame, i == 0)
		}
		if err != nil {
			return nil, err
		}
		if lim := ctx.limits.MaxTraversers; lim > 0 && len(frame) > lim {
			return nil, &graph.BudgetError{Resource: "traversers", Limit: lim}
		}
	}
	return frame, nil
}

func runStep(ctx *execCtx, s Step, in []*Traverser, isFirst bool) ([]*Traverser, error) {
	switch x := s.(type) {
	case *GraphStep:
		return runGraphStep(ctx, x, isFirst)
	case *VertexStep:
		return runVertexStep(ctx, x, in)
	case *EdgeVertexStep:
		return runEdgeVertexStep(ctx, x, in)
	case *HasStep:
		return runHasStep(x, in)
	case *ValuesStep:
		out := make([]*Traverser, 0, len(in))
		for _, tr := range in {
			el, ok := tr.element()
			if !ok {
				return nil, fmt.Errorf("gremlin: values() requires elements")
			}
			for _, k := range x.Keys {
				if v, ok := el.Props[k]; ok {
					out = append(out, ctx.derive(tr, v))
				}
			}
		}
		return out, nil
	case *ValueMapStep:
		out := make([]*Traverser, 0, len(in))
		for _, tr := range in {
			el, ok := tr.element()
			if !ok {
				return nil, fmt.Errorf("gremlin: valueMap() requires elements")
			}
			m := make(map[string]types.Value)
			if len(x.Keys) == 0 {
				for k, v := range el.Props {
					m[k] = v
				}
			} else {
				for _, k := range x.Keys {
					if v, ok := el.Props[k]; ok {
						m[k] = v
					}
				}
			}
			if x.WithIDLabel {
				m[graph.KeyID] = types.NewString(el.ID)
				m[graph.KeyLabel] = types.NewString(el.Label)
			}
			out = append(out, ctx.derive(tr, m))
		}
		return out, nil
	case *IDStep:
		out := make([]*Traverser, 0, len(in))
		for _, tr := range in {
			el, ok := tr.element()
			if !ok {
				return nil, fmt.Errorf("gremlin: id() requires elements")
			}
			out = append(out, ctx.replace(tr, types.NewString(el.ID)))
		}
		return out, nil
	case *LabelStep:
		out := make([]*Traverser, 0, len(in))
		for _, tr := range in {
			el, ok := tr.element()
			if !ok {
				return nil, fmt.Errorf("gremlin: label() requires elements")
			}
			out = append(out, ctx.replace(tr, types.NewString(el.Label)))
		}
		return out, nil
	case *AggregateStep:
		return runAggregateStep(x, in)
	case *DedupStep:
		seen := make(map[string]bool, len(in))
		out := make([]*Traverser, 0, len(in))
		for _, tr := range in {
			k := objKey(tr.Obj)
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, tr)
		}
		return out, nil
	case *LimitStep:
		if len(in) > x.N {
			return in[:x.N], nil
		}
		return in, nil
	case *OrderStep:
		out := append([]*Traverser{}, in...)
		var keyErr error
		key := func(tr *Traverser) types.Value {
			if x.By != "" {
				el, ok := tr.element()
				if !ok {
					keyErr = fmt.Errorf("gremlin: order().by(%q) requires elements", x.By)
					return types.Null
				}
				return el.Props[x.By]
			}
			if v, ok := tr.value(); ok {
				return v
			}
			if el, ok := tr.element(); ok {
				return types.NewString(el.ID)
			}
			return types.NewString(fmt.Sprint(tr.Obj))
		}
		sort.SliceStable(out, func(i, j int) bool {
			c := types.Compare(key(out[i]), key(out[j]))
			if x.Desc {
				return c > 0
			}
			return c < 0
		})
		return out, keyErr
	case *StoreStep:
		for _, tr := range in {
			ctx.sideEffects[x.Key] = append(ctx.sideEffects[x.Key], tr.Obj)
		}
		return in, nil
	case *CapStep:
		vals := append([]any{}, ctx.sideEffects[x.Key]...)
		return []*Traverser{{Obj: vals}}, nil
	case *RepeatStep:
		return runRepeatStep(ctx, x, in)
	case *WhereStep:
		keep, err := runSubFilter(ctx, x.Sub, in)
		if err != nil {
			return nil, err
		}
		out := make([]*Traverser, 0, len(in))
		for i, tr := range in {
			if keep[i] != x.Negate {
				out = append(out, tr)
			}
		}
		return out, nil
	case *UnionStep:
		sctx := ctx
		for _, b := range x.Branches {
			if plansSideEffects(b) {
				sctx = ctx.serial()
				break
			}
		}
		nchunks := sctx.chunkable(len(in), subChunkMin)
		return sctx.mapChunks(len(in), nchunks, func(c *execCtx, lo, hi int) ([]*Traverser, error) {
			var out []*Traverser
			for _, tr := range in[lo:hi] {
				for _, branch := range x.Branches {
					res, err := runSteps(c, branch, []*Traverser{c.cloneForSub(tr)})
					if err != nil {
						return nil, err
					}
					out = append(out, res...)
				}
			}
			return out, nil
		})
	case *PathStep:
		out := make([]*Traverser, 0, len(in))
		for _, tr := range in {
			out = append(out, ctx.replace(tr, append([]any{}, tr.Path...)))
		}
		return out, nil
	case *SimplePathStep:
		out := make([]*Traverser, 0, len(in))
		for _, tr := range in {
			seen := map[string]bool{}
			simple := true
			for _, o := range tr.Path {
				k := objKey(o)
				if seen[k] {
					simple = false
					break
				}
				seen[k] = true
			}
			if simple {
				out = append(out, tr)
			}
		}
		return out, nil
	case *AsStep:
		for _, tr := range in {
			labels := make(map[string]any, len(tr.Labels)+1)
			for k, v := range tr.Labels {
				labels[k] = v
			}
			labels[x.Label] = tr.Obj
			tr.Labels = labels
		}
		return in, nil
	case *SelectStep:
		out := make([]*Traverser, 0, len(in))
		for _, tr := range in {
			if len(x.Labels) == 1 {
				obj, ok := tr.Labels[x.Labels[0]]
				if !ok {
					continue
				}
				out = append(out, ctx.replace(tr, obj))
				continue
			}
			m := make(map[string]any, len(x.Labels))
			complete := true
			for _, l := range x.Labels {
				obj, ok := tr.Labels[l]
				if !ok {
					complete = false
					break
				}
				m[l] = obj
			}
			if complete {
				out = append(out, ctx.replace(tr, m))
			}
		}
		return out, nil
	case *GroupCountStep:
		counts := make(map[string]int64)
		for _, tr := range in {
			var k string
			if x.By != "" {
				el, ok := tr.element()
				if !ok {
					return nil, fmt.Errorf("gremlin: groupCount().by(%q) requires elements", x.By)
				}
				k = el.Props[x.By].Text()
			} else {
				k = objDisplay(tr.Obj)
			}
			counts[k]++
		}
		return []*Traverser{{Obj: counts}}, nil
	case *ConstantStep:
		out := make([]*Traverser, 0, len(in))
		for _, tr := range in {
			out = append(out, ctx.replace(tr, x.Value))
		}
		return out, nil
	case *IsStep:
		pred := graph.Pred{Key: "~value", Op: x.Op, Value: x.Value}
		out := make([]*Traverser, 0, len(in))
		for _, tr := range in {
			v, ok := tr.value()
			if !ok {
				return nil, fmt.Errorf("gremlin: is() requires values")
			}
			// Reuse predicate evaluation via a synthetic element.
			tmp := &graph.Element{Props: map[string]types.Value{"~value": v}}
			if pred.Matches(tmp) {
				out = append(out, tr)
			}
		}
		return out, nil
	case *ProfileStep:
		// ExecuteCtx strips a trailing profile(); reaching here means it was
		// used mid-chain.
		return nil, fmt.Errorf("gremlin: profile() must be the last step")
	case *ExplainStep:
		return nil, fmt.Errorf("gremlin: explain() must be the last step")
	default:
		return nil, fmt.Errorf("gremlin: unsupported step %T", s)
	}
}

// maxUnboundedRepeat caps until()-only loops so a predicate that never
// fires errors out instead of spinning forever.
const maxUnboundedRepeat = 64

// maxRepeatFrontier bounds the traverser frontier inside repeat(): cyclic
// walks without dedup() grow exponentially, and an explicit error beats an
// out-of-memory hang.
const maxRepeatFrontier = 1 << 20

func runRepeatStep(ctx *execCtx, x *RepeatStep, in []*Traverser) ([]*Traverser, error) {
	if x.Times <= 0 && len(x.Until) == 0 {
		return nil, fmt.Errorf("gremlin: repeat() requires times() or until()")
	}
	if lim := ctx.limits.MaxRepeatIters; lim > 0 && x.Times > lim {
		return nil, &graph.BudgetError{Resource: "repeat-iterations", Limit: lim}
	}
	frame := in
	var out []*Traverser // traversers that satisfied until()
	var emitted []*Traverser
	limit := x.Times
	if limit <= 0 {
		limit = maxUnboundedRepeat
		if lim := ctx.limits.MaxRepeatIters; lim > 0 && limit > lim {
			limit = lim
		}
	}
	frontierCap := maxRepeatFrontier
	if lim := ctx.limits.MaxTraversers; lim > 0 && lim < frontierCap {
		frontierCap = lim
	}
	for i := 0; i < limit && len(frame) > 0; i++ {
		if err := ctx.interrupted(); err != nil {
			return nil, err
		}
		if len(frame) > frontierCap {
			return nil, &graph.BudgetError{Resource: "traversers", Limit: frontierCap}
		}
		next, err := runSteps(ctx, x.Body, frame)
		if err != nil {
			return nil, err
		}
		if x.Emit {
			emitted = append(emitted, next...)
		}
		if len(x.Until) > 0 {
			matched, err := runSubFilter(ctx, x.Until, next)
			if err != nil {
				return nil, err
			}
			var continuing []*Traverser
			for i, tr := range next {
				if matched[i] {
					out = append(out, tr)
				} else {
					continuing = append(continuing, tr)
				}
			}
			frame = continuing
			continue
		}
		frame = next
	}
	if x.Times <= 0 && len(frame) > 0 {
		return nil, fmt.Errorf("gremlin: repeat().until() did not converge within %d iterations", maxUnboundedRepeat)
	}
	switch {
	case x.Emit:
		return emitted, nil
	case len(x.Until) > 0:
		return out, nil
	default:
		return frame, nil
	}
}

// cloneForSub seeds a sub-traversal from a traverser.
func (ctx *execCtx) cloneForSub(tr *Traverser) *Traverser {
	t := ctx.alloc.get()
	t.Obj = tr.Obj
	t.Path = tr.Path
	t.Labels = tr.Labels
	t.FromV = tr.FromV
	return t
}

func runGraphStep(ctx *execCtx, x *GraphStep, isFirst bool) ([]*Traverser, error) {
	if !isFirst {
		return nil, fmt.Errorf("gremlin: %s() must be the first step", x.Name())
	}
	if x.PushAgg != nil {
		var v types.Value
		var err error
		if x.Kind == KindVertex {
			v, err = ctx.backend.AggV(ctx.goctx, x.Query, *x.PushAgg)
		} else {
			v, err = ctx.backend.AggE(ctx.goctx, x.Query, *x.PushAgg)
		}
		if err != nil {
			return nil, err
		}
		return []*Traverser{{Obj: v}}, nil
	}
	var els []*graph.Element
	var err error
	if x.Kind == KindVertex {
		els, err = ctx.backend.V(ctx.goctx, x.Query)
	} else {
		els, err = ctx.backend.E(ctx.goctx, x.Query)
	}
	if err != nil {
		return nil, err
	}
	out := ctx.newFrame(len(els))
	for _, el := range els {
		out = append(out, ctx.derive(nil, el))
	}
	return out, nil
}

func runVertexStep(ctx *execCtx, x *VertexStep, in []*Traverser) ([]*Traverser, error) {
	// Source vertices: either fused seed ids or incoming vertex traversers.
	// travGroup keeps the dominant one-traverser-per-vertex case slice-free.
	n := len(x.SeedIDs)
	if n == 0 {
		n = len(in)
	}
	parents := make(map[string]travGroup, n)
	vids := make([]string, 0, n)
	if len(x.SeedIDs) > 0 {
		for _, id := range x.SeedIDs {
			g := parents[id]
			if g.n == 0 {
				vids = append(vids, id)
			}
			g.add(nil)
			parents[id] = g
		}
	} else {
		for _, tr := range in {
			el, ok := tr.element()
			if !ok || el.IsEdge {
				return nil, fmt.Errorf("gremlin: %s() requires vertices", x.Name())
			}
			g := parents[el.ID]
			if g.n == 0 {
				vids = append(vids, el.ID)
			}
			g.add(tr)
			parents[el.ID] = g
		}
	}
	if len(vids) == 0 {
		if x.PushAgg != nil {
			// A fused aggregate must still emit its empty-stream result
			// (count() of nothing is 0; other aggregates yield NULL), the
			// same as the unfused AggregateStep over an empty frame.
			if x.PushAgg.Kind == graph.AggCount {
				return []*Traverser{{Obj: types.NewInt(0)}}, nil
			}
			return []*Traverser{{Obj: types.Null}}, nil
		}
		return nil, nil
	}

	if x.PushAgg != nil {
		// The backend aggregates over the unique vertex-id set, which is
		// only equivalent to aggregating the traverser stream when every
		// source vertex carries exactly one traverser. With duplicated
		// traversers (e.g. after a non-deduped multi-path hop), fall back
		// to materializing and aggregating with multiplicity. bothE() has
		// the same mismatch for edges connecting two frontier vertices
		// (traversed once from each end but stored once), so it only pushes
		// down for a single source vertex.
		unique := true
		for _, ps := range parents {
			if ps.n != 1 {
				unique = false
				break
			}
		}
		if x.Dir == graph.DirBoth && len(vids) > 1 {
			unique = false
		}
		if unique {
			v, err := ctx.backend.AggVertexEdges(ctx.goctx, vids, x.Dir, x.Query, *x.PushAgg)
			if err != nil {
				return nil, err
			}
			return []*Traverser{{Obj: v}}, nil
		}
		cp := *x
		cp.PushAgg = nil
		frame, err := runVertexStep(ctx, &cp, in)
		if err != nil {
			return nil, err
		}
		if x.PushAgg.Kind == graph.AggCount {
			return []*Traverser{{Obj: types.NewInt(int64(len(frame)))}}, nil
		}
		els := make([]*graph.Element, 0, len(frame))
		for _, tr := range frame {
			if el, ok := tr.element(); ok {
				els = append(els, el)
			}
		}
		v, err := graph.AggregateElements(els, *x.PushAgg)
		if err != nil {
			return nil, err
		}
		return []*Traverser{{Obj: v}}, nil
	}

	// Fan out over the unique source vertices in contiguous chunks (see
	// parallel.go). Emission is vertex-major: each source vertex, in
	// first-appearance order, contributes its incident edges in the
	// backend's per-vertex adjacency order, attributed to that vertex's
	// traversers in input order. That order is invariant under chunking
	// for out()/in() — an edge has exactly one source (resp. destination)
	// vertex, so it belongs to exactly one chunk. both() runs as a single
	// chunk: VertexEdges dedups edges per call, so an edge joining
	// vertices of two chunks would surface in both calls with a relative
	// order that depends on the split. A pushed-down element limit also
	// forces one chunk, since per-chunk limits would over-fetch.
	nchunks := 1
	if x.Dir != graph.DirBoth && (x.Query == nil || x.Query.Limit == 0) {
		nchunks = ctx.chunkable(len(vids), vertexChunkMin)
		// The planner's chunk-size hint caps anchors per chunk below the
		// static floor when the estimated fan-out per anchor is high, so a
		// small anchor set still spreads across the worker pool. Pool-gated:
		// the serial engine keeps its single-call batches. Chunk count never
		// affects results (contiguous chunks, order-preserving merge).
		if x.BatchHint > 0 && ctx.pool != nil {
			if need := (len(vids) + x.BatchHint - 1) / x.BatchHint; need > nchunks {
				nchunks = need
			}
		}
	}
	return ctx.mapChunks(len(vids), nchunks, func(c *execCtx, lo, hi int) ([]*Traverser, error) {
		return vertexFanout(c, x, vids[lo:hi], parents)
	})
}

// travGroup collects the traversers anchored at one source vertex without
// allocating a per-vertex slice in the dominant single-traverser case. A
// nil traverser is a valid member (fused seed ids have no parent), so n —
// not first — is the occupancy signal.
type travGroup struct {
	n     int
	first *Traverser
	rest  []*Traverser
}

func (g *travGroup) add(tr *Traverser) {
	if g.n == 0 {
		g.first = tr
	} else {
		g.rest = append(g.rest, tr)
	}
	g.n++
}

// edgeHit attributes one incident edge to one source traverser.
type edgeHit struct {
	edge   *graph.Element
	parent *Traverser
	fromV  string
}

// vertexFanout materializes one chunk of a VertexStep: it fetches the
// incident edges of the chunk's vertices in ONE batched backend call, groups
// them per vertex, and emits traversers (edges for outE/inE/bothE, resolved
// far endpoints for out/in/both) in vertex-major order.
func vertexFanout(ctx *execCtx, x *VertexStep, vids []string, parents map[string]travGroup) ([]*Traverser, error) {
	// groups[i] holds the edges attributed to vids[i], preserving the
	// backend's edge order per vertex.
	var groups [][]*graph.Element
	if x.Dir != graph.DirBoth && (x.Query == nil || x.Query.Limit == 0) {
		// Vectorized path: one EdgesForVertices multi-get returns the
		// per-vertex groups directly. For out()/in() without a pushed limit
		// the groups are exactly the regroup of a flat VertexEdges call (an
		// edge has one source and one destination, and per-vertex adjacency
		// order is batch-independent), so results match the scalar path
		// bit for bit.
		ctx.observeBatch(len(vids))
		var err error
		groups, err = ctx.batch.EdgesForVertices(ctx.goctx, vids, x.Dir, x.Query)
		if err != nil {
			return nil, err
		}
	} else {
		// both() and pushed limits keep the flat fetch: their cross-vertex
		// dedup and cross-set limit semantics are defined by one call over
		// the whole (single-chunk) set.
		edges, err := ctx.backend.VertexEdges(ctx.goctx, vids, x.Dir, x.Query)
		if err != nil {
			return nil, err
		}
		// vids are unique (first-appearance order), so the slot map is 1:1.
		slot := make(map[string]int, len(vids))
		for i, vid := range vids {
			slot[vid] = i + 1
		}
		groups = make([][]*graph.Element, len(vids))
		add := func(vid string, e *graph.Element) {
			if i := slot[vid]; i > 0 {
				groups[i-1] = append(groups[i-1], e)
			}
		}
		for _, e := range edges {
			switch x.Dir {
			case graph.DirOut:
				add(e.OutV, e)
			case graph.DirIn:
				add(e.InV, e)
			case graph.DirBoth:
				add(e.OutV, e)
				if e.InV != e.OutV {
					add(e.InV, e)
				}
			}
		}
	}

	// Attribute each edge back to the traverser(s) whose vertex it touches.
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	hits := make([]edgeHit, 0, total)
	for i, vid := range vids {
		g := parents[vid]
		for _, e := range groups[i] {
			hits = append(hits, edgeHit{edge: e, parent: g.first, fromV: vid})
			for _, p := range g.rest {
				hits = append(hits, edgeHit{edge: e, parent: p, fromV: vid})
			}
		}
	}

	if x.ReturnEdges {
		out := ctx.newFrame(len(hits))
		for _, h := range hits {
			tr := ctx.derive(h.parent, h.edge)
			tr.FromV = h.fromV
			out = append(out, tr)
		}
		return out, nil
	}

	// out()/in()/both(): resolve the far endpoint of each hit.
	vq := x.VQuery
	if vq == nil {
		vq = &graph.Query{}
	}
	ends := make([]graph.Direction, len(hits))
	for i, h := range hits {
		if h.edge.OutV == h.fromV {
			ends[i] = graph.DirIn // we sit at the source; move to destination
		} else {
			ends[i] = graph.DirOut
		}
	}
	resolved := make([]*graph.Element, len(hits))
	if x.ResolveScan && len(vq.IDs) == 0 && vq.Limit == 0 {
		// Planner-chosen distinct-endpoint resolution: on hub-heavy hops many
		// edge hits share a far endpoint, so one multi-get over the distinct
		// endpoint ids beats resolving per edge. The hash join back into hit
		// order reproduces EdgeVertices alignment exactly (nil = filtered by
		// vq), per the BatchBackend contract. Runtime-gated off when vq
		// carries an id filter or limit, whose semantics VerticesByIDs
		// replaces rather than applies.
		want := make([]string, len(hits))
		var distinct []string
		seen := make(map[string]bool, len(hits))
		for i, h := range hits {
			w := h.edge.InV
			if ends[i] == graph.DirOut {
				w = h.edge.OutV
			}
			want[i] = w
			if !seen[w] {
				seen[w] = true
				distinct = append(distinct, w)
			}
		}
		ctx.observeBatch(len(distinct))
		vs, err := ctx.batch.VerticesByIDs(ctx.goctx, distinct, vq)
		if err != nil {
			return nil, err
		}
		byID := make(map[string]*graph.Element, len(distinct))
		for i, id := range distinct {
			byID[id] = vs[i]
		}
		for i := range hits {
			resolved[i] = byID[want[i]]
		}
		out := ctx.newFrame(len(hits))
		for i, h := range hits {
			if resolved[i] == nil {
				continue // filtered by vq
			}
			tr := ctx.derive(h.parent, resolved[i])
			tr.FromV = h.fromV
			out = append(out, tr)
		}
		return out, nil
	}
	// Batch by end direction to keep the backend contract simple.
	for _, dir := range []graph.Direction{graph.DirOut, graph.DirIn} {
		batch := make([]*graph.Element, 0, len(hits))
		idx := make([]int, 0, len(hits))
		for i := range hits {
			if ends[i] == dir {
				batch = append(batch, hits[i].edge)
				idx = append(idx, i)
			}
		}
		if len(batch) == 0 {
			continue
		}
		vs, err := ctx.backend.EdgeVertices(ctx.goctx, batch, dir, vq)
		if err != nil {
			return nil, err
		}
		if err := checkEdgeVertices(ctx.backend, vs, batch); err != nil {
			return nil, err
		}
		for j, v := range vs {
			resolved[idx[j]] = v
		}
	}
	out := ctx.newFrame(len(hits))
	for i, h := range hits {
		if resolved[i] == nil {
			continue // filtered by vq
		}
		tr := ctx.derive(h.parent, resolved[i])
		tr.FromV = h.fromV
		out = append(out, tr)
	}
	return out, nil
}

func runEdgeVertexStep(ctx *execCtx, x *EdgeVertexStep, in []*Traverser) ([]*Traverser, error) {
	q := x.Query
	if q == nil {
		q = &graph.Query{}
	}
	type want struct {
		tr  *Traverser
		dir graph.Direction
	}
	wants := make([]want, 0, len(in))
	for _, tr := range in {
		el, ok := tr.element()
		if !ok || !el.IsEdge {
			return nil, fmt.Errorf("gremlin: %s() requires edges", x.Name())
		}
		switch x.End {
		case EndOut:
			wants = append(wants, want{tr, graph.DirOut})
		case EndIn:
			wants = append(wants, want{tr, graph.DirIn})
		case EndBoth:
			wants = append(wants, want{tr, graph.DirOut}, want{tr, graph.DirIn})
		case EndOther:
			if tr.FromV == "" {
				return nil, fmt.Errorf("gremlin: otherV() requires a vertex-derived edge")
			}
			if el.OutV == tr.FromV {
				wants = append(wants, want{tr, graph.DirIn})
			} else {
				wants = append(wants, want{tr, graph.DirOut})
			}
		}
	}
	// Resolve in contiguous chunks of the wants list (see parallel.go).
	// EdgeVertices is positional — one result slot per requested edge — so
	// chunking cannot change what resolves; emission is in wants order
	// (input-traverser order, outV before inV for bothV), identical for
	// serial and parallel runs. A pushed-down element limit forces one
	// chunk, since per-chunk limits would over-fetch.
	nchunks := 1
	if q.Limit == 0 {
		nchunks = ctx.chunkable(len(wants), vertexChunkMin)
	}
	return ctx.mapChunks(len(wants), nchunks, func(c *execCtx, lo, hi int) ([]*Traverser, error) {
		sub := wants[lo:hi]
		c.observeBatch(len(sub))
		resolved := make([]*graph.Element, len(sub))
		for _, dir := range []graph.Direction{graph.DirOut, graph.DirIn} {
			var batch []*graph.Element
			var idx []int
			for i, w := range sub {
				if w.dir == dir {
					el, _ := w.tr.element()
					batch = append(batch, el)
					idx = append(idx, i)
				}
			}
			if len(batch) == 0 {
				continue
			}
			vs, err := c.backend.EdgeVertices(c.goctx, batch, dir, q)
			if err != nil {
				return nil, err
			}
			if err := checkEdgeVertices(c.backend, vs, batch); err != nil {
				return nil, err
			}
			for j, v := range vs {
				resolved[idx[j]] = v
			}
		}
		out := c.newFrame(len(sub))
		for i, w := range sub {
			if resolved[i] == nil {
				continue // filtered by q
			}
			out = append(out, c.derive(w.tr, resolved[i]))
		}
		return out, nil
	})
}

func runHasStep(x *HasStep, in []*Traverser) ([]*Traverser, error) {
	out := make([]*Traverser, 0, len(in))
	for _, tr := range in {
		el, ok := tr.element()
		if !ok {
			return nil, fmt.Errorf("gremlin: has() requires elements")
		}
		match := true
		for _, p := range x.Preds {
			if !p.Matches(el) {
				match = false
				break
			}
		}
		if match {
			out = append(out, tr)
		}
	}
	return out, nil
}

func runAggregateStep(x *AggregateStep, in []*Traverser) ([]*Traverser, error) {
	if x.Kind == graph.AggCount {
		return []*Traverser{{Obj: types.NewInt(int64(len(in)))}}, nil
	}
	vals := make([]types.Value, 0, len(in))
	for _, tr := range in {
		v, ok := tr.value()
		if !ok {
			return nil, fmt.Errorf("gremlin: %s() requires values (use values(...) first)", x.Kind)
		}
		vals = append(vals, v)
	}
	v, err := graph.AggregateValues(vals, x.Kind)
	if err != nil {
		return nil, err
	}
	return []*Traverser{{Obj: v}}, nil
}

// objKey builds a dedup key for a traverser object.
func objKey(obj any) string {
	switch x := obj.(type) {
	case *graph.Element:
		if x.IsEdge {
			return "e\x00" + x.ID
		}
		return "v\x00" + x.ID
	case types.Value:
		return "s\x00" + types.EncodeKeyTuple([]types.Value{x})
	default:
		return "o\x00" + fmt.Sprint(obj)
	}
}

// objDisplay renders a traverser object for console output and groupCount
// keys.
func objDisplay(obj any) string {
	switch x := obj.(type) {
	case *graph.Element:
		return x.String()
	case types.Value:
		return x.Text()
	case map[string]types.Value:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + ":" + x[k].Text()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case []any:
		parts := make([]string, len(x))
		for i, o := range x {
			parts[i] = objDisplay(o)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case map[string]int64:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s:%d", k, x[k])
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + ":" + objDisplay(x[k])
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return fmt.Sprint(obj)
	}
}

// Display renders any traversal result object as a console string.
func Display(obj any) string { return objDisplay(obj) }

// --- Terminal methods ---

// ToList executes the traversal and returns the result objects.
func (t *Traversal) ToList() ([]any, error) {
	return t.ToListCtx(context.Background())
}

// ToListCtx is ToList under a query context.
func (t *Traversal) ToListCtx(ctx context.Context) ([]any, error) {
	trs, err := t.ExecuteCtx(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]any, len(trs))
	for i, tr := range trs {
		out[i] = tr.Obj
	}
	return out, nil
}

// Next executes the traversal and returns the first result.
func (t *Traversal) Next() (any, error) {
	trs, err := t.Execute()
	if err != nil {
		return nil, err
	}
	if len(trs) == 0 {
		return nil, fmt.Errorf("gremlin: traversal produced no results")
	}
	return trs[0].Obj, nil
}

// Iterate executes the traversal for its side effects.
func (t *Traversal) Iterate() error {
	_, err := t.Execute()
	return err
}

// ToValues executes the traversal and converts every result to a scalar
// value (elements are rejected).
func (t *Traversal) ToValues() ([]types.Value, error) {
	trs, err := t.Execute()
	if err != nil {
		return nil, err
	}
	out := make([]types.Value, len(trs))
	for i, tr := range trs {
		v, ok := tr.value()
		if !ok {
			return nil, fmt.Errorf("gremlin: result %d is not a scalar value", i)
		}
		out[i] = v
	}
	return out, nil
}
