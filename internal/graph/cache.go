package graph

// DataVersioned is implemented by backends that expose a monotonically
// increasing data version: the counter increments after every committed
// mutation (AddVertex, AddEdge, bulk-load batch, SQL DML on backing tables)
// becomes visible. Caches above the backend tag entries with the version
// observed *before* reading the data and treat an entry as fresh only while
// its tag equals the current version, which guarantees read-your-writes: a
// completed mutation has already bumped the version, so every entry filled
// from the pre-mutation state misses.
type DataVersioned interface {
	DataVersion() uint64
}

// ConfigVersioned is implemented by backends whose topology/overlay
// configuration can change after open. The compiled-plan cache keys on it so
// plans compiled against an older configuration are never reused. Backends
// with an immutable post-open configuration simply omit the interface (the
// cache then uses version 0 forever).
type ConfigVersioned interface {
	ConfigVersion() uint64
}

// CacheStats is a point-in-time snapshot of one cache's counters, the
// uniform shape every caching layer (compiled plans, backend topology/
// adjacency caches, the gdbx page cache) reports through.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions,omitempty"`
	// Invalidations counts entries dropped for freshness (version bump or
	// explicit flush) rather than capacity.
	Invalidations int64 `json:"invalidations,omitempty"`
	// Entries is the current resident entry count.
	Entries int64 `json:"entries,omitempty"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheStatsProvider is implemented by backends that maintain internal
// caches; the key names the cache ("adjacency", "vertex", "page", ...).
type CacheStatsProvider interface {
	CacheMetrics() map[string]CacheStats
}

// ArenaBytesProvider is implemented by backends that decode stored records
// through arena-style buffers (DESIGN.md §15); ArenaBytes reports the
// cumulative bytes decoded into cache-resident snapshots, published as the
// janus_arena_bytes gauge by gserver.
type ArenaBytesProvider interface {
	ArenaBytes() int64
}

// CacheFlusher is implemented by layers whose caches can be dropped on
// demand (the gserver !flushcaches control request; benchmarking cold
// starts). Flushing only costs refills — it never affects correctness.
type CacheFlusher interface {
	FlushCaches()
}

// DataVersionOf returns b's data version, or 0 when b does not expose one.
func DataVersionOf(b Backend) uint64 {
	if v, ok := b.(DataVersioned); ok {
		return v.DataVersion()
	}
	return 0
}

// ConfigVersionOf returns b's config version, or 0 when b does not expose
// one.
func ConfigVersionOf(b Backend) uint64 {
	if v, ok := b.(ConfigVersioned); ok {
		return v.ConfigVersion()
	}
	return 0
}
