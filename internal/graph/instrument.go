package graph

import (
	"context"
	"fmt"
	"time"

	"db2graph/internal/sql/types"
	"db2graph/internal/telemetry"
)

// Backend method indexes for the instrumented wrapper's metric tables.
const (
	opV = iota
	opE
	opVertexEdges
	opEdgeVertices
	opAggV
	opAggE
	opAggVertexEdges
	opVerticesByIDs
	opEdgesForVertices
	numBackendOps
)

var backendOpNames = [numBackendOps]string{
	"V", "E", "VertexEdges", "EdgeVertices", "AggV", "AggE", "AggVertexEdges",
	"VerticesByIDs", "EdgesForVertices",
}

// InstrumentedBackend decorates any Backend with telemetry: per-method call,
// error and row counters plus latency histograms in a Registry, and — when
// the query context carries a telemetry.Span — per-query operation stats.
// The wrapper is transparent (Name() is the inner backend's) and applies
// uniformly to mem/core/gdbx/janus. Metrics are resolved once at wrap time
// so the per-call cost is a handful of atomic adds.
type InstrumentedBackend struct {
	inner Backend
	batch BatchBackend // inner's batch view (native or fallback adapter)

	calls  [numBackendOps]*telemetry.Counter
	errors [numBackendOps]*telemetry.Counter
	rows   [numBackendOps]*telemetry.Counter
	lat    [numBackendOps]*telemetry.Histogram
}

// Instrument wraps b with metric recording into reg (Registry metrics carry
// a backend label derived from b.Name()). A nil reg uses telemetry.Default().
func Instrument(b Backend, reg *telemetry.Registry) *InstrumentedBackend {
	if reg == nil {
		reg = telemetry.Default()
	}
	ib := &InstrumentedBackend{inner: b, batch: Batched(b)}
	for op, method := range backendOpNames {
		labels := fmt.Sprintf(`{backend=%q,method=%q}`, b.Name(), method)
		ib.calls[op] = reg.Counter("graph_backend_calls_total" + labels)
		ib.errors[op] = reg.Counter("graph_backend_errors_total" + labels)
		ib.rows[op] = reg.Counter("graph_backend_rows_total" + labels)
		ib.lat[op] = reg.Histogram("graph_backend_seconds" + labels)
	}
	return ib
}

// Unwrap returns the decorated backend.
func (ib *InstrumentedBackend) Unwrap() Backend { return ib.inner }

// Name implements Backend; the wrapper stays invisible in diagnostics.
func (ib *InstrumentedBackend) Name() string { return ib.inner.Name() }

// observe records one completed call. rows counts non-nil result elements.
// It runs in a defer so panics from the inner backend are still timed and
// counted as errors before propagating to the engine's recovery.
func (ib *InstrumentedBackend) observe(ctx context.Context, op int, start time.Time, rows int64, err *error) {
	d := time.Since(start)
	ib.calls[op].Inc()
	ib.rows[op].Add(rows)
	ib.lat[op].Observe(d)
	failed := err == nil || *err != nil // err==nil means panicking
	if failed {
		ib.errors[op].Inc()
	}
	if span := telemetry.SpanFrom(ctx); span != nil {
		span.RecordOp("backend."+backendOpNames[op], rows, d)
	}
}

// countElements counts the non-nil entries of an aligned result slice.
func countElements(els []*Element) int64 {
	var n int64
	for _, el := range els {
		if el != nil {
			n++
		}
	}
	return n
}

// V implements Backend.
func (ib *InstrumentedBackend) V(ctx context.Context, q *Query) (els []*Element, err error) {
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			ib.observe(ctx, opV, start, 0, nil)
			panic(r)
		}
		ib.observe(ctx, opV, start, int64(len(els)), &err)
	}()
	return ib.inner.V(ctx, q)
}

// E implements Backend.
func (ib *InstrumentedBackend) E(ctx context.Context, q *Query) (els []*Element, err error) {
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			ib.observe(ctx, opE, start, 0, nil)
			panic(r)
		}
		ib.observe(ctx, opE, start, int64(len(els)), &err)
	}()
	return ib.inner.E(ctx, q)
}

// VertexEdges implements Backend.
func (ib *InstrumentedBackend) VertexEdges(ctx context.Context, vids []string, dir Direction, q *Query) (els []*Element, err error) {
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			ib.observe(ctx, opVertexEdges, start, 0, nil)
			panic(r)
		}
		ib.observe(ctx, opVertexEdges, start, int64(len(els)), &err)
	}()
	return ib.inner.VertexEdges(ctx, vids, dir, q)
}

// EdgeVertices implements Backend.
func (ib *InstrumentedBackend) EdgeVertices(ctx context.Context, edges []*Element, dir Direction, q *Query) (els []*Element, err error) {
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			ib.observe(ctx, opEdgeVertices, start, 0, nil)
			panic(r)
		}
		ib.observe(ctx, opEdgeVertices, start, countElements(els), &err)
	}()
	return ib.inner.EdgeVertices(ctx, edges, dir, q)
}

// AggV implements Backend.
func (ib *InstrumentedBackend) AggV(ctx context.Context, q *Query, agg Agg) (v types.Value, err error) {
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			ib.observe(ctx, opAggV, start, 0, nil)
			panic(r)
		}
		ib.observe(ctx, opAggV, start, 1, &err)
	}()
	return ib.inner.AggV(ctx, q, agg)
}

// AggE implements Backend.
func (ib *InstrumentedBackend) AggE(ctx context.Context, q *Query, agg Agg) (v types.Value, err error) {
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			ib.observe(ctx, opAggE, start, 0, nil)
			panic(r)
		}
		ib.observe(ctx, opAggE, start, 1, &err)
	}()
	return ib.inner.AggE(ctx, q, agg)
}

// AggVertexEdges implements Backend.
func (ib *InstrumentedBackend) AggVertexEdges(ctx context.Context, vids []string, dir Direction, q *Query, agg Agg) (v types.Value, err error) {
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			ib.observe(ctx, opAggVertexEdges, start, 0, nil)
			panic(r)
		}
		ib.observe(ctx, opAggVertexEdges, start, 1, &err)
	}()
	return ib.inner.AggVertexEdges(ctx, vids, dir, q, agg)
}

// VerticesByIDs implements BatchBackend, delegating to the inner backend's
// native implementation or its fallback adapter.
func (ib *InstrumentedBackend) VerticesByIDs(ctx context.Context, ids []string, q *Query) (els []*Element, err error) {
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			ib.observe(ctx, opVerticesByIDs, start, 0, nil)
			panic(r)
		}
		ib.observe(ctx, opVerticesByIDs, start, countElements(els), &err)
	}()
	return ib.batch.VerticesByIDs(ctx, ids, q)
}

// EdgesForVertices implements BatchBackend, delegating like VerticesByIDs.
func (ib *InstrumentedBackend) EdgesForVertices(ctx context.Context, vids []string, dir Direction, q *Query) (groups [][]*Element, err error) {
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			ib.observe(ctx, opEdgesForVertices, start, 0, nil)
			panic(r)
		}
		var rows int64
		for _, g := range groups {
			rows += int64(len(g))
		}
		ib.observe(ctx, opEdgesForVertices, start, rows, &err)
	}()
	return ib.batch.EdgesForVertices(ctx, vids, dir, q)
}

// DataVersion implements DataVersioned by delegation (0 when the inner
// backend does not expose a version).
func (ib *InstrumentedBackend) DataVersion() uint64 { return DataVersionOf(ib.inner) }

// ConfigVersion implements ConfigVersioned by delegation.
func (ib *InstrumentedBackend) ConfigVersion() uint64 { return ConfigVersionOf(ib.inner) }

// CacheMetrics implements CacheStatsProvider by delegation (empty when the
// inner backend has no caches).
func (ib *InstrumentedBackend) CacheMetrics() map[string]CacheStats {
	if p, ok := ib.inner.(CacheStatsProvider); ok {
		return p.CacheMetrics()
	}
	return nil
}

// FlushCaches implements CacheFlusher by delegation (no-op otherwise).
func (ib *InstrumentedBackend) FlushCaches() {
	if f, ok := ib.inner.(CacheFlusher); ok {
		f.FlushCaches()
	}
}

var (
	_ BatchBackend       = (*InstrumentedBackend)(nil)
	_ DataVersioned      = (*InstrumentedBackend)(nil)
	_ CacheStatsProvider = (*InstrumentedBackend)(nil)
	_ CacheFlusher       = (*InstrumentedBackend)(nil)
)
