// Columnar adapters for batched vertex results. ColumnizeVertices and
// VerticesFromColumns convert between the aligned []*Element contract of
// BatchBackend.VerticesByIDs and graphenc.ColumnBatch, the column-grouped
// form that travels compactly on the wire (DESIGN.md §15). The round trip
// preserves slot alignment exactly: nil input slots come back nil, and a
// vertex with no properties comes back with a nil Props map — the same shape
// the JSON wire path produces for it.
package graph

import (
	"sort"

	"db2graph/internal/graphenc"
	"db2graph/internal/sql/types"
)

// ColumnizeVertices groups an aligned vertex slice by property key. Column
// order is sorted by key so identical batches encode to identical bytes.
// Edge-only fields (OutV/InV/IsEdge) are not represented: callers use this
// for vertex batches only. Ref is dropped, as on every wire path.
func ColumnizeVertices(els []*Element) *graphenc.ColumnBatch {
	n := len(els)
	cb := &graphenc.ColumnBatch{
		Present: make([]bool, n),
		IDs:     make([]string, n),
		Labels:  make([]string, n),
		Tables:  make([]string, n),
	}
	byKey := map[string]int{}
	for i, el := range els {
		if el == nil {
			continue
		}
		cb.Present[i] = true
		cb.IDs[i] = el.ID
		cb.Labels[i] = el.Label
		cb.Tables[i] = el.Table
		for k, v := range el.Props {
			c, ok := byKey[k]
			if !ok {
				c = len(cb.Cols)
				byKey[k] = c
				cb.Cols = append(cb.Cols, graphenc.Column{
					Key:  k,
					Has:  make([]bool, n),
					Vals: make([]types.Value, n),
				})
			}
			cb.Cols[c].Has[i] = true
			cb.Cols[c].Vals[i] = v
		}
	}
	sort.Slice(cb.Cols, func(a, b int) bool { return cb.Cols[a].Key < cb.Cols[b].Key })
	return cb
}

// VerticesFromColumns reconstructs the aligned vertex slice. Rows without
// any property get a nil Props map, matching what FromWire produces for the
// row-oriented JSON encoding of the same vertex.
func VerticesFromColumns(cb *graphenc.ColumnBatch) []*Element {
	n := cb.Rows()
	out := make([]*Element, n)
	els := make([]Element, n)
	for i := 0; i < n; i++ {
		if !cb.Present[i] {
			continue
		}
		els[i] = Element{ID: cb.IDs[i], Label: cb.Labels[i], Table: cb.Tables[i]}
		out[i] = &els[i]
	}
	for _, col := range cb.Cols {
		for i := 0; i < n; i++ {
			// A cell on an absent row is only reachable via a corrupt blob;
			// drop it rather than panic.
			if !col.Has[i] || out[i] == nil {
				continue
			}
			if out[i].Props == nil {
				out[i].Props = make(map[string]types.Value)
			}
			out[i].Props[col.Key] = col.Vals[i]
		}
	}
	return out
}
