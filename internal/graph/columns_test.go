package graph

import (
	"reflect"
	"testing"

	"db2graph/internal/graphenc"
	"db2graph/internal/sql/types"
)

// TestColumnsRoundTrip proves the aligned-slot contract survives
// columnize → encode → decode → reconstruct: nil slots stay nil, property
// values round-trip bit-exactly, and empty property sets come back as nil
// maps (the wire-path shape).
func TestColumnsRoundTrip(t *testing.T) {
	els := []*Element{
		{ID: "v1", Label: "person", Table: "PEOPLE", Props: map[string]types.Value{
			"name": types.NewString("ada"),
			"age":  types.NewInt(36),
		}},
		nil, // unresolved slot
		{ID: "v2", Label: "person", Props: map[string]types.Value{
			"age":   types.NewInt(-7),
			"score": types.NewFloat(2.5),
			"null":  types.Null,
			"ok":    types.NewBool(true),
		}},
		{ID: "v3"}, // no label, no table, no props
		{ID: "v4", Label: "city", Props: map[string]types.Value{}},
	}
	blob := graphenc.AppendColumns(nil, ColumnizeVertices(els))
	cb, err := graphenc.DecodeColumns(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got := VerticesFromColumns(cb)
	want := []*Element{
		els[0],
		nil,
		els[2],
		{ID: "v3"},
		{ID: "v4", Label: "city"}, // empty Props decodes as nil Props
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestColumnsDeterministic: identical batches encode to identical bytes
// regardless of map iteration order.
func TestColumnsDeterministic(t *testing.T) {
	els := []*Element{
		{ID: "a", Props: map[string]types.Value{
			"x": types.NewInt(1), "y": types.NewInt(2), "z": types.NewInt(3),
			"w": types.NewInt(4), "v": types.NewInt(5),
		}},
		{ID: "b", Props: map[string]types.Value{"y": types.NewInt(9)}},
	}
	first := graphenc.AppendColumns(nil, ColumnizeVertices(els))
	for i := 0; i < 20; i++ {
		if got := graphenc.AppendColumns(nil, ColumnizeVertices(els)); string(got) != string(first) {
			t.Fatalf("encoding not deterministic on attempt %d", i)
		}
	}
}

// TestColumnsCorrupt: truncations and garbage fail cleanly, never panic.
func TestColumnsCorrupt(t *testing.T) {
	els := []*Element{{ID: "v", Props: map[string]types.Value{"k": types.NewString("s")}}, nil}
	blob := graphenc.AppendColumns(nil, ColumnizeVertices(els))
	for cut := 0; cut < len(blob); cut++ {
		if _, err := graphenc.DecodeColumns(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := graphenc.DecodeColumns(append(append([]byte{}, blob...), 0xff)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
	if _, err := graphenc.DecodeColumns([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Fatal("absurd row count decoded without error")
	}
}

func TestColumnsEmpty(t *testing.T) {
	blob := graphenc.AppendColumns(nil, ColumnizeVertices(nil))
	cb, err := graphenc.DecodeColumns(blob)
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if got := VerticesFromColumns(cb); len(got) != 0 {
		t.Fatalf("empty batch reconstructed %d rows", len(got))
	}
}
