package graph

import (
	"context"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time statistical summary of one backend's graph:
// per-label vertex and edge cardinalities plus degree information. The
// cost-based planner (internal/gremlin) consults it to order multi-label
// fan-out, choose index-vs-scan endpoint resolution per hop, and size batch
// chunks from estimated rows. Statistics only ever influence *how* a plan
// executes, never *what* it returns: every costed decision is
// result-identical by construction (proven by graphtest.RunPlannerDifferential).
type Stats struct {
	// DataVersion is the backend's DataVersion observed before the scan
	// started; stats are stale once the backend's current version differs.
	DataVersion uint64 `json:"data_version"`

	VertexCount int64 `json:"vertex_count"`
	EdgeCount   int64 `json:"edge_count"`

	// VertexLabels counts vertices per label.
	VertexLabels map[string]int64 `json:"vertex_labels,omitempty"`
	// EdgeLabels summarizes edges per label.
	EdgeLabels map[string]EdgeLabelStats `json:"edge_labels,omitempty"`

	// OutDegreeHist is a log2-bucket histogram of total vertex out-degree
	// (all edge labels combined). Bucket 0 counts isolated vertices
	// (out-degree 0); bucket i counts vertices with out-degree in
	// [2^(i-1), 2^i).
	OutDegreeHist DegreeHist `json:"out_degree_hist"`
}

// EdgeLabelStats summarizes the edges of one label.
type EdgeLabelStats struct {
	// Count is the number of edges with this label.
	Count int64 `json:"count"`
	// OutVertices / InVertices are the numbers of distinct source /
	// destination vertices. Count/OutVertices is the mean out-fanout of the
	// label; a ratio much greater than 1 marks hub-heavy (skewed) labels.
	OutVertices int64 `json:"out_vertices"`
	InVertices  int64 `json:"in_vertices"`
	// MaxOut / MaxIn are the largest per-vertex out/in degrees for this
	// label — the skew ceiling.
	MaxOut int64 `json:"max_out"`
	MaxIn  int64 `json:"max_in"`
}

// MeanOut returns the average out-degree of sources of this label.
func (s EdgeLabelStats) MeanOut() float64 {
	if s.OutVertices == 0 {
		return 0
	}
	return float64(s.Count) / float64(s.OutVertices)
}

// MeanIn returns the average in-degree of destinations of this label.
func (s EdgeLabelStats) MeanIn() float64 {
	if s.InVertices == 0 {
		return 0
	}
	return float64(s.Count) / float64(s.InVertices)
}

// DegreeHist is a log2-bucket degree histogram: Buckets[0] counts degree 0,
// Buckets[i] counts degrees in [2^(i-1), 2^i).
type DegreeHist struct {
	Buckets []int64 `json:"buckets,omitempty"`
}

// Add records one observation.
func (h *DegreeHist) Add(degree int64) {
	b := 0
	if degree > 0 {
		b = bits.Len64(uint64(degree))
	}
	for len(h.Buckets) <= b {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[b]++
}

// Total returns the number of observations.
func (h *DegreeHist) Total() int64 {
	var n int64
	for _, c := range h.Buckets {
		n += c
	}
	return n
}

// VertexLabelCount returns the vertex cardinality of one label, falling back
// to the total when the label is unknown (conservative over-estimate).
func (s *Stats) VertexLabelCount(label string) int64 {
	if s == nil {
		return 0
	}
	if n, ok := s.VertexLabels[label]; ok {
		return n
	}
	return s.VertexCount
}

// EdgeLabelCount returns the edge cardinality of one label, falling back to
// the total when the label is unknown.
func (s *Stats) EdgeLabelCount(label string) int64 {
	if s == nil {
		return 0
	}
	if es, ok := s.EdgeLabels[label]; ok {
		return es.Count
	}
	return s.EdgeCount
}

// Analyzer is implemented by backends with a native, cheaper statistics scan
// (e.g. reading in-memory label maps directly instead of materializing every
// element through the public V/E scan path). AnalyzeBackend falls back to the
// generic CollectStats when the interface is absent.
type Analyzer interface {
	AnalyzeStats(ctx context.Context) (*Stats, error)
}

// AnalyzeBackend computes statistics for b, preferring a native Analyzer
// implementation anywhere in b's decorator chain (unwrapping through
// Unwrap() Backend, e.g. InstrumentedBackend) and falling back to the
// generic CollectStats scan.
func AnalyzeBackend(ctx context.Context, b Backend) (*Stats, error) {
	for cur := b; cur != nil; {
		if a, ok := cur.(Analyzer); ok {
			return a.AnalyzeStats(ctx)
		}
		u, ok := cur.(interface{ Unwrap() Backend })
		if !ok {
			break
		}
		cur = u.Unwrap()
	}
	return CollectStats(ctx, b)
}

// CollectStats is the generic statistics scan: two projection-free full
// scans (V and E) through the public Backend contract. It works on every
// backend; native Analyzer implementations must return equivalent numbers
// (proven by the stats conformance tests).
func CollectStats(ctx context.Context, b Backend) (*Stats, error) {
	// Tag with the version observed *before* reading, mirroring the cache
	// layers: if a mutation lands mid-scan the recorded version is already
	// stale, never falsely fresh.
	st := &Stats{
		DataVersion:  DataVersionOf(b),
		VertexLabels: map[string]int64{},
		EdgeLabels:   map[string]EdgeLabelStats{},
	}
	noProps := &Query{Projection: []string{}}
	verts, err := b.V(ctx, noProps)
	if err != nil {
		return nil, err
	}
	st.VertexCount = int64(len(verts))
	for _, v := range verts {
		st.VertexLabels[v.Label]++
	}
	edges, err := b.E(ctx, noProps)
	if err != nil {
		return nil, err
	}
	st.EdgeCount = int64(len(edges))
	type labelDeg struct {
		out map[string]int64
		in  map[string]int64
	}
	perLabel := map[string]*labelDeg{}
	outDeg := make(map[string]int64, len(verts))
	for _, e := range edges {
		ld := perLabel[e.Label]
		if ld == nil {
			ld = &labelDeg{out: map[string]int64{}, in: map[string]int64{}}
			perLabel[e.Label] = ld
		}
		ld.out[e.OutV]++
		ld.in[e.InV]++
		outDeg[e.OutV]++
	}
	for label, ld := range perLabel {
		es := EdgeLabelStats{
			OutVertices: int64(len(ld.out)),
			InVertices:  int64(len(ld.in)),
		}
		for _, d := range ld.out {
			es.Count += d
			if d > es.MaxOut {
				es.MaxOut = d
			}
		}
		for _, d := range ld.in {
			if d > es.MaxIn {
				es.MaxIn = d
			}
		}
		st.EdgeLabels[label] = es
	}
	// Histogram over every vertex, including the edge-free ones.
	for _, v := range verts {
		st.OutDegreeHist.Add(outDeg[v.ID])
	}
	return st, nil
}

// SortedVertexLabels returns the vertex labels in deterministic order
// (ascending cardinality, ties by name) — the fan-out order the planner
// prefers and the order explain() renders.
func (s *Stats) SortedVertexLabels() []string {
	out := make([]string, 0, len(s.VertexLabels))
	for l := range s.VertexLabels {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := s.VertexLabels[out[i]], s.VertexLabels[out[j]]
		if a != b {
			return a < b
		}
		return out[i] < out[j]
	})
	return out
}

// StatsProvider owns the current statistics of one backend: ANALYZE refreshes
// them, queries read them lock-free-ish, and the plan cache keys on the epoch
// so plans costed against superseded statistics are never reused. Safe for
// concurrent use.
type StatsProvider struct {
	backend Backend
	epoch   atomic.Uint64 // bumps on every successful Analyze

	mu    sync.RWMutex
	stats *Stats
}

// NewStatsProvider creates a provider for b with no statistics yet (Current
// returns nil until the first Analyze).
func NewStatsProvider(b Backend) *StatsProvider {
	return &StatsProvider{backend: b}
}

// Analyze recomputes statistics from the backend and installs them.
func (p *StatsProvider) Analyze(ctx context.Context) (*Stats, error) {
	st, err := AnalyzeBackend(ctx, p.backend)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.stats = st
	p.mu.Unlock()
	p.epoch.Add(1)
	return st, nil
}

// Current returns the installed statistics (nil before the first Analyze).
func (p *StatsProvider) Current() *Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.stats
}

// Epoch returns the statistics generation; it changes exactly when Analyze
// installs a new snapshot.
func (p *StatsProvider) Epoch() uint64 { return p.epoch.Load() }

// Fresh reports whether the installed statistics still match the backend's
// current data version. Stale statistics remain usable (they only steer
// result-identical physical choices) but explain() flags them.
func (p *StatsProvider) Fresh() bool {
	p.mu.RLock()
	st := p.stats
	p.mu.RUnlock()
	return st != nil && st.DataVersion == DataVersionOf(p.backend)
}
