// Package graph defines the property-graph core API of the system — the
// equivalent of the TinkerPop graph structure API in the paper. The Gremlin
// traversal engine executes against the Backend interface, and three
// providers implement it: the Db2 Graph overlay (internal/core), the native
// graph database simulator (internal/gdbx), and the JanusGraph-style hybrid
// store (internal/janus).
//
// Query is the pushdown carrier: the optimized traversal strategies of the
// paper (Section 6.2) fold predicates, projections, and aggregates into the
// Query of each graph-structure-accessing step, and each backend translates
// it into its native access paths.
package graph

import (
	"context"
	"fmt"
	"sort"

	"db2graph/internal/sql/types"
)

// Direction orients adjacency operations.
type Direction int

// Directions.
const (
	DirOut Direction = iota
	DirIn
	DirBoth
)

// String returns the Gremlin-ish name of the direction.
func (d Direction) String() string {
	switch d {
	case DirOut:
		return "out"
	case DirIn:
		return "in"
	case DirBoth:
		return "both"
	default:
		return "dir?"
	}
}

// Reverse flips out and in.
func (d Direction) Reverse() Direction {
	switch d {
	case DirOut:
		return DirIn
	case DirIn:
		return DirOut
	default:
		return DirBoth
	}
}

// Element is a vertex or an edge of a property graph.
type Element struct {
	ID    string
	Label string
	// Props holds the element's properties. May be a partial set when a
	// projection was pushed down.
	Props map[string]types.Value
	// IsEdge distinguishes edges from vertices.
	IsEdge bool
	// OutV/InV are the source and destination vertex ids (edges only).
	OutV string
	InV  string
	// Table records the backing table the element came from; the Db2 Graph
	// runtime optimizations (Section 6.3) consult it.
	Table string
	// Ref is an opaque provider-specific reference (for Db2 Graph, the
	// overlay mapping that produced the element), letting the provider
	// apply table-aware optimizations when the element flows back in.
	Ref any
}

// Property returns a property value.
func (e *Element) Property(key string) (types.Value, bool) {
	v, ok := e.Props[key]
	return v, ok
}

// PropertyNames returns the sorted property keys.
func (e *Element) PropertyNames() []string {
	out := make([]string, 0, len(e.Props))
	for k := range e.Props {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders a compact description for debugging and console output.
func (e *Element) String() string {
	if e == nil {
		return "<nil>"
	}
	if e.IsEdge {
		return fmt.Sprintf("e[%s][%s-%s->%s]", e.ID, e.OutV, e.Label, e.InV)
	}
	return fmt.Sprintf("v[%s][%s]", e.ID, e.Label)
}

// PredOp enumerates predicate operators available for pushdown.
type PredOp int

// Predicate operators.
const (
	OpEq PredOp = iota
	OpNeq
	OpLt
	OpLte
	OpGt
	OpGte
	OpWithin
)

// String renders the operator.
func (op PredOp) String() string {
	switch op {
	case OpEq:
		return "eq"
	case OpNeq:
		return "neq"
	case OpLt:
		return "lt"
	case OpLte:
		return "lte"
	case OpGt:
		return "gt"
	case OpGte:
		return "gte"
	case OpWithin:
		return "within"
	default:
		return "op?"
	}
}

// Pred is one property predicate. Key may be the reserved names KeyID and
// KeyLabel to address the element id and label.
type Pred struct {
	Key    string
	Op     PredOp
	Value  types.Value
	Values []types.Value // for OpWithin
}

// Reserved predicate keys.
const (
	KeyID    = "~id"
	KeyLabel = "~label"
)

// Matches evaluates the predicate against an element.
func (p Pred) Matches(e *Element) bool {
	var v types.Value
	switch p.Key {
	case KeyID:
		v = types.NewString(e.ID)
	case KeyLabel:
		v = types.NewString(e.Label)
	default:
		var ok bool
		v, ok = e.Props[p.Key]
		if !ok {
			return false
		}
	}
	switch p.Op {
	case OpEq:
		return types.Equal(v, p.Value)
	case OpNeq:
		return !v.IsNull() && !types.Equal(v, p.Value)
	case OpLt:
		return !v.IsNull() && !p.Value.IsNull() && types.Compare(v, p.Value) < 0
	case OpLte:
		return !v.IsNull() && !p.Value.IsNull() && types.Compare(v, p.Value) <= 0
	case OpGt:
		return !v.IsNull() && !p.Value.IsNull() && types.Compare(v, p.Value) > 0
	case OpGte:
		return !v.IsNull() && !p.Value.IsNull() && types.Compare(v, p.Value) >= 0
	case OpWithin:
		for _, w := range p.Values {
			if types.Equal(v, w) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// AggKind enumerates aggregates that can be pushed into a backend.
type AggKind int

// Aggregate kinds.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggMean
	AggMin
	AggMax
)

// String renders the aggregate name.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMean:
		return "mean"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "none"
	}
}

// Agg describes an aggregate pushed into a graph-structure access: the kind
// plus the property it ranges over (empty for count).
type Agg struct {
	Kind AggKind
	Key  string
}

// Query carries the pushdown information attached to one graph-structure-
// accessing step.
type Query struct {
	// IDs restricts the result to elements with these ids (empty = all).
	IDs []string
	// Labels restricts to these labels (empty = all).
	Labels []string
	// Preds are property predicates all results must satisfy.
	Preds []Pred
	// Projection lists the property keys the caller needs; nil means all
	// properties, empty non-nil means none.
	Projection []string
	// Limit caps the number of returned elements (0 = unlimited).
	Limit int
}

// Clone returns a deep-enough copy for safe mutation.
func (q *Query) Clone() *Query {
	if q == nil {
		return &Query{}
	}
	out := *q
	out.IDs = append([]string(nil), q.IDs...)
	out.Labels = append([]string(nil), q.Labels...)
	out.Preds = append([]Pred(nil), q.Preds...)
	if q.Projection != nil {
		out.Projection = append([]string(nil), q.Projection...)
	}
	return &out
}

// MatchesLabels reports whether the element label passes the label filter.
func (q *Query) MatchesLabels(e *Element) bool {
	if len(q.Labels) == 0 {
		return true
	}
	for _, l := range q.Labels {
		if e.Label == l {
			return true
		}
	}
	return false
}

// MatchesIDs reports whether the element id passes the id filter.
func (q *Query) MatchesIDs(e *Element) bool {
	if len(q.IDs) == 0 {
		return true
	}
	for _, id := range q.IDs {
		if e.ID == id {
			return true
		}
	}
	return false
}

// Matches evaluates the whole query (ids, labels, predicates) against an
// element. Backends without native filtering use it as their fallback.
func (q *Query) Matches(e *Element) bool {
	if q == nil {
		return true
	}
	if !q.MatchesIDs(e) || !q.MatchesLabels(e) {
		return false
	}
	for _, p := range q.Preds {
		if !p.Matches(e) {
			return false
		}
	}
	return true
}

// Backend is the provider contract: the minimal graph structure API every
// store implements. All methods must be safe for concurrent use: the
// traversal engine issues overlapping calls both across queries and, under
// parallel execution (gremlin.WithParallelism), from several worker
// goroutines inside one query. graphtest.RunConcurrent exercises this
// guarantee under the race detector.
//
// Ordering contract: for a fixed store state, every method must return
// results in a deterministic order, and VertexEdges must keep each
// vertex's incident-edge sub-order independent of which other vertices are
// in the same call (the engine splits vertex batches into chunks and
// reassembles per-vertex groups, so a co-query-dependent sub-order would
// make results vary with the chunking).
//
// Every method takes a context.Context carrying the query's deadline and
// cancellation; implementations must return promptly (with an error wrapping
// ctx.Err()) once the context is done, checking it at entry and periodically
// inside long scans (see Interrupted and ScanTick).
type Backend interface {
	// Name identifies the provider ("db2graph", "gdbx", "janusgraph").
	Name() string

	// V returns the vertices matching q.
	V(ctx context.Context, q *Query) ([]*Element, error)
	// E returns the edges matching q.
	E(ctx context.Context, q *Query) ([]*Element, error)
	// VertexEdges returns the edges incident to the given vertex ids in the
	// given direction, filtered by q. Each matching edge appears at most
	// once, even when several of the given vertices touch it (the traversal
	// engine re-attributes edges to traversers itself).
	VertexEdges(ctx context.Context, vids []string, dir Direction, q *Query) ([]*Element, error)
	// EdgeVertices resolves, for each edge, the vertex at the given end
	// (DirOut = source vertex, DirIn = destination vertex), filtered by q.
	// For DirOut/DirIn the result MUST be aligned with edges: same length,
	// with nil entries where the vertex was filtered out by q. For DirBoth
	// the result is a flattened list of both endpoints.
	EdgeVertices(ctx context.Context, edges []*Element, dir Direction, q *Query) ([]*Element, error)

	// AggV computes an aggregate over the vertices matching q without
	// materializing them.
	AggV(ctx context.Context, q *Query, agg Agg) (types.Value, error)
	// AggE computes an aggregate over the edges matching q.
	AggE(ctx context.Context, q *Query, agg Agg) (types.Value, error)
	// AggVertexEdges computes an aggregate over the incident edges of the
	// given vertices.
	AggVertexEdges(ctx context.Context, vids []string, dir Direction, q *Query, agg Agg) (types.Value, error)
}

// Mutable is implemented by backends that support direct graph loading
// (the standalone-database baselines; the Db2 Graph overlay is loaded
// through SQL instead).
type Mutable interface {
	AddVertex(el *Element) error
	AddEdge(el *Element) error
}

// AggregateElements computes an aggregate over materialized elements; the
// generic fallback used by backends and by the traversal engine when a
// pushdown is unavailable.
func AggregateElements(els []*Element, agg Agg) (types.Value, error) {
	if agg.Kind == AggCount {
		return types.NewInt(int64(len(els))), nil
	}
	var (
		count int64
		sum   float64
		min   types.Value
		max   types.Value
		first = true
	)
	for _, e := range els {
		v, ok := e.Props[agg.Key]
		if !ok || v.IsNull() {
			continue
		}
		f, okf := v.Float()
		if !okf && (agg.Kind == AggSum || agg.Kind == AggMean) {
			return types.Null, fmt.Errorf("graph: cannot %s non-numeric property %q", agg.Kind, agg.Key)
		}
		count++
		sum += f
		if first || types.Compare(v, min) < 0 {
			min = v
		}
		if first || types.Compare(v, max) > 0 {
			max = v
		}
		first = false
	}
	switch agg.Kind {
	case AggSum:
		if count == 0 {
			return types.Null, nil
		}
		return types.NewFloat(sum), nil
	case AggMean:
		if count == 0 {
			return types.Null, nil
		}
		return types.NewFloat(sum / float64(count)), nil
	case AggMin:
		if count == 0 {
			return types.Null, nil
		}
		return min, nil
	case AggMax:
		if count == 0 {
			return types.Null, nil
		}
		return max, nil
	default:
		return types.Null, fmt.Errorf("graph: unsupported aggregate %v", agg.Kind)
	}
}

// AggregateValues computes an aggregate over scalar values (used by the
// traversal engine for values(...)-style streams).
func AggregateValues(vals []types.Value, kind AggKind) (types.Value, error) {
	if kind == AggCount {
		return types.NewInt(int64(len(vals))), nil
	}
	var (
		count int64
		sum   float64
		isInt = true
		intS  int64
		min   types.Value
		max   types.Value
		first = true
	)
	for _, v := range vals {
		if v.IsNull() {
			continue
		}
		f, ok := v.Float()
		if !ok && (kind == AggSum || kind == AggMean) {
			return types.Null, fmt.Errorf("graph: cannot %s non-numeric value", kind)
		}
		if v.Kind == types.KindInt {
			intS += v.I
		} else {
			isInt = false
		}
		count++
		sum += f
		if first || types.Compare(v, min) < 0 {
			min = v
		}
		if first || types.Compare(v, max) > 0 {
			max = v
		}
		first = false
	}
	switch kind {
	case AggSum:
		if count == 0 {
			return types.Null, nil
		}
		if isInt {
			return types.NewInt(intS), nil
		}
		return types.NewFloat(sum), nil
	case AggMean:
		if count == 0 {
			return types.Null, nil
		}
		return types.NewFloat(sum / float64(count)), nil
	case AggMin:
		if count == 0 {
			return types.Null, nil
		}
		return min, nil
	case AggMax:
		if count == 0 {
			return types.Null, nil
		}
		return max, nil
	default:
		return types.Null, fmt.Errorf("graph: unsupported aggregate %v", kind)
	}
}
