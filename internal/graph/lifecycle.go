// Query lifecycle support: typed budget errors and per-query resource
// limits. The traversal engine enforces Limits during execution and aborts
// with an error satisfying errors.Is(err, ErrBudgetExceeded) instead of
// letting a hostile or accidental query (unbounded repeat(), exponential
// frontier growth) exhaust process memory. Cancellation and deadlines travel
// separately, as a context.Context threaded through every Backend method.
package graph

import (
	"context"
	"errors"
	"fmt"
)

// ErrBudgetExceeded is the sentinel matched by errors.Is for every budget
// violation. The concrete error is always a *BudgetError naming the resource.
var ErrBudgetExceeded = errors.New("graph: query budget exceeded")

// BudgetError reports which resource of a query budget was exhausted.
type BudgetError struct {
	// Resource names the exhausted budget dimension ("traversers",
	// "repeat-iterations", "results").
	Resource string
	// Limit is the configured cap that was hit.
	Limit int
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("graph: query exceeded budget: more than %d %s", e.Limit, e.Resource)
}

// Is makes errors.Is(err, ErrBudgetExceeded) true for budget errors.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// Limits bounds the resources one query execution may consume. The zero
// value of a field selects its default; a negative value disables that
// bound.
type Limits struct {
	// MaxTraversers caps the live traverser frontier at any step boundary.
	MaxTraversers int
	// MaxRepeatIters caps the iteration count of any repeat() step,
	// including an explicit times(n) larger than the budget.
	MaxRepeatIters int
	// MaxResults caps the number of result objects a query may return.
	MaxResults int
}

// Default budget values, chosen to be far above any legitimate interactive
// query on the paper's workloads while still bounding memory.
const (
	DefaultMaxTraversers  = 1 << 20
	DefaultMaxRepeatIters = 4096
	DefaultMaxResults     = 1 << 20
)

// DefaultLimits returns the standard query budget.
func DefaultLimits() Limits {
	return Limits{
		MaxTraversers:  DefaultMaxTraversers,
		MaxRepeatIters: DefaultMaxRepeatIters,
		MaxResults:     DefaultMaxResults,
	}
}

// Normalized resolves zero fields to defaults and negative fields to
// "unbounded" (represented as 0 in the result, which enforcement treats as
// no limit).
func (l Limits) Normalized() Limits {
	norm := func(v, def int) int {
		switch {
		case v == 0:
			return def
		case v < 0:
			return 0
		default:
			return v
		}
	}
	return Limits{
		MaxTraversers:  norm(l.MaxTraversers, DefaultMaxTraversers),
		MaxRepeatIters: norm(l.MaxRepeatIters, DefaultMaxRepeatIters),
		MaxResults:     norm(l.MaxResults, DefaultMaxResults),
	}
}

// Interrupted returns a wrapped context error if ctx is done, nil otherwise.
// Backends call it at method entry and periodically inside long scans so
// cancellation and deadlines cut queries short instead of letting them run
// to completion. The wrap preserves errors.Is(err, context.DeadlineExceeded)
// and errors.Is(err, context.Canceled).
func Interrupted(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return fmt.Errorf("graph: query interrupted: %w", ctx.Err())
	default:
		return nil
	}
}

// scanCheckStride is how many loop iterations a backend scan may run
// between context checks; a power of two so the modulo folds to a mask.
const scanCheckStride = 4096

// ScanTick checks ctx every scanCheckStride calls. i is the loop iteration
// counter. It keeps per-element overhead to an increment and a mask on the
// fast path.
func ScanTick(ctx context.Context, i int) error {
	if i&(scanCheckStride-1) != 0 {
		return nil
	}
	return Interrupted(ctx)
}
