package graph

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"db2graph/internal/sql/types"
)

// MemBackend is a minimal in-memory reference implementation of Backend and
// Mutable. It exists for unit-testing the traversal engine independent of
// the real providers and as executable documentation of the provider
// contract. It applies Query filters but performs no storage-level
// optimization.
//
// Safe for concurrent use: an RWMutex lets readers overlap while AddVertex/
// AddEdge writers are exclusive. Insertion-order slices (vorder, eorder,
// per-vertex adjacency) make every read deterministic, and each vertex's
// adjacency sub-order is independent of the other vids in a VertexEdges
// call, as the Backend ordering contract requires.
type MemBackend struct {
	mu       sync.RWMutex
	vertices map[string]*Element
	vorder   []string
	edges    map[string]*Element
	eorder   []string
	out      map[string][]string // vertex id -> edge ids
	in       map[string][]string
	version  atomic.Uint64 // bumped after every committed mutation
}

// NewMemBackend returns an empty in-memory graph.
func NewMemBackend() *MemBackend {
	return &MemBackend{
		vertices: make(map[string]*Element),
		edges:    make(map[string]*Element),
		out:      make(map[string][]string),
		in:       make(map[string][]string),
	}
}

// Name implements Backend.
func (m *MemBackend) Name() string { return "mem" }

// AddVertex implements Mutable.
func (m *MemBackend) AddVertex(el *Element) error {
	if el.ID == "" {
		return fmt.Errorf("mem: vertex requires an id")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.vertices[el.ID]; dup {
		return fmt.Errorf("mem: duplicate vertex id %q", el.ID)
	}
	cp := *el
	cp.IsEdge = false
	m.vertices[el.ID] = &cp
	m.vorder = append(m.vorder, el.ID)
	m.version.Add(1)
	return nil
}

// AddEdge implements Mutable.
func (m *MemBackend) AddEdge(el *Element) error {
	if el.ID == "" || el.OutV == "" || el.InV == "" {
		return fmt.Errorf("mem: edge requires id, OutV, and InV")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.edges[el.ID]; dup {
		return fmt.Errorf("mem: duplicate edge id %q", el.ID)
	}
	if _, ok := m.vertices[el.OutV]; !ok {
		return fmt.Errorf("mem: edge %q references missing vertex %q", el.ID, el.OutV)
	}
	if _, ok := m.vertices[el.InV]; !ok {
		return fmt.Errorf("mem: edge %q references missing vertex %q", el.ID, el.InV)
	}
	cp := *el
	cp.IsEdge = true
	m.edges[el.ID] = &cp
	m.eorder = append(m.eorder, el.ID)
	m.out[el.OutV] = append(m.out[el.OutV], el.ID)
	m.in[el.InV] = append(m.in[el.InV], el.ID)
	m.version.Add(1)
	return nil
}

// DataVersion implements DataVersioned: it increments after every
// AddVertex/AddEdge, so version-tagged caches above the backend invalidate
// on mutation.
func (m *MemBackend) DataVersion() uint64 { return m.version.Load() }

// V implements Backend.
func (m *MemBackend) V(ctx context.Context, q *Query) ([]*Element, error) {
	if err := Interrupted(ctx); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Element
	appendIf := func(el *Element) bool {
		if el != nil && q.Matches(el) {
			out = append(out, el)
			if q != nil && q.Limit > 0 && len(out) >= q.Limit {
				return false
			}
		}
		return true
	}
	if q != nil && len(q.IDs) > 0 {
		for _, id := range q.IDs {
			if !appendIf(m.vertices[id]) {
				break
			}
		}
		return out, nil
	}
	for i, id := range m.vorder {
		if err := ScanTick(ctx, i); err != nil {
			return nil, err
		}
		if !appendIf(m.vertices[id]) {
			break
		}
	}
	return out, nil
}

// E implements Backend.
func (m *MemBackend) E(ctx context.Context, q *Query) ([]*Element, error) {
	if err := Interrupted(ctx); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Element
	appendIf := func(el *Element) bool {
		if el != nil && q.Matches(el) {
			out = append(out, el)
			if q != nil && q.Limit > 0 && len(out) >= q.Limit {
				return false
			}
		}
		return true
	}
	if q != nil && len(q.IDs) > 0 {
		for _, id := range q.IDs {
			if !appendIf(m.edges[id]) {
				break
			}
		}
		return out, nil
	}
	for i, id := range m.eorder {
		if err := ScanTick(ctx, i); err != nil {
			return nil, err
		}
		if !appendIf(m.edges[id]) {
			break
		}
	}
	return out, nil
}

// VertexEdges implements Backend. Each matching edge is returned once even
// if several of the given vertices touch it.
func (m *MemBackend) VertexEdges(ctx context.Context, vids []string, dir Direction, q *Query) ([]*Element, error) {
	if err := Interrupted(ctx); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Element
	seen := map[string]bool{}
	add := func(eids []string) bool {
		for _, eid := range eids {
			if seen[eid] {
				continue
			}
			el := m.edges[eid]
			if el != nil && q.Matches(el) {
				seen[eid] = true
				out = append(out, el)
				if q != nil && q.Limit > 0 && len(out) >= q.Limit {
					return false
				}
			}
		}
		return true
	}
	for i, vid := range vids {
		if err := ScanTick(ctx, i); err != nil {
			return nil, err
		}
		if dir == DirOut || dir == DirBoth {
			if !add(m.out[vid]) {
				return out, nil
			}
		}
		if dir == DirIn || dir == DirBoth {
			if !add(m.in[vid]) {
				return out, nil
			}
		}
	}
	return out, nil
}

// EdgeVertices implements Backend. For DirOut/DirIn the result is aligned
// with edges (nil where the vertex is filtered out); DirBoth flattens both
// endpoints.
func (m *MemBackend) EdgeVertices(ctx context.Context, edges []*Element, dir Direction, q *Query) ([]*Element, error) {
	if err := Interrupted(ctx); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if dir == DirBoth {
		var out []*Element
		for _, e := range edges {
			for _, id := range []string{e.OutV, e.InV} {
				v := m.vertices[id]
				if v != nil && q.Matches(v) {
					out = append(out, v)
				}
			}
		}
		return out, nil
	}
	out := make([]*Element, len(edges))
	for i, e := range edges {
		id := e.OutV
		if dir == DirIn {
			id = e.InV
		}
		v := m.vertices[id]
		if v != nil && q.Matches(v) {
			out[i] = v
		}
	}
	return out, nil
}

// VerticesByIDs implements BatchBackend natively: the whole batch resolves
// under one read lock with direct map lookups.
func (m *MemBackend) VerticesByIDs(ctx context.Context, ids []string, q *Query) ([]*Element, error) {
	if err := Interrupted(ctx); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Element, len(ids))
	for i, id := range ids {
		if el := m.vertices[id]; el != nil && q.MatchesFilter(el) {
			out[i] = el
		}
	}
	return out, nil
}

// EdgesForVertices implements BatchBackend natively: one read lock for the
// whole batch, per-vertex groups straight off the adjacency slices.
func (m *MemBackend) EdgesForVertices(ctx context.Context, vids []string, dir Direction, q *Query) ([][]*Element, error) {
	if err := Interrupted(ctx); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([][]*Element, len(vids))
	// One backing array serves every group: the per-vertex group is a capped
	// sub-slice, so a batch of n vertices costs two allocations instead of
	// one per vertex. An edge id can repeat within one vertex only across
	// directions (a self-loop sits in both the out and in lists), so the
	// dedup map is needed — and allocated — only for DirBoth, cleared and
	// reused per vertex.
	total := 0
	for _, vid := range vids {
		if dir == DirOut || dir == DirBoth {
			total += len(m.out[vid])
		}
		if dir == DirIn || dir == DirBoth {
			total += len(m.in[vid])
		}
	}
	backing := make([]*Element, 0, total)
	var seen map[string]bool
	for i, vid := range vids {
		if err := ScanTick(ctx, i); err != nil {
			return nil, err
		}
		start := len(backing)
		add := func(eids []string) bool {
			for _, eid := range eids {
				if seen != nil && seen[eid] {
					continue
				}
				el := m.edges[eid]
				if el != nil && q.Matches(el) {
					if seen != nil {
						seen[eid] = true
					}
					backing = append(backing, el)
					if q != nil && q.Limit > 0 && len(backing)-start >= q.Limit {
						return false
					}
				}
			}
			return true
		}
		if dir == DirBoth {
			if seen == nil {
				seen = map[string]bool{}
			} else {
				clear(seen)
			}
		}
		if dir == DirOut || dir == DirBoth {
			if !add(m.out[vid]) {
				out[i] = backing[start:len(backing):len(backing)]
				continue
			}
		}
		if dir == DirIn || dir == DirBoth {
			add(m.in[vid])
		}
		if len(backing) > start {
			out[i] = backing[start:len(backing):len(backing)]
		}
	}
	return out, nil
}

// AnalyzeStats implements Analyzer natively: one pass over the internal
// maps under a single read lock, without materializing query results.
func (m *MemBackend) AnalyzeStats(ctx context.Context) (*Stats, error) {
	if err := Interrupted(ctx); err != nil {
		return nil, err
	}
	st := &Stats{
		DataVersion:  m.DataVersion(),
		VertexLabels: map[string]int64{},
		EdgeLabels:   map[string]EdgeLabelStats{},
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	st.VertexCount = int64(len(m.vertices))
	for _, v := range m.vertices {
		st.VertexLabels[v.Label]++
	}
	st.EdgeCount = int64(len(m.edges))
	type labelDeg struct{ out, in map[string]int64 }
	perLabel := map[string]*labelDeg{}
	for i, id := range m.eorder {
		if err := ScanTick(ctx, i); err != nil {
			return nil, err
		}
		e := m.edges[id]
		ld := perLabel[e.Label]
		if ld == nil {
			ld = &labelDeg{out: map[string]int64{}, in: map[string]int64{}}
			perLabel[e.Label] = ld
		}
		ld.out[e.OutV]++
		ld.in[e.InV]++
	}
	for label, ld := range perLabel {
		es := EdgeLabelStats{OutVertices: int64(len(ld.out)), InVertices: int64(len(ld.in))}
		for _, d := range ld.out {
			es.Count += d
			if d > es.MaxOut {
				es.MaxOut = d
			}
		}
		for _, d := range ld.in {
			if d > es.MaxIn {
				es.MaxIn = d
			}
		}
		st.EdgeLabels[label] = es
	}
	for _, id := range m.vorder {
		st.OutDegreeHist.Add(int64(len(m.out[id])))
	}
	return st, nil
}

// AggV implements Backend via the generic fallback.
func (m *MemBackend) AggV(ctx context.Context, q *Query, agg Agg) (types.Value, error) {
	els, err := m.V(ctx, q)
	if err != nil {
		return types.Null, err
	}
	return AggregateElements(els, agg)
}

// AggE implements Backend via the generic fallback.
func (m *MemBackend) AggE(ctx context.Context, q *Query, agg Agg) (types.Value, error) {
	els, err := m.E(ctx, q)
	if err != nil {
		return types.Null, err
	}
	return AggregateElements(els, agg)
}

// AggVertexEdges implements Backend via the generic fallback.
func (m *MemBackend) AggVertexEdges(ctx context.Context, vids []string, dir Direction, q *Query, agg Agg) (types.Value, error) {
	els, err := m.VertexEdges(ctx, vids, dir, q)
	if err != nil {
		return types.Null, err
	}
	return AggregateElements(els, agg)
}

var (
	_ Backend       = (*MemBackend)(nil)
	_ Mutable       = (*MemBackend)(nil)
	_ BatchBackend  = (*MemBackend)(nil)
	_ DataVersioned = (*MemBackend)(nil)
	_ Analyzer      = (*MemBackend)(nil)
)
