package graph

import (
	"context"
	"testing"

	"db2graph/internal/sql/types"
)

func props(kv ...any) map[string]types.Value {
	out := make(map[string]types.Value)
	for i := 0; i+1 < len(kv); i += 2 {
		v, err := types.FromGo(kv[i+1])
		if err != nil {
			panic(err)
		}
		out[kv[i].(string)] = v
	}
	return out
}

func sampleGraph(t *testing.T) *MemBackend {
	t.Helper()
	m := NewMemBackend()
	vs := []*Element{
		{ID: "p1", Label: "patient", Props: props("name", "Alice", "age", 40)},
		{ID: "p2", Label: "patient", Props: props("name", "Bob", "age", 55)},
		{ID: "d1", Label: "disease", Props: props("conceptName", "diabetes")},
		{ID: "d2", Label: "disease", Props: props("conceptName", "type 2 diabetes")},
	}
	for _, v := range vs {
		if err := m.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	es := []*Element{
		{ID: "e1", Label: "hasDisease", OutV: "p1", InV: "d2", Props: props("since", 2018)},
		{ID: "e2", Label: "hasDisease", OutV: "p2", InV: "d1", Props: props("since", 2019)},
		{ID: "e3", Label: "isa", OutV: "d2", InV: "d1"},
	}
	for _, e := range es {
		if err := m.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestPredMatching(t *testing.T) {
	e := &Element{ID: "x", Label: "patient", Props: props("age", 40, "name", "Alice")}
	cases := []struct {
		p    Pred
		want bool
	}{
		{Pred{Key: "age", Op: OpEq, Value: types.NewInt(40)}, true},
		{Pred{Key: "age", Op: OpEq, Value: types.NewInt(41)}, false},
		{Pred{Key: "age", Op: OpNeq, Value: types.NewInt(41)}, true},
		{Pred{Key: "age", Op: OpLt, Value: types.NewInt(50)}, true},
		{Pred{Key: "age", Op: OpLte, Value: types.NewInt(40)}, true},
		{Pred{Key: "age", Op: OpGt, Value: types.NewInt(40)}, false},
		{Pred{Key: "age", Op: OpGte, Value: types.NewInt(40)}, true},
		{Pred{Key: "age", Op: OpWithin, Values: []types.Value{types.NewInt(1), types.NewInt(40)}}, true},
		{Pred{Key: "missing", Op: OpEq, Value: types.NewInt(1)}, false},
		{Pred{Key: KeyID, Op: OpEq, Value: types.NewString("x")}, true},
		{Pred{Key: KeyLabel, Op: OpEq, Value: types.NewString("patient")}, true},
		{Pred{Key: KeyLabel, Op: OpEq, Value: types.NewString("disease")}, false},
	}
	for i, c := range cases {
		if got := c.p.Matches(e); got != c.want {
			t.Errorf("case %d (%s %s): got %v", i, c.p.Key, c.p.Op, got)
		}
	}
}

func TestQueryMatches(t *testing.T) {
	e := &Element{ID: "p1", Label: "patient", Props: props("age", 40)}
	q := &Query{Labels: []string{"patient"}, Preds: []Pred{{Key: "age", Op: OpGte, Value: types.NewInt(30)}}}
	if !q.Matches(e) {
		t.Fatal("should match")
	}
	q.Labels = []string{"disease"}
	if q.Matches(e) {
		t.Fatal("label filter failed")
	}
	q2 := &Query{IDs: []string{"p2"}}
	if q2.Matches(e) {
		t.Fatal("id filter failed")
	}
	var nilQ *Query
	if !nilQ.Matches(e) {
		t.Fatal("nil query must match everything")
	}
}

func TestQueryClone(t *testing.T) {
	q := &Query{IDs: []string{"a"}, Labels: []string{"l"}, Projection: []string{"p"}}
	c := q.Clone()
	c.IDs[0] = "b"
	c.Labels = append(c.Labels, "m")
	if q.IDs[0] != "a" || len(q.Labels) != 1 {
		t.Fatal("Clone aliased memory")
	}
	if (*Query)(nil).Clone() == nil {
		t.Fatal("nil Clone should allocate")
	}
}

func TestMemVerticesAndEdges(t *testing.T) {
	m := sampleGraph(t)
	vs, err := m.V(context.Background(), &Query{})
	if err != nil || len(vs) != 4 {
		t.Fatalf("V() = %d, %v", len(vs), err)
	}
	vs, _ = m.V(context.Background(), &Query{Labels: []string{"patient"}})
	if len(vs) != 2 {
		t.Fatalf("V(patient) = %d", len(vs))
	}
	vs, _ = m.V(context.Background(), &Query{IDs: []string{"p1", "d1", "zzz"}})
	if len(vs) != 2 {
		t.Fatalf("V(ids) = %d", len(vs))
	}
	es, _ := m.E(context.Background(), &Query{Labels: []string{"isa"}})
	if len(es) != 1 || es[0].ID != "e3" {
		t.Fatalf("E(isa) = %v", es)
	}
	vs, _ = m.V(context.Background(), &Query{Limit: 2})
	if len(vs) != 2 {
		t.Fatalf("V(limit 2) = %d", len(vs))
	}
}

func TestMemAdjacency(t *testing.T) {
	m := sampleGraph(t)
	es, err := m.VertexEdges(context.Background(), []string{"p1"}, DirOut, &Query{})
	if err != nil || len(es) != 1 || es[0].ID != "e1" {
		t.Fatalf("outE(p1) = %v, %v", es, err)
	}
	es, _ = m.VertexEdges(context.Background(), []string{"d1"}, DirIn, &Query{})
	if len(es) != 2 {
		t.Fatalf("inE(d1) = %v", es)
	}
	es, _ = m.VertexEdges(context.Background(), []string{"d2"}, DirBoth, &Query{})
	if len(es) != 2 {
		t.Fatalf("bothE(d2) = %v", es)
	}
	es, _ = m.VertexEdges(context.Background(), []string{"p1", "p2"}, DirOut, &Query{Labels: []string{"hasDisease"}})
	if len(es) != 2 {
		t.Fatalf("outE(p1,p2,hasDisease) = %v", es)
	}
	// EdgeVertices resolves endpoints.
	vs, _ := m.EdgeVertices(context.Background(), es, DirIn, &Query{})
	if len(vs) != 2 {
		t.Fatalf("inV = %v", vs)
	}
	vs, _ = m.EdgeVertices(context.Background(), es[:1], DirOut, &Query{})
	if len(vs) != 1 || vs[0].ID != "p1" {
		t.Fatalf("outV = %v", vs)
	}
	vs, _ = m.EdgeVertices(context.Background(), es[:1], DirBoth, &Query{})
	if len(vs) != 2 {
		t.Fatalf("bothV = %v", vs)
	}
}

func TestMemValidation(t *testing.T) {
	m := NewMemBackend()
	if err := m.AddVertex(&Element{}); err == nil {
		t.Fatal("vertex without id accepted")
	}
	m.AddVertex(&Element{ID: "a"})
	if err := m.AddVertex(&Element{ID: "a"}); err == nil {
		t.Fatal("duplicate vertex accepted")
	}
	if err := m.AddEdge(&Element{ID: "e", OutV: "a", InV: "missing"}); err == nil {
		t.Fatal("dangling edge accepted")
	}
	m.AddVertex(&Element{ID: "b"})
	if err := m.AddEdge(&Element{ID: "e", OutV: "a", InV: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddEdge(&Element{ID: "e", OutV: "a", InV: "b"}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestAggregates(t *testing.T) {
	m := sampleGraph(t)
	v, err := m.AggV(context.Background(), &Query{Labels: []string{"patient"}}, Agg{Kind: AggCount})
	if err != nil || v.I != 2 {
		t.Fatalf("count = %v, %v", v, err)
	}
	v, _ = m.AggV(context.Background(), &Query{Labels: []string{"patient"}}, Agg{Kind: AggSum, Key: "age"})
	if v.F != 95 {
		t.Fatalf("sum = %v", v)
	}
	v, _ = m.AggV(context.Background(), &Query{Labels: []string{"patient"}}, Agg{Kind: AggMean, Key: "age"})
	if v.F != 47.5 {
		t.Fatalf("mean = %v", v)
	}
	v, _ = m.AggV(context.Background(), &Query{Labels: []string{"patient"}}, Agg{Kind: AggMin, Key: "age"})
	if v.I != 40 {
		t.Fatalf("min = %v", v)
	}
	v, _ = m.AggV(context.Background(), &Query{Labels: []string{"patient"}}, Agg{Kind: AggMax, Key: "age"})
	if v.I != 55 {
		t.Fatalf("max = %v", v)
	}
	v, _ = m.AggVertexEdges(context.Background(), []string{"p1"}, DirOut, &Query{}, Agg{Kind: AggCount})
	if v.I != 1 {
		t.Fatalf("edge count = %v", v)
	}
	v, _ = m.AggE(context.Background(), &Query{Labels: []string{"hasDisease"}}, Agg{Kind: AggMax, Key: "since"})
	if v.I != 2019 {
		t.Fatalf("edge max = %v", v)
	}
}

func TestAggregateValuesHelper(t *testing.T) {
	vals := []types.Value{types.NewInt(1), types.NewInt(2), types.Null, types.NewInt(3)}
	v, err := AggregateValues(vals, AggSum)
	if err != nil || v.I != 6 {
		t.Fatalf("sum = %v, %v", v, err)
	}
	v, _ = AggregateValues(vals, AggCount)
	if v.I != 4 {
		t.Fatalf("count = %v", v)
	}
	v, _ = AggregateValues(vals, AggMean)
	if v.F != 2 {
		t.Fatalf("mean = %v", v)
	}
	v, _ = AggregateValues(nil, AggMin)
	if !v.IsNull() {
		t.Fatalf("min of empty = %v", v)
	}
	if _, err := AggregateValues([]types.Value{types.NewString("x")}, AggSum); err == nil {
		t.Fatal("sum of string should fail")
	}
}

func TestElementHelpers(t *testing.T) {
	e := &Element{ID: "e1", Label: "isa", IsEdge: true, OutV: "a", InV: "b", Props: props("z", 1, "a", 2)}
	names := e.PropertyNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Fatalf("names = %v", names)
	}
	if v, ok := e.Property("z"); !ok || v.I != 1 {
		t.Fatalf("Property = %v, %v", v, ok)
	}
	if _, ok := e.Property("nope"); ok {
		t.Fatal("missing property reported present")
	}
	if e.String() != "e[e1][a-isa->b]" {
		t.Fatalf("String = %s", e.String())
	}
	v := &Element{ID: "v1", Label: "x"}
	if v.String() != "v[v1][x]" {
		t.Fatalf("String = %s", v.String())
	}
	if (*Element)(nil).String() != "<nil>" {
		t.Fatal("nil String")
	}
}

func TestDirectionHelpers(t *testing.T) {
	if DirOut.Reverse() != DirIn || DirIn.Reverse() != DirOut || DirBoth.Reverse() != DirBoth {
		t.Fatal("Reverse wrong")
	}
	if DirOut.String() != "out" || DirIn.String() != "in" || DirBoth.String() != "both" {
		t.Fatal("String wrong")
	}
}
