package graph

import "context"

// BatchBackend is the vectorized extension of Backend: set-oriented
// multi-get lookups that resolve many vertices or many adjacency lists in
// one call. The gremlin engine collects a chunk of traversers and issues one
// batched lookup per chunk; backends translate it into one native batch
// access (one SQL IN-list on the sql/overlay path, one sorted multi-get on
// the kvstore/janus path) instead of a tuple-at-a-time loop.
//
// Backends that do not implement it natively are adapted with Batched,
// whose fallback is conformance-proven equivalent
// (graphtest.RunBatchConformance).
type BatchBackend interface {
	Backend

	// VerticesByIDs resolves vertices by id, aligned with ids: out[i] is
	// the vertex for ids[i], or nil when it does not exist or fails q's
	// label/predicate filter. ids replaces any q.IDs, and q.Limit is
	// ignored (alignment makes a count cap ambiguous); q's labels,
	// predicates, and projection apply.
	VerticesByIDs(ctx context.Context, ids []string, q *Query) ([]*Element, error)

	// EdgesForVertices returns per-vertex incident-edge groups aligned
	// with vids: out[i] holds exactly what VertexEdges(ctx, []string{vids[i]},
	// dir, q) would return, in the same order. Unlike one flat VertexEdges
	// call over all vids, q.Limit applies per vertex and (for DirBoth) an
	// edge touching two of the given vertices appears in both groups.
	EdgesForVertices(ctx context.Context, vids []string, dir Direction, q *Query) ([][]*Element, error)
}

// Batched returns b's native BatchBackend implementation when it has one,
// and otherwise wraps it in the generic fallback adapter.
func Batched(b Backend) BatchBackend {
	if bb, ok := b.(BatchBackend); ok {
		return bb
	}
	return FallbackBatch(b)
}

// FallbackBatch adapts any Backend to BatchBackend using only the base
// contract. It always wraps, even when b implements BatchBackend natively —
// the conformance suite compares a native implementation against exactly
// this adapter.
func FallbackBatch(b Backend) BatchBackend { return &fallbackBatch{b} }

type fallbackBatch struct {
	Backend
}

func (f *fallbackBatch) VerticesByIDs(ctx context.Context, ids []string, q *Query) ([]*Element, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	fq := q.Clone()
	fq.IDs = uniqueStrings(ids)
	fq.Limit = 0
	els, err := f.Backend.V(ctx, fq)
	if err != nil {
		return nil, err
	}
	byID := make(map[string]*Element, len(els))
	for _, e := range els {
		byID[e.ID] = e
	}
	out := make([]*Element, len(ids))
	for i, id := range ids {
		out[i] = byID[id]
	}
	return out, nil
}

func (f *fallbackBatch) EdgesForVertices(ctx context.Context, vids []string, dir Direction, q *Query) ([][]*Element, error) {
	if len(vids) == 0 {
		return nil, nil
	}
	// For DirOut/DirIn without a limit, one flat VertexEdges call over the
	// whole batch partitions exactly into per-vertex groups (each edge has
	// one source and one destination), so the adapter stays set-oriented.
	// DirBoth (cross-vertex dedup differs) and Limit (applies per vertex
	// here, across the set there) need the per-vertex definition instead.
	if dir != DirBoth && (q == nil || q.Limit == 0) {
		flat, err := f.Backend.VertexEdges(ctx, vids, dir, q)
		if err != nil {
			return nil, err
		}
		return GroupEdgesByVertex(vids, dir, flat), nil
	}
	out := make([][]*Element, len(vids))
	one := make([]string, 1)
	for i, vid := range vids {
		one[0] = vid
		els, err := f.Backend.VertexEdges(ctx, one, dir, q)
		if err != nil {
			return nil, err
		}
		out[i] = els
	}
	return out, nil
}

// GroupEdgesByVertex partitions a flat VertexEdges result into per-vertex
// groups aligned with vids, preserving each vertex's sub-order. It is only
// exact for DirOut/DirIn (an edge belongs to exactly one group through its
// out- or in-vertex); backends use it to derive EdgesForVertices from an
// internally batched flat fetch.
func GroupEdgesByVertex(vids []string, dir Direction, edges []*Element) [][]*Element {
	slot := make(map[string]int, len(vids))
	for i, vid := range vids {
		if _, dup := slot[vid]; !dup {
			slot[vid] = i
		}
	}
	out := make([][]*Element, len(vids))
	for _, e := range edges {
		end := e.OutV
		if dir == DirIn {
			end = e.InV
		}
		if i, ok := slot[end]; ok {
			out[i] = append(out[i], e)
		}
	}
	// A vid listed twice gets its group in the first slot only; copy it to
	// the duplicates so alignment holds for every position.
	for i, vid := range vids {
		if j := slot[vid]; j != i {
			out[i] = out[j]
		}
	}
	return out
}

// MatchesFilter evaluates q's label and predicate filters against e,
// deliberately excluding the ID filter and Limit — the evaluation
// VerticesByIDs applies (ids replaces q.IDs; alignment excludes a count
// cap). Nil queries match everything.
func (q *Query) MatchesFilter(e *Element) bool {
	if q == nil {
		return true
	}
	if !q.MatchesLabels(e) {
		return false
	}
	for _, p := range q.Preds {
		if !p.Matches(e) {
			return false
		}
	}
	return true
}

func uniqueStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

var _ BatchBackend = (*fallbackBatch)(nil)
