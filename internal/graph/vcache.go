package graph

import (
	"sync"
	"sync/atomic"
)

// DefaultVersionedCacheEntries bounds a VersionedCache when no capacity is
// given. The bound is entry-count based: cached values are small decoded
// objects and the point is to skip the fetch/decode, not to manage memory
// precisely.
const DefaultVersionedCacheEntries = 8192

// VersionedCache is a version-tagged read cache implementing the
// DataVersioned freshness protocol: fillers read the backend's data version
// BEFORE the underlying data read and store it as the entry's tag; an entry
// is served only while its tag equals the current version. Mutators bump
// the version AFTER their effects are visible, so an entry filled from
// pre-mutation state can never be served post-mutation — reads are always
// read-your-writes fresh, at the price of whole-cache invalidation per
// mutation (over-invalidation is the safe direction).
//
// Eviction is generational: when the map reaches capacity it is dropped
// wholesale. That keeps the write path to one short critical section and
// fits a decode cache, where refills are cheap point reads.
type VersionedCache[T any] struct {
	cap int

	mu      sync.RWMutex
	entries map[string]versionedEntry[T]

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

type versionedEntry[T any] struct {
	version uint64
	value   T
}

// NewVersionedCache creates a cache bounded to capacity entries (<=0 uses
// DefaultVersionedCacheEntries).
func NewVersionedCache[T any](capacity int) *VersionedCache[T] {
	if capacity <= 0 {
		capacity = DefaultVersionedCacheEntries
	}
	return &VersionedCache[T]{cap: capacity, entries: make(map[string]versionedEntry[T])}
}

// Get returns the cached value for key if it is tagged with version.
func (c *VersionedCache[T]) Get(key string, version uint64) (T, bool) {
	c.mu.RLock()
	e, ok := c.entries[key]
	c.mu.RUnlock()
	if ok && e.version == version {
		c.hits.Add(1)
		return e.value, true
	}
	if ok {
		c.invalidations.Add(1)
	}
	c.misses.Add(1)
	var zero T
	return zero, false
}

// Put stores value under key tagged with version (the version read before
// the underlying data access — see DataVersioned for the protocol).
func (c *VersionedCache[T]) Put(key string, version uint64, value T) {
	c.mu.Lock()
	if len(c.entries) >= c.cap {
		c.evictions.Add(int64(len(c.entries)))
		c.entries = make(map[string]versionedEntry[T], c.cap)
	}
	c.entries[key] = versionedEntry[T]{version: version, value: value}
	c.mu.Unlock()
}

// Flush drops every entry.
func (c *VersionedCache[T]) Flush() {
	c.mu.Lock()
	n := len(c.entries)
	c.entries = make(map[string]versionedEntry[T])
	c.mu.Unlock()
	c.invalidations.Add(int64(n))
}

// Stats snapshots the cache counters.
func (c *VersionedCache[T]) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.entries)
	c.mu.RUnlock()
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       int64(n),
	}
}
