package graphtest_test

import (
	"testing"

	"db2graph/internal/graph"
	"db2graph/internal/graph/graphtest"
)

// buildMem loads the dataset into the reference in-memory backend.
func buildMem(vs, es []*graph.Element) (graph.Backend, error) {
	m := graph.NewMemBackend()
	for _, v := range vs {
		if err := m.AddVertex(v); err != nil {
			return nil, err
		}
	}
	for _, e := range es {
		if err := m.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func TestMemFaultInjection(t *testing.T) {
	graphtest.RunFaults(t, buildMem)
}
