package graphtest_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"db2graph/internal/graph"
	"db2graph/internal/graph/graphtest"
	"db2graph/internal/telemetry"
)

// buildMem loads the dataset into the reference in-memory backend.
func buildMem(vs, es []*graph.Element) (graph.Backend, error) {
	m := graph.NewMemBackend()
	for _, v := range vs {
		if err := m.AddVertex(v); err != nil {
			return nil, err
		}
	}
	for _, e := range es {
		if err := m.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func TestMemFaultInjection(t *testing.T) {
	graphtest.RunFaults(t, buildMem)
}

// TestFaultDelayCancellation is the regression test for context-aware
// latency injection: canceling the query mid-delay must return promptly with
// the context error — the injected sleep may never outlive the query.
func TestFaultDelayCancellation(t *testing.T) {
	vs, es := graphtest.Dataset()
	inner, err := buildMem(vs, es)
	if err != nil {
		t.Fatal(err)
	}
	fb := graphtest.WrapFaults(inner, 1)
	fb.Inject("V", graphtest.FaultPoint{Delay: 10 * time.Second})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = fb.V(ctx, &graph.Query{})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected an error from a canceled delayed call")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed >= time.Second {
		t.Fatalf("delayed call outlived cancellation: took %v", elapsed)
	}

	// An already-canceled context short-circuits before any timer is armed.
	start = time.Now()
	_, err = fb.V(ctx, &graph.Query{})
	if !errors.Is(err, context.Canceled) || time.Since(start) >= time.Second {
		t.Fatalf("pre-canceled call: err=%v after %v", err, time.Since(start))
	}
}

// buildInstrumentedMem wraps the reference backend in the telemetry
// decorator so the wrapper itself is proven against the conformance and
// fault suites.
func buildInstrumentedMem(vs, es []*graph.Element) (graph.Backend, error) {
	b, err := buildMem(vs, es)
	if err != nil {
		return nil, err
	}
	return graph.Instrument(b, telemetry.NewRegistry()), nil
}

func TestInstrumentedBackendConformance(t *testing.T) {
	graphtest.Run(t, buildInstrumentedMem)
}

func TestInstrumentedBackendFaults(t *testing.T) {
	graphtest.RunFaults(t, buildInstrumentedMem)
}

// TestInstrumentedBackendMetrics checks that the decorator actually counts
// calls, rows, errors, and records span operations.
func TestInstrumentedBackendMetrics(t *testing.T) {
	vs, es := graphtest.Dataset()
	inner, err := buildMem(vs, es)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ib := graph.Instrument(inner, reg)

	span := telemetry.NewSpan()
	ctx := telemetry.WithSpan(context.Background(), span)
	els, err := ib.V(ctx, &graph.Query{Labels: []string{"patient"}})
	if err != nil || len(els) != 3 {
		t.Fatalf("V = %d elements, err %v", len(els), err)
	}
	if _, err := ib.VertexEdges(ctx, []string{"p1"}, graph.DirOut, &graph.Query{}); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter(`graph_backend_calls_total{backend="mem",method="V"}`).Value(); got != 1 {
		t.Fatalf("V call counter = %d, want 1", got)
	}
	if got := reg.Counter(`graph_backend_rows_total{backend="mem",method="V"}`).Value(); got != 3 {
		t.Fatalf("V rows counter = %d, want 3", got)
	}
	if got := reg.Histogram(`graph_backend_seconds{backend="mem",method="V"}`).Count(); got != 1 {
		t.Fatalf("V latency observations = %d, want 1", got)
	}
	ops := span.Ops()
	if len(ops) != 2 {
		t.Fatalf("span ops = %+v, want 2 entries", ops)
	}
	if ops[0].Name != "backend.V" || ops[0].Items != 3 {
		t.Fatalf("span op[0] = %+v, want backend.V with 3 items", ops[0])
	}

	// Errors from the inner backend increment the error counter.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	fb := graphtest.WrapFaults(inner, 1)
	fb.Inject("E", graphtest.FaultPoint{Err: graphtest.ErrInjected})
	ibf := graph.Instrument(fb, reg)
	if _, err := ibf.E(canceled, &graph.Query{}); err == nil {
		t.Fatal("expected injected error")
	}
	if got := reg.Counter(`graph_backend_errors_total{backend="faulty(mem)",method="E"}`).Value(); got != 1 {
		t.Fatalf("E error counter = %d, want 1", got)
	}
}
