// Concurrency conformance for graph.Backend implementations. RunConcurrent
// hammers one backend instance with overlapping reads from many goroutines
// — raw structure-API calls and Gremlin traversals running with engine
// parallelism — and checks every result against a serial golden pass. Run
// it under -race: its job is to prove the backend's documented
// concurrent-use guarantee and the deterministic-ordering contract that
// parallel traversal execution depends on (see graph.Backend). A second
// phase layers FaultBackend on top so probabilistic error and delay
// injection is itself exercised concurrently.
package graphtest

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"db2graph/internal/graph"
	"db2graph/internal/gremlin"
)

const (
	concGoroutines = 8
	concRounds     = 20
)

// renderElements serializes an element list, order included, so two reads
// can be compared exactly. nil entries (filtered EdgeVertices slots) render
// as "-".
func renderElements(els []*graph.Element) string {
	parts := make([]string, len(els))
	for i, el := range els {
		if el == nil {
			parts[i] = "-"
			continue
		}
		parts[i] = el.String()
	}
	return strings.Join(parts, ",")
}

// renderObjs serializes traversal results.
func renderObjs(objs []any) string {
	parts := make([]string, len(objs))
	for i, o := range objs {
		parts[i] = gremlin.Display(o)
	}
	return strings.Join(parts, ",")
}

// RunConcurrent executes the concurrency conformance suite against a
// backend built by build.
func RunConcurrent(t *testing.T, build func(vertices, edges []*graph.Element) (graph.Backend, error)) {
	t.Helper()
	ctx := context.Background()
	vs, es := Dataset()
	b, err := build(vs, es)
	if err != nil {
		t.Fatalf("build backend: %v", err)
	}
	allEdges, err := b.E(ctx, &graph.Query{})
	if err != nil {
		t.Fatalf("E: %v", err)
	}
	src := gremlin.NewSource(b).WithParallelism(4)

	probes := []struct {
		name string
		run  func() (string, error)
	}{
		{"V", func() (string, error) {
			els, err := b.V(ctx, &graph.Query{})
			return renderElements(els), err
		}},
		{"E", func() (string, error) {
			els, err := b.E(ctx, &graph.Query{})
			return renderElements(els), err
		}},
		{"VertexEdges-out", func() (string, error) {
			els, err := b.VertexEdges(ctx, []string{"p1", "p2", "p3"}, graph.DirOut, &graph.Query{})
			return renderElements(els), err
		}},
		{"VertexEdges-both", func() (string, error) {
			els, err := b.VertexEdges(ctx, []string{"d10", "d11"}, graph.DirBoth, &graph.Query{})
			return renderElements(els), err
		}},
		{"EdgeVertices-out", func() (string, error) {
			els, err := b.EdgeVertices(ctx, allEdges, graph.DirOut, &graph.Query{})
			return renderElements(els), err
		}},
		{"AggV-count", func() (string, error) {
			v, err := b.AggV(ctx, &graph.Query{}, graph.Agg{Kind: graph.AggCount})
			return v.Text(), err
		}},
		{"AggVertexEdges-count", func() (string, error) {
			v, err := b.AggVertexEdges(ctx, []string{"p1", "p2", "p3"}, graph.DirOut,
				&graph.Query{}, graph.Agg{Kind: graph.AggCount})
			return v.Text(), err
		}},
		{"gremlin-out", func() (string, error) {
			objs, err := src.V().Out().ToList()
			return renderObjs(objs), err
		}},
		{"gremlin-both-dedup", func() (string, error) {
			objs, err := src.V().Both().Dedup().ToList()
			return renderObjs(objs), err
		}},
		{"gremlin-where", func() (string, error) {
			objs, err := src.V().Where(gremlin.Anon().Out("isa")).ToList()
			return renderObjs(objs), err
		}},
		{"gremlin-2hop-count", func() (string, error) {
			objs, err := src.V().Out().Out().Count().ToList()
			return renderObjs(objs), err
		}},
	}

	// Serial golden pass: with a fixed store, every later read must match.
	want := make([]string, len(probes))
	for i, p := range probes {
		got, err := p.run()
		if err != nil {
			t.Fatalf("%s (serial): %v", p.name, err)
		}
		want[i] = got
	}

	errc := make(chan error, concGoroutines)
	var wg sync.WaitGroup
	for g := 0; g < concGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < concRounds; r++ {
				for i, p := range probes {
					got, err := p.run()
					if err != nil {
						errc <- fmt.Errorf("goroutine %d round %d %s: %w", g, r, p.name, err)
						return
					}
					if got != want[i] {
						errc <- fmt.Errorf("goroutine %d round %d %s: diverged\n got: %s\nwant: %s",
							g, r, p.name, got, want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Phase 2: overlapping queries through a FaultBackend with probabilistic
	// error and delay injection. Every query must either succeed with the
	// golden result or fail with exactly the injected error.
	fb := WrapFaults(b, 11)
	fb.Inject("VertexEdges", FaultPoint{Err: ErrInjected, Prob: 0.3, Delay: 100 * time.Microsecond})
	fsrc := gremlin.NewSource(fb).WithParallelism(4)
	var goldenOut string
	for i, p := range probes {
		if p.name == "gremlin-out" {
			goldenOut = want[i]
		}
	}
	for g := 0; g < concGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < concRounds; r++ {
				objs, err := fsrc.V().Out().ToList()
				if err != nil {
					if !errors.Is(err, ErrInjected) {
						t.Errorf("goroutine %d round %d: unexpected error %v", g, r, err)
						return
					}
					continue
				}
				if got := renderObjs(objs); got != goldenOut {
					t.Errorf("goroutine %d round %d: faulty run diverged\n got: %s\nwant: %s",
						g, r, got, goldenOut)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
