// Package graphtest provides a conformance suite for graph.Backend
// implementations: the same property graph is loaded into a backend and a
// battery of structure-API and Gremlin-level checks is run. All three
// providers (db2graph via overlay, gdbx, janusgraph) and the reference
// memory backend must pass it identically.
package graphtest

import (
	"context"
	"sort"
	"testing"

	"db2graph/internal/graph"
	"db2graph/internal/gremlin"
	"db2graph/internal/sql/types"
	"db2graph/internal/telemetry"
)

// Dataset returns the canonical test graph: the paper's Figure 2(b) with a
// deeper ontology.
func Dataset() (vertices, edges []*graph.Element) {
	p := func(kv ...any) map[string]types.Value {
		out := map[string]types.Value{}
		for i := 0; i+1 < len(kv); i += 2 {
			v, _ := types.FromGo(kv[i+1])
			out[kv[i].(string)] = v
		}
		return out
	}
	vertices = []*graph.Element{
		{ID: "p1", Label: "patient", Props: p("patientID", 1, "name", "Alice", "subscriptionID", 100)},
		{ID: "p2", Label: "patient", Props: p("patientID", 2, "name", "Bob", "subscriptionID", 200)},
		{ID: "p3", Label: "patient", Props: p("patientID", 3, "name", "Carol", "subscriptionID", 300)},
		{ID: "d9", Label: "disease", Props: p("conceptName", "metabolic disease")},
		{ID: "d10", Label: "disease", Props: p("conceptName", "diabetes")},
		{ID: "d11", Label: "disease", Props: p("conceptName", "type 2 diabetes")},
		{ID: "d12", Label: "disease", Props: p("conceptName", "hypertension")},
		{ID: "d13", Label: "disease", Props: p("conceptName", "mody diabetes")},
	}
	edges = []*graph.Element{
		{ID: "e1", Label: "hasDisease", OutV: "p1", InV: "d11", Props: p("description", "2018"), IsEdge: true},
		{ID: "e2", Label: "hasDisease", OutV: "p2", InV: "d10", Props: p("description", "2019"), IsEdge: true},
		{ID: "e3", Label: "hasDisease", OutV: "p3", InV: "d12", Props: p("description", "2020"), IsEdge: true},
		{ID: "e4", Label: "isa", OutV: "d11", InV: "d10", IsEdge: true},
		{ID: "e5", Label: "isa", OutV: "d13", InV: "d11", IsEdge: true},
		{ID: "e6", Label: "isa", OutV: "d10", InV: "d9", IsEdge: true},
	}
	return vertices, edges
}

// Run executes the conformance suite against a backend built by build.
func Run(t *testing.T, build func(vertices, edges []*graph.Element) (graph.Backend, error)) {
	ctx := context.Background()
	t.Helper()
	vs, es := Dataset()
	b, err := build(vs, es)
	if err != nil {
		t.Fatalf("build backend: %v", err)
	}
	src := gremlin.NewSource(b)

	ids := func(els []*graph.Element) []string {
		var out []string
		for _, e := range els {
			if e != nil {
				out = append(out, e.ID)
			}
		}
		sort.Strings(out)
		return out
	}
	expect := func(name string, got []string, want ...string) {
		t.Helper()
		sort.Strings(want)
		if len(got) != len(want) {
			t.Fatalf("%s: got %v, want %v", name, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: got %v, want %v", name, got, want)
			}
		}
	}

	// --- structure API ---
	els, err := b.V(ctx, &graph.Query{})
	if err != nil {
		t.Fatal(err)
	}
	expect("V()", ids(els), "p1", "p2", "p3", "d9", "d10", "d11", "d12", "d13")

	els, _ = b.V(ctx, &graph.Query{Labels: []string{"patient"}})
	expect("V(label)", ids(els), "p1", "p2", "p3")

	els, _ = b.V(ctx, &graph.Query{IDs: []string{"p2", "d10", "zzz"}})
	expect("V(ids)", ids(els), "p2", "d10")

	els, _ = b.V(ctx, &graph.Query{Preds: []graph.Pred{{Key: "name", Op: graph.OpEq, Value: types.NewString("Bob")}}})
	expect("V(pred)", ids(els), "p2")

	els, _ = b.E(ctx, &graph.Query{Labels: []string{"isa"}})
	expect("E(label)", ids(els), "e4", "e5", "e6")

	els, _ = b.E(ctx, &graph.Query{IDs: []string{"e1", "e6"}})
	expect("E(ids)", ids(els), "e1", "e6")

	els, _ = b.VertexEdges(ctx, []string{"p1"}, graph.DirOut, &graph.Query{})
	expect("outE(p1)", ids(els), "e1")
	if len(els) != 1 || els[0].OutV != "p1" || els[0].InV != "d11" {
		t.Fatalf("edge endpoints wrong: %+v", els)
	}

	els, _ = b.VertexEdges(ctx, []string{"d10"}, graph.DirIn, &graph.Query{})
	expect("inE(d10)", ids(els), "e2", "e4")

	els, _ = b.VertexEdges(ctx, []string{"d11"}, graph.DirBoth, &graph.Query{})
	expect("bothE(d11)", ids(els), "e1", "e4", "e5")

	els, _ = b.VertexEdges(ctx, []string{"p1", "p2"}, graph.DirOut, &graph.Query{Labels: []string{"hasDisease"}})
	expect("outE(p1,p2)", ids(els), "e1", "e2")

	// Aligned EdgeVertices.
	edges2, _ := b.VertexEdges(ctx, []string{"p1", "p2"}, graph.DirOut, &graph.Query{})
	sort.Slice(edges2, func(i, j int) bool { return edges2[i].ID < edges2[j].ID })
	verts, err := b.EdgeVertices(ctx, edges2, graph.DirIn, &graph.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(verts) != len(edges2) {
		t.Fatalf("EdgeVertices not aligned: %d vs %d", len(verts), len(edges2))
	}
	if verts[0] == nil || verts[0].ID != "d11" || verts[1] == nil || verts[1].ID != "d10" {
		t.Fatalf("EdgeVertices = %v", ids(verts))
	}
	// Filtered endpoints come back nil in aligned mode.
	verts, _ = b.EdgeVertices(ctx, edges2, graph.DirIn, &graph.Query{Labels: []string{"nope"}})
	for i, v := range verts {
		if v != nil {
			t.Fatalf("filtered endpoint %d not nil: %v", i, v)
		}
	}

	// --- aggregates ---
	v, err := b.AggV(ctx, &graph.Query{Labels: []string{"patient"}}, graph.Agg{Kind: graph.AggCount})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.Int(); n != 3 {
		t.Fatalf("AggV count = %v", v)
	}
	v, _ = b.AggE(ctx, &graph.Query{}, graph.Agg{Kind: graph.AggCount})
	if n, _ := v.Int(); n != 6 {
		t.Fatalf("AggE count = %v", v)
	}
	v, _ = b.AggVertexEdges(ctx, []string{"p1", "p2"}, graph.DirOut, &graph.Query{}, graph.Agg{Kind: graph.AggCount})
	if n, _ := v.Int(); n != 2 {
		t.Fatalf("AggVertexEdges count = %v", v)
	}
	v, _ = b.AggV(ctx, &graph.Query{Labels: []string{"patient"}}, graph.Agg{Kind: graph.AggSum, Key: "subscriptionID"})
	if f, _ := v.Float(); f != 600 {
		t.Fatalf("AggV sum = %v", v)
	}

	// --- Gremlin level ---
	gids := func(name string, tr *gremlin.Traversal, want ...string) {
		t.Helper()
		objs, err := tr.ToList()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var got []string
		for _, o := range objs {
			switch x := o.(type) {
			case *graph.Element:
				got = append(got, x.ID)
			case types.Value:
				got = append(got, x.Text())
			}
		}
		sort.Strings(got)
		expect(name, got, want...)
	}
	gids("g.V(p1).out", src.V("p1").Out("hasDisease"), "d11")
	gids("g.V(d10).in", src.V("d10").In(), "d11", "p2")
	gids("2-hop", src.V("p1").Out("hasDisease").Out("isa"), "d10")
	gids("getLink", src.V("p1").OutE("hasDisease").Where(gremlin.Anon().InV().HasID("d11")), "e1")

	n, err := src.V("p1").OutE("hasDisease").Count().Next()
	if err != nil {
		t.Fatal(err)
	}
	if n.(types.Value).I != 1 {
		t.Fatalf("countLinks = %v", n)
	}

	// Paper's similar-diseases pipeline.
	res, err := gremlin.RunScript(src, `
		sim = g.V('p1').out('hasDisease')
		  .repeat(out('isa').dedup().store('x')).times(2)
		  .repeat(in('isa').dedup().store('x')).times(2).cap('x').next();
		g.V(sim).in('hasDisease').dedup().values('patientID')`, nil)
	if err != nil {
		t.Fatal(err)
	}
	var pids []int64
	for _, o := range res {
		pids = append(pids, o.(types.Value).I)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	if len(pids) != 2 || pids[0] != 1 || pids[1] != 2 {
		t.Fatalf("similar patients = %v", pids)
	}

	// --- profile() (fluent and script) ---
	obj, err := src.V().HasLabel("patient").Out("hasDisease").Profile().Next()
	if err != nil {
		t.Fatalf("profile(): %v", err)
	}
	prof, ok := obj.(*telemetry.Profile)
	if !ok {
		t.Fatalf("profile() returned %T, want *telemetry.Profile", obj)
	}
	if len(prof.Steps) == 0 {
		t.Fatalf("profile() reported no steps")
	}
	for _, s := range prof.Steps {
		if s.Calls < 1 {
			t.Fatalf("profile() step %s has %d calls", s.Name, s.Calls)
		}
	}
	// Each of the three patients has exactly one disease, whatever shape the
	// strategies rewrote the plan into.
	if out := prof.Steps[len(prof.Steps)-1].Out; out != 3 {
		t.Fatalf("profile() final step emitted %d traversers, want 3\n%s", out, prof)
	}

	res, err = gremlin.RunScript(src, "g.V('p1').out('hasDisease').profile()", nil)
	if err != nil {
		t.Fatalf("script profile(): %v", err)
	}
	if len(res) != 1 {
		t.Fatalf("script profile() returned %d results, want 1", len(res))
	}
	prof, ok = res[0].(*telemetry.Profile)
	if !ok {
		t.Fatalf("script profile() returned %T, want *telemetry.Profile", res[0])
	}
	if len(prof.Steps) == 0 || prof.Steps[len(prof.Steps)-1].Out != 1 {
		t.Fatalf("script profile() report wrong:\n%s", prof)
	}
}
