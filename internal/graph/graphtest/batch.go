// Batch conformance for graph.BatchBackend implementations. A backend's
// native vectorized multi-gets (VerticesByIDs, EdgesForVertices) must be
// observationally identical — same elements, same order, same nil slots —
// to the generic fallback adapter built from the base Backend contract,
// across directions, filters, duplicates, missing ids, and per-vertex
// limits. The gremlin engine swaps freely between the two, so any
// divergence here is a silent wrong-result bug in batched expansion.
package graphtest

import (
	"context"
	"sort"
	"strings"
	"testing"

	"db2graph/internal/graph"
	"db2graph/internal/sql/types"
)

// renderFull serializes elements including properties (Element.String shows
// only id/label), so projection and predicate handling differences surface.
func renderFull(els []*graph.Element) string {
	parts := make([]string, len(els))
	for i, el := range els {
		if el == nil {
			parts[i] = "-"
			continue
		}
		keys := make([]string, 0, len(el.Props))
		for k := range el.Props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		props := make([]string, len(keys))
		for j, k := range keys {
			props[j] = k + "=" + el.Props[k].Text()
		}
		parts[i] = el.String() + "{" + strings.Join(props, ";") + "}"
	}
	return strings.Join(parts, ",")
}

// renderGroups serializes a per-vertex edge grouping, order included.
func renderGroups(groups [][]*graph.Element) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		parts[i] = renderFull(g)
	}
	return strings.Join(parts, " | ")
}

// RunBatchConformance checks a backend's batched lookups against the
// fallback adapter over the canonical dataset.
func RunBatchConformance(t *testing.T, build func(vertices, edges []*graph.Element) (graph.Backend, error)) {
	t.Helper()
	ctx := context.Background()
	vs, es := Dataset()
	b, err := build(vs, es)
	if err != nil {
		t.Fatalf("build backend: %v", err)
	}
	native := graph.Batched(b)
	fallback := graph.FallbackBatch(b)
	if _, isNative := b.(graph.BatchBackend); !isNative {
		t.Logf("backend %s has no native BatchBackend; adapter checked against itself", b.Name())
	}

	allIDs := make([]string, 0, len(vs))
	for _, v := range vs {
		allIDs = append(allIDs, v.ID)
	}

	idSets := [][]string{
		{"p1"},
		{"p1", "p2", "p3"},
		{"zzz"},
		{"p1", "zzz", "d10", "p1"}, // duplicate and missing slots
		allIDs,
	}
	vqueries := []*graph.Query{
		nil,
		{},
		{Labels: []string{"patient"}},
		{Labels: []string{"patient", "disease"}},
		{Preds: []graph.Pred{{Key: "name", Op: graph.OpEq, Value: types.NewString("Bob")}}},
		{Projection: []string{"name"}},
	}
	for si, ids := range idSets {
		for qi, q := range vqueries {
			want, err := fallback.VerticesByIDs(ctx, ids, q)
			if err != nil {
				t.Fatalf("fallback VerticesByIDs(set %d, q %d): %v", si, qi, err)
			}
			got, err := native.VerticesByIDs(ctx, ids, q)
			if err != nil {
				t.Fatalf("native VerticesByIDs(set %d, q %d): %v", si, qi, err)
			}
			if g, w := renderFull(got), renderFull(want); g != w {
				t.Fatalf("VerticesByIDs(set %d, q %d) diverged\n got: %s\nwant: %s", si, qi, g, w)
			}
		}
	}

	vidSets := [][]string{
		{"p1"},
		{"p1", "p2", "p3"},
		{"d10", "d11"},
		{"d11", "d13", "zzz", "d11"}, // duplicate and missing slots
		allIDs,
	}
	equeries := []*graph.Query{
		nil,
		{},
		{Labels: []string{"isa"}},
		{Labels: []string{"hasDisease"}},
		{Limit: 1}, // per-vertex limit, unlike a flat VertexEdges call
		{Labels: []string{"isa"}, Limit: 2},
		{Preds: []graph.Pred{{Key: "description", Op: graph.OpEq, Value: types.NewString("2019")}}},
	}
	for si, vids := range vidSets {
		for _, dir := range []graph.Direction{graph.DirOut, graph.DirIn, graph.DirBoth} {
			for qi, q := range equeries {
				want, err := fallback.EdgesForVertices(ctx, vids, dir, q)
				if err != nil {
					t.Fatalf("fallback EdgesForVertices(set %d, dir %d, q %d): %v", si, dir, qi, err)
				}
				got, err := native.EdgesForVertices(ctx, vids, dir, q)
				if err != nil {
					t.Fatalf("native EdgesForVertices(set %d, dir %d, q %d): %v", si, dir, qi, err)
				}
				if g, w := renderGroups(got), renderGroups(want); g != w {
					t.Fatalf("EdgesForVertices(set %d, dir %d, q %d) diverged\n got: %s\nwant: %s",
						si, dir, qi, g, w)
				}
				// Per-vertex group semantics: every group must equal the
				// single-vertex VertexEdges call the contract promises.
				for i, vid := range vids {
					single, err := b.VertexEdges(ctx, []string{vid}, dir, q)
					if err != nil {
						t.Fatalf("VertexEdges(%s): %v", vid, err)
					}
					if g, w := renderFull(got[i]), renderFull(single); g != w {
						t.Fatalf("EdgesForVertices(set %d, dir %d, q %d) group %d (%s) != VertexEdges\n got: %s\nwant: %s",
							si, dir, qi, i, vid, g, w)
					}
				}
			}
		}
	}
}
