package graphtest

import (
	"context"
	"encoding/json"
	"testing"

	"db2graph/internal/graph"
)

// RunStatsConformance proves a backend's statistics are trustworthy: the
// numbers AnalyzeBackend returns — through a native Analyzer fast path when
// the backend has one — must be byte-identical to the generic CollectStats
// reference scan over the public V/E contract. The planner's costed
// decisions are only result-identical if both paths agree.
func RunStatsConformance(t *testing.T, build func(vertices, edges []*graph.Element) (graph.Backend, error)) {
	t.Helper()
	vs, es := PlannerDataset()
	b, err := build(vs, es)
	if err != nil {
		t.Fatalf("build backend: %v", err)
	}
	ctx := context.Background()

	native, err := graph.AnalyzeBackend(ctx, b)
	if err != nil {
		t.Fatalf("AnalyzeBackend: %v", err)
	}
	generic, err := graph.CollectStats(ctx, b)
	if err != nil {
		t.Fatalf("CollectStats: %v", err)
	}

	// Ground truth from the dataset itself, so a bug shared by both scans
	// cannot hide.
	if native.VertexCount != int64(len(vs)) {
		t.Fatalf("vertex count = %d, want %d", native.VertexCount, len(vs))
	}
	if native.EdgeCount != int64(len(es)) {
		t.Fatalf("edge count = %d, want %d", native.EdgeCount, len(es))
	}
	byLabel := map[string]int64{}
	for _, e := range es {
		byLabel[e.Label]++
	}
	for label, want := range byLabel {
		if got := native.EdgeLabels[label].Count; got != want {
			t.Fatalf("edge label %q count = %d, want %d", label, got, want)
		}
	}
	if got := native.OutDegreeHist.Total(); got != int64(len(vs)) {
		t.Fatalf("degree histogram covers %d vertices, want %d", got, len(vs))
	}

	// The two scans read at (potentially) different observed versions; the
	// content must match regardless.
	native.DataVersion = 0
	generic.DataVersion = 0
	nj, err := json.Marshal(native)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(generic)
	if err != nil {
		t.Fatal(err)
	}
	if string(nj) != string(gj) {
		t.Fatalf("native Analyzer diverges from generic CollectStats\nnative:  %s\ngeneric: %s", nj, gj)
	}
}
