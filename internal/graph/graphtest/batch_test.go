package graphtest_test

import (
	"testing"

	"db2graph/internal/graph"
	"db2graph/internal/graph/graphtest"
)

func TestMemBatchConformance(t *testing.T) {
	graphtest.RunBatchConformance(t, buildMem)
}

func TestInstrumentedBackendBatchConformance(t *testing.T) {
	graphtest.RunBatchConformance(t, buildInstrumentedMem)
}

func TestMemCachedDifferential(t *testing.T) {
	graphtest.RunCachedDifferential(t, buildMem)
}

func TestMemPlannerDifferential(t *testing.T) {
	graphtest.RunPlannerDifferential(t, buildMem)
}

func TestMemStatsConformance(t *testing.T) {
	graphtest.RunStatsConformance(t, buildMem)
}

func TestMemCacheInvalidation(t *testing.T) {
	graphtest.RunCacheInvalidation(t, func(vs, es []*graph.Element) (graph.Backend, graph.Mutable, error) {
		b, err := buildMem(vs, es)
		if err != nil {
			return nil, nil, err
		}
		return b, b.(graph.Mutable), nil
	})
}
