// Differential conformance for the cached, vectorized read path. The same
// script battery runs twice per configuration — cold and warm, so the second
// run is served by the compiled-plan cache and any backend topology caches —
// across parallelism 1/2/8 and several batch-size caps, and every run must
// reproduce the uncached serial golden BIT-IDENTICALLY: same objects in the
// same order, and the same per-step traverser counts in profile() reports.
// Caching and batching are pure plumbing optimizations; any observable
// difference is a bug.
package graphtest

import (
	"fmt"
	"strings"
	"testing"

	"db2graph/internal/graph"
	"db2graph/internal/gremlin"
	"db2graph/internal/telemetry"
)

// differentialScripts is the query battery: every backend fan-out shape the
// engine batches (out/in/both, edge hops, otherV), plus plan shapes that
// exercise the strategy rewrites, sub-traversals, side effects, and paths.
var differentialScripts = []string{
	`g.V()`,
	`g.V().count()`,
	`g.V().hasLabel('patient').values('name')`,
	`g.V().out()`,
	`g.V().in('isa')`,
	`g.V().both()`,
	`g.V().both().dedup()`,
	`g.V().outE()`,
	`g.V().inE('isa').outV()`,
	`g.V().outE().otherV()`,
	`g.V('p1').out('hasDisease').out('isa')`,
	`g.V('p1', 'p2', 'p3').out().values('conceptName')`,
	`g.V().out().limit(2)`,
	`g.V().out('isa').groupCount()`,
	`g.V().where(out('isa'))`,
	`g.V('p1').repeat(out()).times(2)`,
	`g.V('d13').repeat(out('isa').dedup().store('x')).times(3).cap('x')`,
	`g.V().hasLabel('disease').order().by('conceptName')`,
	`g.V('p1').out().path()`,
	`g.E().count()`,
	`g.V().out().out().count()`,
}

// DifferentialScripts returns a copy of the differential query battery for
// suites that live outside this package (graphtest/clustertest reuses it so
// the sharded coordinator is held to the same bit-identity bar).
func DifferentialScripts() []string {
	return append([]string(nil), differentialScripts...)
}

// RenderObjs renders script results to the canonical comparison form used
// by the differential suites.
func RenderObjs(objs []any) string { return renderObjs(objs) }

// renderProfile flattens a profile report to its deterministic fields: step
// names and traverser counts, but not durations.
func renderProfile(p *telemetry.Profile) string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = fmt.Sprintf("%s[calls=%d,in=%d,out=%d]", s.Name, s.Calls, s.In, s.Out)
	}
	return strings.Join(parts, " -> ")
}

// RunCachedDifferential executes the differential suite against a backend
// built by build.
func RunCachedDifferential(t *testing.T, build func(vertices, edges []*graph.Element) (graph.Backend, error)) {
	t.Helper()
	vs, es := Dataset()
	b, err := build(vs, es)
	if err != nil {
		t.Fatalf("build backend: %v", err)
	}

	// Golden pass: serial, no plan cache, batched lookups forced through the
	// generic fallback adapter so the reference semantics come from the base
	// Backend contract alone.
	golden := gremlin.NewSource(graph.FallbackBatch(b))
	wantRes := make([]string, len(differentialScripts))
	wantProf := make([]string, len(differentialScripts))
	for i, script := range differentialScripts {
		res, err := gremlin.RunScript(golden, script, nil)
		if err != nil {
			t.Fatalf("golden %q: %v", script, err)
		}
		wantRes[i] = renderObjs(res)
		pres, err := gremlin.RunScript(golden, script+".profile()", nil)
		if err != nil {
			t.Fatalf("golden %q profile: %v", script, err)
		}
		wantProf[i] = renderProfile(pres[0].(*telemetry.Profile))
	}

	pc := gremlin.NewPlanCache(0)
	for _, par := range []int{1, 2, 8} {
		for _, bs := range []int{0, 2, 7} {
			name := fmt.Sprintf("par=%d/batch=%d", par, bs)
			src := gremlin.NewSource(b).WithParallelism(par).WithBatchSize(bs).WithPlanCache(pc)
			for round := 0; round < 2; round++ { // round 1 hits the plan cache
				for i, script := range differentialScripts {
					res, err := gremlin.RunScript(src, script, nil)
					if err != nil {
						t.Fatalf("%s round %d %q: %v", name, round, script, err)
					}
					if got := renderObjs(res); got != wantRes[i] {
						t.Fatalf("%s round %d %q diverged\n got: %s\nwant: %s",
							name, round, script, got, wantRes[i])
					}
					pres, err := gremlin.RunScript(src, script+".profile()", nil)
					if err != nil {
						t.Fatalf("%s round %d %q profile: %v", name, round, script, err)
					}
					if got := renderProfile(pres[0].(*telemetry.Profile)); got != wantProf[i] {
						t.Fatalf("%s round %d %q profile diverged\n got: %s\nwant: %s",
							name, round, script, got, wantProf[i])
					}
				}
			}
		}
	}
	stats := pc.Stats()
	if stats.Hits == 0 {
		t.Fatalf("plan cache never hit: %+v", stats)
	}
}
