package graphtest_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"db2graph/internal/graph"
	"db2graph/internal/graph/graphtest"
)

func TestMemConcurrent(t *testing.T) {
	graphtest.RunConcurrent(t, buildMem)
}

func TestInstrumentedBackendConcurrent(t *testing.T) {
	graphtest.RunConcurrent(t, buildInstrumentedMem)
}

// TestFaultBackendConcurrentControl races fault configuration (Inject,
// Reset, Calls) against in-flight calls: the injector must tolerate rule
// changes while queries are running — the usage pattern of a test that
// reconfigures faults between, but not strictly after, concurrent queries.
func TestFaultBackendConcurrentControl(t *testing.T) {
	vs, es := graphtest.Dataset()
	inner, err := buildMem(vs, es)
	if err != nil {
		t.Fatal(err)
	}
	fb := graphtest.WrapFaults(inner, 3)
	ctx := context.Background()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := fb.V(ctx, &graph.Query{}); err != nil && !errors.Is(err, graphtest.ErrInjected) {
					t.Errorf("V: %v", err)
					return
				}
				if _, err := fb.VertexEdges(ctx, []string{"p1"}, graph.DirOut, &graph.Query{}); err != nil && !errors.Is(err, graphtest.ErrInjected) {
					t.Errorf("VertexEdges: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		fb.Inject("V", graphtest.FaultPoint{Err: graphtest.ErrInjected, Prob: 0.5})
		_ = fb.Calls("V")
		_ = fb.Calls("VertexEdges")
		if i%10 == 0 {
			fb.Reset()
		}
	}
	close(stop)
	wg.Wait()
}
