package clustertest_test

import (
	"testing"

	"db2graph/internal/graph"
	"db2graph/internal/graph/graphtest/clustertest"
	"db2graph/internal/telemetry"
)

// buildMem loads one shard's slice into the reference in-memory backend.
func buildMem(vs, es []*graph.Element) (graph.Backend, error) {
	m := graph.NewMemBackend()
	for _, v := range vs {
		if err := m.AddVertex(v); err != nil {
			return nil, err
		}
	}
	for _, e := range es {
		if err := m.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func buildInstrumentedMem(vs, es []*graph.Element) (graph.Backend, error) {
	b, err := buildMem(vs, es)
	if err != nil {
		return nil, err
	}
	return graph.Instrument(b, telemetry.NewRegistry()), nil
}

func TestClusterFaultsMem(t *testing.T) {
	clustertest.RunClusterFaults(t, buildMem)
}

func TestReplicatedClusterMem(t *testing.T) {
	clustertest.RunReplicatedCluster(t, func(vs, es []*graph.Element) (graph.Backend, graph.Mutable, error) {
		b, err := buildMem(vs, es)
		if err != nil {
			return nil, nil, err
		}
		return b, b.(graph.Mutable), nil
	})
}

func TestClusterFaultsInstrumentedMem(t *testing.T) {
	clustertest.RunClusterFaults(t, buildInstrumentedMem)
}
