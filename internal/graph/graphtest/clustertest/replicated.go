// Replicated-cluster conformance: every shard runs as a primary/follower
// gserver pair under synchronous logical replication, fronted by a
// failover-capable coordinator. The suite proves three things, per backend:
//
//  1. Replication differential: after a concurrent write load through the
//     coordinator quiesces, each follower's graph is BIT-IDENTICAL to its
//     primary's — same vertices, same edges, rendered and compared exactly.
//  2. Chaos failover: hard-killing a shard's primary mid-load triggers
//     automatic promotion of its follower. Every acknowledged write
//     survives, every failure is typed (indeterminate at worst — never a
//     silent lie), and the cluster answers correctly afterwards.
//  3. Fencing: once the dead primary heals it is a zombie — the fence
//     lands and it can never acknowledge another write, and nothing it
//     accepted while deposed ever appears in a coordinator answer.
//
// Run under -race: replication acks, health probes, promotion, and fence
// delivery all race with the write load by design.
package clustertest

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"db2graph/internal/cluster"
	"db2graph/internal/graph"
	"db2graph/internal/graph/graphtest"
	"db2graph/internal/gremlin"
	"db2graph/internal/gserver"
	"db2graph/internal/telemetry"
)

// MutableBuilder builds one fresh, isolated backend instance loaded with
// exactly the given elements, plus the write path that mutates it.
type MutableBuilder func(vertices, edges []*graph.Element) (graph.Backend, graph.Mutable, error)

// replicatedHarness is one live deployment of n primary/follower pairs.
type replicatedHarness struct {
	coord     *cluster.Coordinator
	reg       *telemetry.Registry
	chaos     []*cluster.Chaos // wraps each PRIMARY's listener
	primaries []*gserver.Server
	followers []*gserver.Server
	paddrs    []string
	faddrs    []string
}

func startReplicated(t *testing.T, build MutableBuilder, n int, cfg cluster.Config) *replicatedHarness {
	t.Helper()
	vs, es := graphtest.Dataset()
	parts := cluster.Partition(vs, es, n)
	h := &replicatedHarness{reg: telemetry.NewRegistry()}
	for i := 0; i < n; i++ {
		// Primary and follower are seeded with the same partition, so the
		// oplog only ever carries the live write load.
		pb, pmut, err := build(parts[i].Vertices, parts[i].Edges)
		if err != nil {
			t.Fatalf("build shard %d primary: %v", i, err)
		}
		primary, err := gserver.NewReplicated(gremlin.NewSource(pb), gserver.Config{
			Registry: telemetry.NewRegistry(),
			Mutator:  pmut,
			Replication: &gserver.ReplicationConfig{
				Role: gserver.RolePrimary, AckTimeout: 2 * time.Second,
			},
		})
		if err != nil {
			t.Fatalf("shard %d primary server: %v", i, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ch := cluster.WrapListener(ln)
		paddr := primary.Serve(ch)

		fb, fmut, err := build(parts[i].Vertices, parts[i].Edges)
		if err != nil {
			t.Fatalf("build shard %d follower: %v", i, err)
		}
		follower, err := gserver.NewReplicated(gremlin.NewSource(fb), gserver.Config{
			Registry: telemetry.NewRegistry(),
			Mutator:  fmut,
			Replication: &gserver.ReplicationConfig{
				Role: gserver.RoleFollower, PrimaryAddr: paddr,
			},
		})
		if err != nil {
			t.Fatalf("shard %d follower server: %v", i, err)
		}
		faddr, err := follower.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		h.chaos = append(h.chaos, ch)
		h.primaries = append(h.primaries, primary)
		h.followers = append(h.followers, follower)
		h.paddrs = append(h.paddrs, paddr)
		h.faddrs = append(h.faddrs, faddr)
	}
	cfg.Addrs = h.paddrs
	cfg.Replicas = h.faddrs
	cfg.Registry = h.reg
	coord, err := cluster.Dial(cfg)
	if err != nil {
		t.Fatalf("dial coordinator: %v", err)
	}
	h.coord = coord
	t.Cleanup(func() {
		coord.Close()
		for _, ch := range h.chaos {
			ch.Heal()
		}
		for i := range h.primaries {
			h.primaries[i].Close()
			h.followers[i].Close()
		}
	})
	return h
}

// dumpServer renders every vertex and edge on one server, sorted, so two
// replicas can be compared bit-for-bit.
func dumpServer(t *testing.T, addr string) string {
	t.Helper()
	c, err := gserver.Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer c.Close()
	var lines []string
	for _, method := range []string{gserver.OpV, gserver.OpE} {
		resp, err := c.GraphOp(gserver.GraphOp{Method: method})
		if err != nil {
			t.Fatalf("%s on %s: %v", method, addr, err)
		}
		for _, el := range resp.Elements {
			if el == nil {
				continue
			}
			props := make([]string, 0, len(el.Props))
			for k, v := range el.Props {
				props = append(props, fmt.Sprintf("%s=%v", k, v))
			}
			sort.Strings(props)
			lines = append(lines, fmt.Sprintf("%s:%s:%s>%s:%v", el.ID, el.Label, el.OutV, el.InV, props))
		}
	}
	sort.Strings(lines)
	return fmt.Sprintf("%d elements\n%v", len(lines), lines)
}

func coordIDs(t *testing.T, h *replicatedHarness) (vids, eids map[string]bool) {
	t.Helper()
	ctx := context.Background()
	vids, eids = map[string]bool{}, map[string]bool{}
	vs, err := h.coord.V(ctx, &graph.Query{})
	if err != nil {
		t.Fatalf("coordinator V: %v", err)
	}
	for _, el := range vs {
		vids[el.ID] = true
	}
	es, err := h.coord.E(ctx, &graph.Query{})
	if err != nil {
		t.Fatalf("coordinator E: %v", err)
	}
	for _, el := range es {
		eids[el.ID] = true
	}
	return vids, eids
}

// RunReplicatedCluster executes the replication differential + chaos
// failover + fencing suite against primary/follower pairs built by build.
func RunReplicatedCluster(t *testing.T, build MutableBuilder) {
	t.Helper()

	t.Run("differential", func(t *testing.T) {
		// Calm config: no prober, generous timeouts — this phase is about
		// replication correctness under concurrency, not fault handling.
		h := startReplicated(t, build, 2, cluster.Config{
			Retries:        2,
			RequestTimeout: 10 * time.Second,
			NoHedge:        true,
		})
		const writers, perWriter = 4, 25
		var wg sync.WaitGroup
		errCh := make(chan error, writers)
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ctx := context.Background()
				var prev *graph.Element
				for i := 0; i < perWriter; i++ {
					v := &graph.Element{ID: fmt.Sprintf("ru%d_%d", g, i), Label: "user"}
					if err := h.coord.AddVertexCtx(ctx, v); err != nil {
						errCh <- fmt.Errorf("writer %d vertex %d: %w", g, i, err)
						return
					}
					if prev != nil && i%5 == 0 {
						e := &graph.Element{
							ID: fmt.Sprintf("rm%d_%d", g, i), Label: "mentions",
							OutV: prev.ID, InV: v.ID, IsEdge: true,
						}
						if err := h.coord.AddEdgeCtx(ctx, e, prev, v); err != nil {
							errCh <- fmt.Errorf("writer %d edge %d: %w", g, i, err)
							return
						}
					}
					prev = v
				}
			}(g)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}

		// Quiesce is implicit: every write above returned only after its
		// follower acknowledged the applied op. Bit-identical now.
		for i := range h.paddrs {
			p, f := dumpServer(t, h.paddrs[i]), dumpServer(t, h.faddrs[i])
			if p != f {
				t.Fatalf("shard %d follower diverged from primary at quiesce\nprimary:  %s\nfollower: %s", i, p, f)
			}
		}

		// And the coordinator's merged answer holds exactly the seeded
		// dataset plus the written load — nothing lost, nothing invented.
		vids, eids := coordIDs(t, h)
		vs, es := graphtest.Dataset()
		wantV, wantE := len(vs)+writers*perWriter, 0
		for _, v := range vs {
			if !vids[v.ID] {
				t.Fatalf("seeded vertex %s missing after write load", v.ID)
			}
		}
		for _, e := range es {
			wantE++
			if !eids[e.ID] {
				t.Fatalf("seeded edge %s missing after write load", e.ID)
			}
		}
		for g := 0; g < writers; g++ {
			for i := 0; i < perWriter; i++ {
				if !vids[fmt.Sprintf("ru%d_%d", g, i)] {
					t.Fatalf("written vertex ru%d_%d missing", g, i)
				}
				if i%5 == 0 && i > 0 {
					wantE++
					if !eids[fmt.Sprintf("rm%d_%d", g, i)] {
						t.Fatalf("written edge rm%d_%d missing", g, i)
					}
				}
			}
		}
		if len(vids) != wantV {
			t.Fatalf("coordinator sees %d vertices, want %d", len(vids), wantV)
		}
		if len(eids) != wantE {
			t.Fatalf("coordinator sees %d edges, want %d", len(eids), wantE)
		}
	})

	t.Run("failover", func(t *testing.T) {
		h := startReplicated(t, build, 2, cluster.Config{
			Retries:           -1,
			NoHedge:           true,
			RequestTimeout:    2 * time.Second,
			BreakerThreshold:  2,
			BreakerCooloff:    30 * time.Second, // recovery must come from failover
			HealthInterval:    15 * time.Millisecond,
			HealthTimeout:     250 * time.Millisecond,
			HealthBackoffMax:  60 * time.Millisecond,
			FailoverThreshold: 2,
		})
		ctx := context.Background()
		target := h.coord.ShardOf("fv0")

		acked := map[string]bool{}
		unsent := map[string]bool{}
		unknown := map[string]bool{}
		write := func(id string) {
			err := h.coord.AddVertexCtx(ctx, &graph.Element{ID: id, Label: "user"})
			switch {
			case err == nil:
				acked[id] = true
			case errors.Is(err, cluster.ErrIndeterminateWrite):
				unknown[id] = true
			case errors.Is(err, cluster.ErrShardUnavailable) ||
				errors.Is(err, gserver.ErrFenced) || errors.Is(err, gserver.ErrNotPrimary) ||
				errors.Is(err, context.DeadlineExceeded):
				unsent[id] = true
			default:
				t.Fatalf("untyped write failure for %s: %v", id, err)
			}
		}

		for i := 0; i < 10; i++ {
			write(fmt.Sprintf("pre%d", i))
		}
		if len(acked) != 10 {
			t.Fatalf("pre-fault: %d/10 acked", len(acked))
		}

		// Hard-kill the target shard's primary and keep writing.
		h.chaos[target].SetPartitioned(true)
		h.chaos[target].SetReset(true)
		failovers := h.reg.Counter(fmt.Sprintf(`cluster_failovers_total{shard="%d"}`, target))
		deadline := time.Now().Add(20 * time.Second)
		for i := 0; failovers.Value() == 0; i++ {
			if time.Now().After(deadline) {
				t.Fatal("failover never triggered")
			}
			write(fmt.Sprintf("mid%d", i))
			time.Sleep(10 * time.Millisecond)
		}

		// Post-promotion the shard takes writes again (the lost-ack window
		// is bounded: only writes during the outage may be indeterminate).
		recovered := false
		var lastErr error
		for i := 0; i < 40 && !recovered; i++ {
			id := fmt.Sprintf("post%d", i)
			if err := h.coord.AddVertexCtx(ctx, &graph.Element{ID: id, Label: "user"}); err == nil {
				acked[id] = true
				recovered = true
			} else {
				lastErr = err
				time.Sleep(25 * time.Millisecond)
			}
		}
		if !recovered {
			t.Fatalf("writes never recovered after failover: %v", lastErr)
		}

		// Zero wrong results at the coordinator: every acked write
		// present, every determinate failure absent.
		vids, _ := coordIDs(t, h)
		for id := range acked {
			if !vids[id] {
				t.Fatalf("acknowledged write %q lost across failover", id)
			}
		}
		for id := range unsent {
			if !acked[id] && !unknown[id] && vids[id] {
				t.Fatalf("determinately-rejected write %q appeared anyway", id)
			}
		}

		// Fencing: heal the network; the deposed primary is now a zombie.
		// The fence must land, after which it can never acknowledge a
		// write — and nothing it accepts in the gap reaches the cluster.
		h.chaos[target].Heal()
		zc, err := gserver.Dial(h.paddrs[target])
		if err != nil {
			t.Fatalf("dial healed zombie: %v", err)
		}
		defer zc.Close()
		fenceDeadline := time.Now().Add(10 * time.Second)
		for {
			_, err := zc.GraphOp(gserver.GraphOp{
				Method:  gserver.OpAddVertex,
				Element: &gserver.WireElement{ID: "zombie-w", Label: "user"},
			})
			if errors.Is(err, gserver.ErrFenced) {
				break
			}
			if time.Now().After(fenceDeadline) {
				t.Fatalf("zombie never fenced; last result: %v", err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		vids, _ = coordIDs(t, h)
		if vids["zombie-w"] {
			t.Fatal("a zombie-accepted write leaked into coordinator answers")
		}
		for id := range acked {
			if !vids[id] {
				t.Fatalf("acknowledged write %q lost after zombie healed", id)
			}
		}
	})
}
