// Differential conformance for the sharded cluster coordinator. The suite
// deploys the backend under test as N partitioned gserver shards behind a
// cluster.Coordinator and proves two things:
//
//  1. Shard-count invariance: the full differential script battery must be
//     BIT-IDENTICAL between a 1-shard deployment (the single-node golden)
//     and 2- and 3-shard deployments — same objects, same order. Sharding
//     is pure deployment topology; any observable difference is a bug.
//  2. Fault semantics: under injected network faults (delays, drops,
//     resets, partitions, via the chaos listener wrapper) every query
//     either returns the golden answer or a typed error
//     (ErrShardUnavailable / TIMEOUT / context deadline) — never silently
//     wrong or partial results. Degraded mode, the one sanctioned partial
//     path, must mark its partials (counter + PartialReport).
//
// Run it under -race: retries, hedges, health probes, and breaker
// transitions all race with query traffic by design.
//
// This lives in its own package (rather than graphtest proper) because it
// imports gserver and cluster; gserver's internal tests import graphtest,
// so folding it into graphtest would create an import cycle.
package clustertest

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"testing"
	"time"

	"db2graph/internal/cluster"
	"db2graph/internal/graph"
	"db2graph/internal/graph/graphtest"
	"db2graph/internal/gremlin"
	"db2graph/internal/gserver"
	"db2graph/internal/telemetry"
)

// battery is the shared differential script battery: the sharded
// coordinator is held to the exact same scripts as the cached/vectorized
// read paths.
var battery = graphtest.DifferentialScripts()

// clusterHarness is one live sharded deployment: N backends behind N
// gservers, each wrapped in a chaos listener, fronted by one coordinator.
type clusterHarness struct {
	coord   *cluster.Coordinator
	src     *gremlin.Source
	chaos   []*cluster.Chaos
	servers []*gserver.Server
	reg     *telemetry.Registry
}

// startCluster partitions the canonical dataset across n shards, builds one
// backend per shard with build, and wires servers + coordinator. cfg.Addrs
// and cfg.Registry are filled in (reg may be shared across harnesses to
// accumulate fault telemetry for the observability phase).
func startCluster(t *testing.T, build func(vertices, edges []*graph.Element) (graph.Backend, error),
	n int, cfg cluster.Config, reg *telemetry.Registry) *clusterHarness {
	t.Helper()
	vs, es := graphtest.Dataset()
	parts := cluster.Partition(vs, es, n)
	h := &clusterHarness{reg: reg}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		b, err := build(parts[i].Vertices, parts[i].Edges)
		if err != nil {
			t.Fatalf("build shard %d: %v", i, err)
		}
		srv := gserver.NewWithConfig(gremlin.NewSource(b), gserver.Config{
			Registry: telemetry.NewRegistry(), // shard-local; keep coordinator metrics clean
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen shard %d: %v", i, err)
		}
		ch := cluster.WrapListener(ln)
		addrs[i] = srv.Serve(ch)
		h.chaos = append(h.chaos, ch)
		h.servers = append(h.servers, srv)
	}
	cfg.Addrs = addrs
	cfg.Registry = reg
	coord, err := cluster.Dial(cfg)
	if err != nil {
		t.Fatalf("dial coordinator: %v", err)
	}
	h.coord = coord
	h.src = gremlin.NewSource(coord)
	t.Cleanup(func() { h.close() })
	return h
}

func (h *clusterHarness) close() {
	if h.coord != nil {
		h.coord.Close()
		h.coord = nil
	}
	for _, ch := range h.chaos {
		ch.Heal()
	}
	for _, srv := range h.servers {
		srv.Close()
	}
	h.servers = nil
}

// heal clears every injected fault on every shard.
func (h *clusterHarness) heal() {
	for _, ch := range h.chaos {
		ch.Heal()
	}
}

// runBattery executes the differential script battery and returns the
// rendered results, one string per script.
func (h *clusterHarness) runBattery(t *testing.T) []string {
	t.Helper()
	out := make([]string, len(battery))
	for i, script := range battery {
		res, err := gremlin.RunScript(h.src, script, nil)
		if err != nil {
			t.Fatalf("cluster battery %q: %v", script, err)
		}
		out[i] = graphtest.RenderObjs(res)
	}
	return out
}

// typedAvailabilityError asserts err is one of the sanctioned typed
// failures — never a silent success and never an untyped mess.
func typedAvailabilityError(err error) bool {
	return errors.Is(err, cluster.ErrShardUnavailable) ||
		errors.Is(err, gserver.ErrTimeout) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

func sortedIDs(els []*graph.Element) string {
	ids := make([]string, 0, len(els))
	for _, el := range els {
		if el != nil {
			ids = append(ids, el.ID)
		}
	}
	sort.Strings(ids)
	return strings.Join(ids, ",")
}

// sumByPrefix totals every metric whose name starts with prefix.
func sumByPrefix(m map[string]float64, prefix string) float64 {
	var sum float64
	for k, v := range m {
		if strings.HasPrefix(k, prefix) {
			sum += v
		}
	}
	return sum
}

// RunClusterFaults executes the cluster differential + fault-injection
// suite against shards built by build. build must return a fresh, isolated
// backend instance per call, loaded with exactly the given elements.
func RunClusterFaults(t *testing.T, build func(vertices, edges []*graph.Element) (graph.Backend, error)) {
	t.Helper()
	ctx := context.Background()

	// Calm configuration for the correctness phases: generous timeouts, no
	// background probes racing the battery.
	calm := func() cluster.Config {
		return cluster.Config{
			Retries:        2,
			RetryBase:      10 * time.Millisecond,
			RetryMax:       50 * time.Millisecond,
			RequestTimeout: 5 * time.Second,
			NoHedge:        true,
		}
	}

	// Phase 1: the golden answers come from a 1-shard deployment — a
	// legitimate single-node cluster, so the whole wire/merge path is in
	// the golden too and any divergence at N>1 is attributable to sharding.
	h1 := startCluster(t, build, 1, calm(), telemetry.NewRegistry())
	golden := h1.runBattery(t)
	h1.close()

	// Raw-backend content parity: the canonical merge may reorder scans
	// relative to a raw backend, but it must never add, drop, or duplicate
	// elements. Compare order-insensitively against an unsharded build.
	vs, es := graphtest.Dataset()
	rawB, err := build(vs, es)
	if err != nil {
		t.Fatalf("build raw backend: %v", err)
	}
	rawV, err := rawB.V(ctx, &graph.Query{})
	if err != nil {
		t.Fatalf("raw V: %v", err)
	}
	rawE, err := rawB.E(ctx, &graph.Query{})
	if err != nil {
		t.Fatalf("raw E: %v", err)
	}
	rawAdj, err := rawB.VertexEdges(ctx, []string{"p1", "p2", "p3"}, graph.DirBoth, &graph.Query{})
	if err != nil {
		t.Fatalf("raw VertexEdges: %v", err)
	}

	// Phase 2: shard-count invariance plus raw parity at N=2 and N=3.
	for _, n := range []int{2, 3} {
		t.Run(fmt.Sprintf("identical/shards=%d", n), func(t *testing.T) {
			h := startCluster(t, build, n, calm(), telemetry.NewRegistry())
			got := h.runBattery(t)
			for i, script := range battery {
				if got[i] != golden[i] {
					t.Fatalf("shards=%d %q diverged from single-node\n got: %s\nwant: %s",
						n, script, got[i], golden[i])
				}
			}
			cv, err := h.coord.V(ctx, &graph.Query{})
			if err != nil {
				t.Fatalf("coordinator V: %v", err)
			}
			if g, w := sortedIDs(cv), sortedIDs(rawV); g != w {
				t.Fatalf("shards=%d vertex set diverged from raw backend\n got: %s\nwant: %s", n, g, w)
			}
			ce, err := h.coord.E(ctx, &graph.Query{})
			if err != nil {
				t.Fatalf("coordinator E: %v", err)
			}
			if g, w := sortedIDs(ce), sortedIDs(rawE); g != w {
				t.Fatalf("shards=%d edge set diverged from raw backend\n got: %s\nwant: %s", n, g, w)
			}
			cadj, err := h.coord.VertexEdges(ctx, []string{"p1", "p2", "p3"}, graph.DirBoth, &graph.Query{})
			if err != nil {
				t.Fatalf("coordinator VertexEdges: %v", err)
			}
			if g, w := sortedIDs(cadj), sortedIDs(rawAdj); g != w {
				t.Fatalf("shards=%d adjacency diverged from raw backend\n got: %s\nwant: %s", n, g, w)
			}
			h.close()
		})
	}

	// Shared registry for the fault phases so the observability check at
	// the end can see retry/hedge/breaker counters from all of them.
	faultReg := telemetry.NewRegistry()
	goldenOf := func(script string) string {
		for i, s := range battery {
			if s == script {
				return golden[i]
			}
		}
		t.Fatalf("script %q not in battery", script)
		return ""
	}
	const probeScript = `g.V('p1').out('hasDisease').out('isa')`

	// Phase 3: fault schedule against a 3-shard deployment. No background
	// health checker here — retries and breaker transitions must be driven
	// (and observed) by query traffic alone.
	t.Run("faults", func(t *testing.T) {
		cfg := calm()
		cfg.RetryBase = 5 * time.Millisecond
		cfg.RetryMax = 20 * time.Millisecond
		cfg.BreakerThreshold = 3
		cfg.BreakerCooloff = 250 * time.Millisecond
		h := startCluster(t, build, 3, cfg, faultReg)
		target := h.coord.ShardOf("p1")
		chaos := h.chaos[target]
		breakerState := faultReg.Gauge(fmt.Sprintf(`cluster_breaker_state{shard="%d"}`, target))

		t.Run("small-delay-still-identical", func(t *testing.T) {
			chaos.SetDelay(3 * time.Millisecond)
			defer h.heal()
			res, err := gremlin.RunScript(h.src, probeScript, nil)
			if err != nil {
				t.Fatalf("delayed query: %v", err)
			}
			if got := graphtest.RenderObjs(res); got != goldenOf(probeScript) {
				t.Fatalf("delayed query diverged\n got: %s\nwant: %s", got, goldenOf(probeScript))
			}
		})

		t.Run("big-delay-typed-timeout", func(t *testing.T) {
			chaos.SetDelay(2 * time.Second)
			defer h.heal()
			qctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := gremlin.RunScriptCtx(qctx, h.src, `g.V()`, nil)
			if err == nil {
				t.Fatal("expected a typed error under 2s injected delay with 200ms deadline")
			}
			if !typedAvailabilityError(err) {
				t.Fatalf("untyped error under delay: %v", err)
			}
			if el := time.Since(start); el > 1500*time.Millisecond {
				t.Fatalf("deadline not respected: took %v", el)
			}
		})

		t.Run("drop-typed-then-recover", func(t *testing.T) {
			chaos.SetDrop(true)
			qctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
			_, err := gremlin.RunScriptCtx(qctx, h.src, `g.V()`, nil)
			cancel()
			if err == nil {
				t.Fatal("expected a typed error on a blackholed shard")
			}
			if !typedAvailabilityError(err) {
				t.Fatalf("untyped error under drop: %v", err)
			}
			h.heal()
			res, err := gremlin.RunScript(h.src, probeScript, nil)
			if err != nil {
				t.Fatalf("query after heal: %v", err)
			}
			if got := graphtest.RenderObjs(res); got != goldenOf(probeScript) {
				t.Fatalf("post-drop query diverged\n got: %s\nwant: %s", got, goldenOf(probeScript))
			}
		})

		t.Run("transient-reset-retried", func(t *testing.T) {
			before := faultReg.Counter(fmt.Sprintf(`cluster_retries_total{shard="%d"}`, target)).Value()
			chaos.ResetNext(2)
			defer h.heal()
			res, err := gremlin.RunScript(h.src, probeScript, nil)
			if err != nil {
				t.Fatalf("query across transient resets: %v", err)
			}
			if got := graphtest.RenderObjs(res); got != goldenOf(probeScript) {
				t.Fatalf("retried query diverged\n got: %s\nwant: %s", got, goldenOf(probeScript))
			}
			after := faultReg.Counter(fmt.Sprintf(`cluster_retries_total{shard="%d"}`, target)).Value()
			if after <= before {
				t.Fatalf("transient reset did not exercise the retry path (retries %d -> %d)", before, after)
			}
		})

		t.Run("partition-opens-breaker", func(t *testing.T) {
			// A hard partition: existing connections die and the remote
			// answers new traffic with resets (a soft partition — silent
			// blackhole — surfaces as caller deadlines, which carry no
			// availability verdict; opening the breaker on those is the
			// health prober's job, exercised in the replication suite).
			chaos.SetPartitioned(true)
			chaos.SetReset(true)
			// Drive traffic until the consecutive transport failures trip
			// the breaker.
			deadline := time.Now().Add(5 * time.Second)
			for breakerState.Value() != cluster.BreakerOpen {
				if time.Now().After(deadline) {
					t.Fatal("breaker never opened under partition")
				}
				qctx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
				_, err := h.coord.V(qctx, &graph.Query{})
				cancel()
				if err == nil {
					t.Fatal("partitioned shard answered a scan")
				}
				if !typedAvailabilityError(err) {
					t.Fatalf("untyped error under partition: %v", err)
				}
			}
			// Open breaker short-circuits: the unavailable answer must now
			// come back without burning the retry schedule.
			start := time.Now()
			_, err := h.coord.V(ctx, &graph.Query{})
			if !errors.Is(err, cluster.ErrShardUnavailable) {
				t.Fatalf("want ErrShardUnavailable from open breaker, got %v", err)
			}
			if el := time.Since(start); el > time.Second {
				t.Fatalf("open breaker did not fast-fail: %v", el)
			}
			// Heal; after the cooloff one half-open probe closes the
			// breaker and answers turn golden again.
			h.heal()
			time.Sleep(cfg.BreakerCooloff + 50*time.Millisecond)
			deadline = time.Now().Add(5 * time.Second)
			for {
				res, err := gremlin.RunScript(h.src, probeScript, nil)
				if err == nil {
					if got := graphtest.RenderObjs(res); got != goldenOf(probeScript) {
						t.Fatalf("post-recovery query diverged\n got: %s\nwant: %s", got, goldenOf(probeScript))
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("shard never recovered after heal: %v", err)
				}
				time.Sleep(50 * time.Millisecond)
			}
			if st := breakerState.Value(); st != cluster.BreakerClosed {
				t.Fatalf("breaker state after recovery = %d, want closed", st)
			}
		})

		// Regression: a half-open probe cut short by the caller's deadline
		// (a blackholed shard never answers, so the probe resolves with
		// neither success nor failure) must revert the breaker to open —
		// never wedge it half-open, where every subsequent request would
		// fast-fail forever.
		t.Run("abandoned-probe-reopens", func(t *testing.T) {
			// Open the breaker with a hard partition (fast transport
			// failures via resets).
			chaos.SetPartitioned(true)
			chaos.SetReset(true)
			deadline := time.Now().Add(5 * time.Second)
			for breakerState.Value() != cluster.BreakerOpen {
				if time.Now().After(deadline) {
					t.Fatal("breaker never opened under partition")
				}
				qctx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
				_, _ = h.coord.V(qctx, &graph.Query{})
				cancel()
			}
			// Swap the partition for a blackhole, let the cooloff pass, and
			// send the half-open probe with a deadline it cannot meet.
			chaos.Heal()
			chaos.SetDrop(true)
			time.Sleep(cfg.BreakerCooloff + 50*time.Millisecond)
			qctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
			_, err := h.coord.V(qctx, &graph.Query{})
			cancel()
			if err == nil {
				t.Fatal("blackholed probe reported success")
			}
			if !typedAvailabilityError(err) {
				t.Fatalf("untyped error from abandoned probe: %v", err)
			}
			if st := breakerState.Value(); st == cluster.BreakerHalfOpen {
				t.Fatal("abandoned probe wedged the breaker half-open")
			}
			// After healing, the next cooloff must admit a fresh probe and
			// recover the shard with no background health checker to help.
			h.heal()
			time.Sleep(cfg.BreakerCooloff + 50*time.Millisecond)
			deadline = time.Now().Add(5 * time.Second)
			for {
				res, err := gremlin.RunScript(h.src, probeScript, nil)
				if err == nil {
					if got := graphtest.RenderObjs(res); got != goldenOf(probeScript) {
						t.Fatalf("post-abandon recovery diverged\n got: %s\nwant: %s", got, goldenOf(probeScript))
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("breaker never recovered after an abandoned probe: %v", err)
				}
				time.Sleep(50 * time.Millisecond)
			}
			if st := breakerState.Value(); st != cluster.BreakerClosed {
				t.Fatalf("breaker state after recovery = %d, want closed", st)
			}
		})
		h.close()
	})

	// Phase 4: the background health checker must open the breaker of a
	// partitioned shard with NO query traffic, and close it again once the
	// partition heals.
	t.Run("health-checker", func(t *testing.T) {
		cfg := calm()
		cfg.HealthInterval = 20 * time.Millisecond
		cfg.HealthTimeout = 500 * time.Millisecond
		cfg.BreakerThreshold = 3
		cfg.BreakerCooloff = 10 * time.Second // recovery must come from probes, not cooloff
		h := startCluster(t, build, 2, cfg, faultReg)
		target := h.coord.ShardOf("p1")
		breakerState := faultReg.Gauge(fmt.Sprintf(`cluster_breaker_state{shard="%d"}`, target))

		// Let at least one healthy probe land so the loop is demonstrably
		// running before the fault hits.
		time.Sleep(60 * time.Millisecond)
		h.chaos[target].SetPartitioned(true)
		waitFor(t, 5*time.Second, "breaker open via health probes", func() bool {
			return breakerState.Value() == cluster.BreakerOpen
		})
		// While open: typed fast-fail, no silent partials.
		if _, err := h.coord.V(ctx, &graph.Query{}); !errors.Is(err, cluster.ErrShardUnavailable) {
			t.Fatalf("want ErrShardUnavailable during partition, got %v", err)
		}
		h.heal()
		waitFor(t, 5*time.Second, "breaker closed via health probes", func() bool {
			return breakerState.Value() == cluster.BreakerClosed
		})
		res, err := gremlin.RunScript(h.src, probeScript, nil)
		if err != nil {
			t.Fatalf("query after probe-driven recovery: %v", err)
		}
		if got := graphtest.RenderObjs(res); got != goldenOf(probeScript) {
			t.Fatalf("post-recovery query diverged\n got: %s\nwant: %s", got, goldenOf(probeScript))
		}
		h.close()
	})

	// Phase 5: hedged requests. With the threshold pinned low and latency
	// injected, the coordinator must fire hedges and still return the
	// golden answer (both attempts target the same replica here, so this
	// proves the trigger and first-response-wins merge, not a latency win).
	t.Run("hedging", func(t *testing.T) {
		cfg := calm()
		cfg.NoHedge = false
		cfg.HedgeMin = 20 * time.Millisecond
		cfg.HedgeMax = 20 * time.Millisecond
		h := startCluster(t, build, 2, cfg, faultReg)
		target := h.coord.ShardOf("p1")
		before := faultReg.Counter(fmt.Sprintf(`cluster_hedges_total{shard="%d"}`, target)).Value()
		h.chaos[target].SetDelay(60 * time.Millisecond)
		res, err := gremlin.RunScript(h.src, probeScript, nil)
		if err != nil {
			t.Fatalf("hedged query: %v", err)
		}
		if got := graphtest.RenderObjs(res); got != goldenOf(probeScript) {
			t.Fatalf("hedged query diverged\n got: %s\nwant: %s", got, goldenOf(probeScript))
		}
		after := faultReg.Counter(fmt.Sprintf(`cluster_hedges_total{shard="%d"}`, target)).Value()
		if after <= before {
			t.Fatalf("no hedges fired under 60ms injected delay (hedges %d -> %d)", before, after)
		}
		h.heal()
		h.close()
	})

	// Phase 6: degraded mode — the only sanctioned partial-result path.
	// Partials must be exactly "everything the live shards own" and must
	// be marked via the counter and the PartialReport.
	t.Run("degraded", func(t *testing.T) {
		cfg := calm()
		cfg.Retries = -1 // fail over to partials fast
		cfg.Degraded = true
		reg := telemetry.NewRegistry()
		h := startCluster(t, build, 3, cfg, reg)
		target := h.coord.ShardOf("p1")
		h.chaos[target].SetPartitioned(true)

		pctx, report := cluster.WithPartialReport(ctx)
		got, err := h.coord.V(pctx, &graph.Query{})
		if err != nil {
			t.Fatalf("degraded V: %v", err)
		}
		var want []string
		for _, v := range rawV {
			if h.coord.ShardOf(v.ID) != target {
				want = append(want, v.ID)
			}
		}
		sort.Strings(want)
		if g, w := sortedIDs(got), strings.Join(want, ","); g != w {
			t.Fatalf("degraded V partial mismatch\n got: %s\nwant: %s", g, w)
		}
		if reg.Counter("cluster_partial_results_total").Value() == 0 {
			t.Fatal("degraded read did not mark the partial-results counter")
		}
		fails := report.Failures()
		if len(fails) == 0 {
			t.Fatal("degraded read did not record the skipped shard in the PartialReport")
		}
		for _, f := range fails {
			if f.Shard != target {
				t.Fatalf("PartialReport names shard %d, want %d", f.Shard, target)
			}
		}
		// Point reads routed to the dead shard yield nil slots, never
		// fabricated data.
		els, err := h.coord.VerticesByIDs(pctx, []string{"p1"}, &graph.Query{})
		if err != nil {
			t.Fatalf("degraded VerticesByIDs: %v", err)
		}
		if len(els) != 1 || els[0] != nil {
			t.Fatalf("degraded point read to dead shard returned %v, want one nil slot", els)
		}
		h.heal()
		h.close()
	})

	// Phase 7: observability — the fault phases' breaker transitions and
	// retry/hedge counts must be visible through a gserver fronting the
	// coordinator, via the standard !metrics control request.
	t.Run("metrics-observability", func(t *testing.T) {
		h := startCluster(t, build, 2, calm(), faultReg)
		front := gserver.NewWithConfig(h.src, gserver.Config{Registry: faultReg})
		addr, err := front.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("front listen: %v", err)
		}
		defer front.Close()
		cl, err := gserver.Dial(addr)
		if err != nil {
			t.Fatalf("front dial: %v", err)
		}
		defer cl.Close()
		m, err := cl.Metrics()
		if err != nil {
			t.Fatalf("!metrics: %v", err)
		}
		for _, prefix := range []string{
			"cluster_retries_total",
			"cluster_hedges_total",
			"cluster_breaker_opens_total",
		} {
			if sumByPrefix(m, prefix) == 0 {
				t.Fatalf("%s not observable via !metrics after fault phases", prefix)
			}
		}
		if sumByPrefix(m, "cluster_requests_total") == 0 {
			t.Fatal("cluster request counters not observable via !metrics")
		}
		h.close()
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
