// Differential conformance for the cost-based planner. The planner makes
// physical choices — fan-out label order, distinct-endpoint scan resolution,
// batch chunk sizing — from catalog statistics, and every one of them must be
// invisible in results: the same battery runs against a statistics-backed
// source at parallelism 1/2/8, cold and warm plan cache, and must reproduce
// the static (no statistics) serial golden BIT-IDENTICALLY — same objects in
// the same order, same per-step traverser counts in profile() reports modulo
// the planner's plan annotations. A non-vacuity check asserts the planner
// actually changed at least one physical plan, so the suite cannot pass by
// the cost model silently doing nothing.
package graphtest

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"db2graph/internal/graph"
	"db2graph/internal/gremlin"
	"db2graph/internal/telemetry"
)

// plannerScripts extends the differential battery with shapes that trigger
// each planner decision on the skewed dataset: hub-heavy hops (scanresolve),
// multi-label fan-outs with asymmetric cardinalities (label ordering), and
// dense hops (chunk hints), plus limit/both variants that exercise the
// decisions' safety gates.
var plannerScripts = []string{
	`g.V().out('follows')`,
	`g.V().in('likes')`,
	`g.V().out('follows').values('name')`,
	`g.V().out('mentions','hasDisease')`,
	`g.V().out('mentions','follows').count()`,
	`g.V().out('mentions').limit(5)`,
	`g.V().both('follows')`,
	`g.V('h1').in('follows').out('follows')`,
	`g.V().out('mentions').dedup().count()`,
	`g.V().hasLabel('user').out('follows').in('likes').count()`,
}

// PlannerDataset returns the skewed-degree graph the planner suite runs on:
// the canonical dataset plus a hub ("h1") that every user follows and that
// likes every user back, and a dense user-to-user mention clique. The skew
// pushes the hub hops over the planner's scanresolve duplicate-ratio
// threshold and the mention hop over its chunk-hint fan-out threshold.
func PlannerDataset() (vertices, edges []*graph.Element) {
	vertices, edges = Dataset()
	vertices = append(vertices, &graph.Element{ID: "h1", Label: "topic"})
	const users = 24
	for i := 1; i <= users; i++ {
		u := fmt.Sprintf("u%d", i)
		vertices = append(vertices, &graph.Element{ID: u, Label: "user"})
		edges = append(edges,
			&graph.Element{ID: fmt.Sprintf("f%d", i), Label: "follows", OutV: u, InV: "h1", IsEdge: true},
			&graph.Element{ID: fmt.Sprintf("l%d", i), Label: "likes", OutV: "h1", InV: u, IsEdge: true},
		)
		for j := 1; j <= users; j++ {
			if i == j {
				continue
			}
			edges = append(edges, &graph.Element{
				ID:    fmt.Sprintf("m%d_%d", i, j),
				Label: "mentions", OutV: u, InV: fmt.Sprintf("u%d", j), IsEdge: true,
			})
		}
	}
	return vertices, edges
}

// normalizePlannerName strips the planner's physical annotations from a
// profiled step name and canonicalizes the argument list order, so a costed
// plan's profile compares equal to the static golden exactly when the
// traverser flow is identical.
func normalizePlannerName(name string) string {
	if i := strings.Index(name, "+scanresolve"); i >= 0 {
		name = name[:i] + name[i+len("+scanresolve"):]
	}
	if i := strings.Index(name, "+hint:"); i >= 0 {
		j := i + len("+hint:")
		for j < len(name) && name[j] >= '0' && name[j] <= '9' {
			j++
		}
		name = name[:i] + name[j:]
	}
	// The planner may reorder fan-out labels; sort the argument list on both
	// sides of the comparison.
	if o := strings.Index(name, "("); o >= 0 {
		if cl := strings.Index(name[o:], ")"); cl > 0 {
			args := strings.Split(name[o+1:o+cl], ",")
			sort.Strings(args)
			name = name[:o+1] + strings.Join(args, ",") + name[o+cl:]
		}
	}
	return name
}

// renderPlannerProfile is renderProfile with planner annotations normalized
// away.
func renderPlannerProfile(p *telemetry.Profile) string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = fmt.Sprintf("%s[calls=%d,in=%d,out=%d]", normalizePlannerName(s.Name), s.Calls, s.In, s.Out)
	}
	return strings.Join(parts, " -> ")
}

// RunPlannerDifferential executes the planner differential suite against a
// backend built by build.
func RunPlannerDifferential(t *testing.T, build func(vertices, edges []*graph.Element) (graph.Backend, error)) {
	t.Helper()
	vs, es := PlannerDataset()
	b, err := build(vs, es)
	if err != nil {
		t.Fatalf("build backend: %v", err)
	}
	scripts := append(DifferentialScripts(), plannerScripts...)

	// Golden pass: serial, no statistics, no plan cache, batched lookups
	// through the generic fallback adapter — the pure static semantics.
	golden := gremlin.NewSource(graph.FallbackBatch(b))
	wantRes := make([]string, len(scripts))
	wantProf := make([]string, len(scripts))
	for i, script := range scripts {
		res, err := gremlin.RunScript(golden, script, nil)
		if err != nil {
			t.Fatalf("golden %q: %v", script, err)
		}
		wantRes[i] = renderObjs(res)
		pres, err := gremlin.RunScript(golden, script+".profile()", nil)
		if err != nil {
			t.Fatalf("golden %q profile: %v", script, err)
		}
		wantProf[i] = renderPlannerProfile(pres[0].(*telemetry.Profile))
	}

	// Costed passes: statistics collected via the backend's AnalyzeStats
	// fast path (or the generic collector), plans costed and cached.
	sp := graph.NewStatsProvider(b)
	if _, err := sp.Analyze(context.Background()); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	pc := gremlin.NewPlanCache(0)
	for _, par := range []int{1, 2, 8} {
		name := fmt.Sprintf("par=%d", par)
		src := gremlin.NewSource(b).WithParallelism(par).WithPlanCache(pc).WithStats(sp)
		for round := 0; round < 2; round++ { // round 1 hits the plan cache
			for i, script := range scripts {
				res, err := gremlin.RunScript(src, script, nil)
				if err != nil {
					t.Fatalf("%s round %d %q: %v", name, round, script, err)
				}
				if got := renderObjs(res); got != wantRes[i] {
					t.Fatalf("%s round %d %q diverged\n got: %s\nwant: %s",
						name, round, script, got, wantRes[i])
				}
				pres, err := gremlin.RunScript(src, script+".profile()", nil)
				if err != nil {
					t.Fatalf("%s round %d %q profile: %v", name, round, script, err)
				}
				if got := renderPlannerProfile(pres[0].(*telemetry.Profile)); got != wantProf[i] {
					t.Fatalf("%s round %d %q profile diverged\n got: %s\nwant: %s",
						name, round, script, got, wantProf[i])
				}
			}
		}
	}
	if stats := pc.Stats(); stats.Hits == 0 {
		t.Fatalf("plan cache never hit: %+v", stats)
	}

	// Non-vacuity: the cost model must have made each kind of physical
	// decision somewhere in the battery, or the suite proves nothing.
	decisions := map[string]bool{}
	src := gremlin.NewSource(b).WithStats(sp)
	for _, script := range scripts {
		res, err := gremlin.RunScript(src, script+".explain()", nil)
		if err != nil {
			t.Fatalf("explain %q: %v", script, err)
		}
		rep, ok := res[0].(*gremlin.ExplainReport)
		if !ok {
			t.Fatalf("explain %q returned %T, want *ExplainReport", script, res[0])
		}
		if !rep.Costed {
			t.Fatalf("explain %q: report not costed despite statistics", script)
		}
		for _, n := range rep.Nodes {
			for _, note := range n.Notes {
				switch {
				case strings.HasPrefix(note, "scanresolve"):
					decisions["scanresolve"] = true
				case strings.HasPrefix(note, "labels ordered"):
					decisions["labelorder"] = true
				case strings.HasPrefix(note, "chunk hint"):
					decisions["chunkhint"] = true
				}
			}
		}
	}
	for _, d := range []string{"scanresolve", "labelorder", "chunkhint"} {
		if !decisions[d] {
			t.Fatalf("planner made no %q decision anywhere in the battery; differential is vacuous", d)
		}
	}
}
