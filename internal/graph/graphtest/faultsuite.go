package graphtest

import (
	"context"
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"

	"db2graph/internal/graph"
	"db2graph/internal/gremlin"
	"db2graph/internal/wal"
)

// methodQueries maps each Backend method to a Gremlin script whose optimized
// plan calls it: the adjacency methods via GSA traversal steps, the Agg
// methods via the aggregate-pushdown strategy.
var methodQueries = map[string]string{
	"V":              "g.V()",
	"E":              "g.E()",
	"VertexEdges":    "g.V('p1').out('hasDisease')",
	"EdgeVertices":   "g.E('e1').inV()",
	"AggV":           "g.V().count()",
	"AggE":           "g.E().count()",
	"AggVertexEdges": "g.V('p1').outE().count()",
}

// RunFaults is the fault-injection conformance suite. It wraps the backend
// under test in a FaultBackend and, for every Backend method, asserts that
// an injected error propagates to the query result, that an injected panic
// is isolated into an error by the engine (never a crash), and that the
// backend answers normally again once the fault is cleared. It also checks
// that injected latency respects a per-query deadline. build receives the
// standard Dataset, like Run.
func RunFaults(t *testing.T, build func(vertices, edges []*graph.Element) (graph.Backend, error)) {
	vertices, edges := Dataset()
	inner, err := build(vertices, edges)
	if err != nil {
		t.Fatalf("build backend: %v", err)
	}
	fb := WrapFaults(inner, 1)
	src := gremlin.NewSource(fb)
	run := func(ctx context.Context, script string) ([]any, error) {
		return gremlin.RunScriptCtx(ctx, src, script, nil)
	}

	for method, script := range methodQueries {
		t.Run(method, func(t *testing.T) {
			ctx := context.Background()

			// Baseline: the script must actually reach the method, else the
			// assertions below would pass vacuously.
			fb.Reset()
			if _, err := run(ctx, script); err != nil {
				t.Fatalf("baseline %q: %v", script, err)
			}
			if fb.Calls(method) == 0 {
				t.Fatalf("query %q never called %s; suite wiring is broken", script, method)
			}

			// Injected error propagates as a query error.
			fb.Reset()
			fb.Inject(method, FaultPoint{Err: ErrInjected})
			if _, err := run(ctx, script); !errors.Is(err, ErrInjected) {
				t.Fatalf("%s error injection: got %v, want ErrInjected", method, err)
			}

			// Injected panic is recovered into a *gremlin.PanicError.
			fb.Reset()
			fb.Inject(method, FaultPoint{Panic: "backend exploded"})
			_, err := run(ctx, script)
			var pe *gremlin.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("%s panic injection: got %v, want *gremlin.PanicError", method, err)
			}
			if pe.Value != "backend exploded" || pe.Stack == "" {
				t.Fatalf("%s panic error lacks value/stack: %+v", method, pe)
			}

			// Clearing the fault restores service on the same backend value.
			fb.Reset()
			if _, err := run(ctx, script); err != nil {
				t.Fatalf("%s after Reset: %v", method, err)
			}

			// Injected latency loses to a per-query deadline.
			fb.Reset()
			fb.Inject(method, FaultPoint{Delay: 10 * time.Second})
			dctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err = run(dctx, script)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("%s latency injection: got %v, want DeadlineExceeded", method, err)
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("%s latency injection blocked %v; delay must be context-aware", method, elapsed)
			}
		})
	}

	// Storage faults — the error classes a durable kvstore surfaces (disk
	// full, read-only degradation, checksum failure) — must flow through
	// the whole query path with their errors.Is identity intact and must
	// never be converted into a panic. Servers above classify them with
	// errors.Is to produce stable client-facing codes, so a backend or
	// engine layer that re-wraps with %v instead of %w breaks this test.
	t.Run("storage-errors", func(t *testing.T) {
		storageFaults := []struct {
			name string
			err  error
			is   error
		}{
			{"enospc", fmt.Errorf("%w: append wal: %w", wal.ErrIO, syscall.ENOSPC), syscall.ENOSPC},
			{"torn-write", fmt.Errorf("%w: fsync wal: %w", wal.ErrIO, syscall.EIO), wal.ErrIO},
			{"read-only", fmt.Errorf("%w: first failure: disk full", wal.ErrReadOnly), wal.ErrReadOnly},
			{"corrupt", fmt.Errorf("%w: adjacency blob checksum", wal.ErrCorrupt), wal.ErrCorrupt},
		}
		ctx := context.Background()
		for _, sf := range storageFaults {
			for method, script := range methodQueries {
				fb.Reset()
				fb.Inject(method, FaultPoint{Err: sf.err})
				_, err := run(ctx, script)
				if err == nil {
					t.Fatalf("%s via %s: storage fault swallowed", sf.name, method)
				}
				var pe *gremlin.PanicError
				if errors.As(err, &pe) {
					t.Fatalf("%s via %s: storage error became a panic: %v", sf.name, method, err)
				}
				if !errors.Is(err, sf.is) {
					t.Fatalf("%s via %s: errors.Is identity lost: %v", sf.name, method, err)
				}
			}
		}
		fb.Reset()
	})

	// Probabilistic and After-gated faults are deterministic under the seed.
	t.Run("deterministic-prob", func(t *testing.T) {
		fb.Reset()
		fb.Inject("V", FaultPoint{Err: ErrInjected, Prob: 0.5, After: 1})
		ctx := context.Background()
		var pattern []bool
		for i := 0; i < 8; i++ {
			_, err := run(ctx, "g.V('p1')")
			pattern = append(pattern, errors.Is(err, ErrInjected))
		}
		if pattern[0] {
			t.Fatalf("After=1 should suppress the first call's fault")
		}
		fired := 0
		for _, f := range pattern {
			if f {
				fired++
			}
		}
		if fired == 0 || fired == len(pattern)-1 {
			t.Fatalf("Prob=0.5 over %d calls fired %d times; seed draw looks broken", len(pattern)-1, fired)
		}
		fb.Reset()
	})
}
