// Cache invalidation conformance: interleaves mutations with cached
// traversals and proves read-your-writes — a query issued after a mutation
// completes must observe it, no matter what the plan cache, the backend's
// topology/adjacency caches, or batched expansion have memoized from the
// pre-mutation state. A reference MemBackend mirror receives every mutation
// and supplies the expected (order-insensitive) results. A final phase runs
// readers against a concurrent mutator under -race: results must always be
// consistent with some prefix of the mutation sequence, and the post-join
// state must match the mirror exactly.
package graphtest

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"db2graph/internal/graph"
	"db2graph/internal/gremlin"
	"db2graph/internal/sql/types"
)

// invalidationScripts cover the cached read paths: vertex lookups (vertex
// caches), neighbor expansion (adjacency caches and batched multi-gets), and
// aggregate pushdowns, all as scripts so the plan cache engages too.
var invalidationScripts = []string{
	`g.V()`,
	`g.V().count()`,
	`g.V().hasLabel('patient')`,
	`g.V().out()`,
	`g.V().in('isa')`,
	`g.V().both().dedup()`,
	`g.V().outE()`,
	`g.V('p1').out('hasDisease').out('isa')`,
	`g.V().out().out().count()`,
	`g.E().count()`,
}

// renderSorted renders traversal results order-insensitively: backends order
// scans differently (table order vs key order), and freshness — not order —
// is what this suite proves.
func renderSorted(objs []any) string {
	parts := make([]string, len(objs))
	for i, o := range objs {
		parts[i] = gremlin.Display(o)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// RunCacheInvalidation executes the invalidation suite. build returns the
// backend plus the mutation interface for its underlying store (the backend
// itself for the standalone databases; a SQL-INSERT adapter for the
// overlay, whose writes go through DML like any other Db2 client's).
func RunCacheInvalidation(t *testing.T, build func(vertices, edges []*graph.Element) (graph.Backend, graph.Mutable, error)) {
	t.Helper()
	vs, es := Dataset()
	b, mut, err := build(vs, es)
	if err != nil {
		t.Fatalf("build backend: %v", err)
	}

	// Mirror oracle: plain MemBackend, mutated in lockstep.
	mirror := graph.NewMemBackend()
	for _, v := range vs {
		if err := mirror.AddVertex(v); err != nil {
			t.Fatalf("mirror vertex: %v", err)
		}
	}
	for _, e := range es {
		if err := mirror.AddEdge(e); err != nil {
			t.Fatalf("mirror edge: %v", err)
		}
	}
	msrc := gremlin.NewSource(mirror)

	pc := gremlin.NewPlanCache(0)
	sources := []*gremlin.Source{
		gremlin.NewSource(b).WithParallelism(1).WithPlanCache(pc).WithBatchSize(2),
		gremlin.NewSource(b).WithParallelism(4).WithPlanCache(pc),
		gremlin.NewSource(b).WithParallelism(8).WithPlanCache(pc).WithBatchSize(3),
	}
	check := func(phase string) {
		t.Helper()
		for _, script := range invalidationScripts {
			want, err := gremlin.RunScript(msrc, script, nil)
			if err != nil {
				t.Fatalf("%s: mirror %q: %v", phase, script, err)
			}
			for si, src := range sources {
				got, err := gremlin.RunScript(src, script, nil)
				if err != nil {
					t.Fatalf("%s: source %d %q: %v", phase, si, script, err)
				}
				if g, w := renderSorted(got), renderSorted(want); g != w {
					t.Fatalf("%s: source %d %q stale or wrong\n got: %s\nwant: %s",
						phase, si, script, g, w)
				}
			}
		}
	}
	prop := func(kv ...any) map[string]types.Value {
		out := map[string]types.Value{}
		for i := 0; i+1 < len(kv); i += 2 {
			v, _ := types.FromGo(kv[i+1])
			out[kv[i].(string)] = v
		}
		return out
	}
	addVertex := func(el *graph.Element) {
		t.Helper()
		if err := mut.AddVertex(el); err != nil {
			t.Fatalf("AddVertex(%s): %v", el.ID, err)
		}
		if err := mirror.AddVertex(el); err != nil {
			t.Fatalf("mirror AddVertex(%s): %v", el.ID, err)
		}
	}
	addEdge := func(el *graph.Element) {
		t.Helper()
		if err := mut.AddEdge(el); err != nil {
			t.Fatalf("AddEdge(%s): %v", el.ID, err)
		}
		if err := mirror.AddEdge(el); err != nil {
			t.Fatalf("mirror AddEdge(%s): %v", el.ID, err)
		}
	}

	// Phase 1: warm every cache, then interleave mutations with cached
	// traversals — each mutation must be visible to the very next query.
	check("cold")
	check("warm") // second pass served by caches
	steps := []func(){
		func() {
			addVertex(&graph.Element{ID: "p4", Label: "patient",
				Props: prop("patientID", 4, "name", "Dave", "subscriptionID", 400)})
		},
		func() {
			addEdge(&graph.Element{ID: "e7", Label: "hasDisease", OutV: "p4", InV: "d12",
				Props: prop("description", "2021"), IsEdge: true})
		},
		func() {
			addVertex(&graph.Element{ID: "d14", Label: "disease",
				Props: prop("conceptName", "type 1 diabetes")})
		},
		func() {
			addEdge(&graph.Element{ID: "e8", Label: "isa", OutV: "d14", InV: "d10", IsEdge: true})
		},
		func() {
			addEdge(&graph.Element{ID: "e9", Label: "hasDisease", OutV: "p2", InV: "d14",
				Props: prop("description", "2022"), IsEdge: true})
		},
	}
	for i, step := range steps {
		step()
		check(fmt.Sprintf("mutation %d", i+1))
	}

	// Phase 2: readers race a concurrent mutator. Edges only ever get added,
	// so every observed edge count must fall within [before, before+n] — a
	// cached pre-mutation answer served post-mutation would show up here as
	// a count below a previously observed one.
	const concurrentEdges = 16
	// Two probes: a pushed-down store count, and a materializing expansion
	// whose result length is the isa-out-degree of d12 — the latter flows
	// through the batched adjacency-cache path end to end.
	countEdges := func(src *gremlin.Source) (int64, error) {
		res, err := gremlin.RunScript(src, `g.E().count()`, nil)
		if err != nil {
			return 0, err
		}
		return res[0].(types.Value).I, nil
	}
	countExpand := func(src *gremlin.Source) (int64, error) {
		res, err := gremlin.RunScript(src, `g.V('d12').out('isa').id()`, nil)
		if err != nil {
			return 0, err
		}
		return int64(len(res)), nil
	}
	before, err := countEdges(sources[0])
	if err != nil {
		t.Fatalf("edge count: %v", err)
	}
	expandBefore, err := countExpand(sources[0])
	if err != nil {
		t.Fatalf("expansion count: %v", err)
	}
	newEdges := make([]*graph.Element, concurrentEdges)
	for i := range newEdges {
		// Connect existing vertices only: backends may require both
		// endpoints to be present.
		newEdges[i] = &graph.Element{ID: fmt.Sprintf("ce%d", i), Label: "isa",
			OutV: "d12", InV: "d9", IsEdge: true}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, e := range newEdges {
			if err := mut.AddEdge(e); err != nil {
				t.Errorf("concurrent AddEdge(%s): %v", e.ID, err)
				return
			}
		}
	}()
	for si := range sources {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			lastCount, lastExpand := int64(-1), int64(-1)
			for r := 0; r < 30; r++ {
				n, err := countEdges(sources[si])
				if err != nil {
					t.Errorf("reader %d round %d: %v", si, r, err)
					return
				}
				if n < before || n > before+concurrentEdges {
					t.Errorf("reader %d round %d: edge count %d outside [%d, %d]",
						si, r, n, before, before+concurrentEdges)
					return
				}
				if n < lastCount {
					t.Errorf("reader %d round %d: edge count went backwards (%d after %d): stale cache",
						si, r, n, lastCount)
					return
				}
				lastCount = n
				x, err := countExpand(sources[si])
				if err != nil {
					t.Errorf("reader %d round %d: %v", si, r, err)
					return
				}
				if x < expandBefore || x > expandBefore+concurrentEdges {
					t.Errorf("reader %d round %d: d12 out-degree %d outside [%d, %d]",
						si, r, x, expandBefore, expandBefore+concurrentEdges)
					return
				}
				if x < lastExpand {
					t.Errorf("reader %d round %d: d12 out-degree went backwards (%d after %d): stale cache",
						si, r, x, lastExpand)
					return
				}
				lastExpand = x
			}
		}(si)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for _, e := range newEdges {
		if err := mirror.AddEdge(e); err != nil {
			t.Fatalf("mirror AddEdge(%s): %v", e.ID, err)
		}
	}
	check("after concurrent mutator")
}
