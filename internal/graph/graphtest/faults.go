// Fault injection for graph.Backend implementations. FaultBackend wraps any
// backend and injects configurable errors, panics, and latency at individual
// Backend methods, deterministically under a caller-provided seed. The
// RunFaults conformance suite uses it to prove that a fault at any layer of
// a backend surfaces as a per-query error — never a crash, never a hang —
// which is the contract the gserver error-code mapping depends on.
package graphtest

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"db2graph/internal/graph"
	"db2graph/internal/sql/types"
)

// ErrInjected is the default error returned by an injected fault. Tests
// match it with errors.Is.
var ErrInjected = errors.New("graphtest: injected fault")

// FaultPoint configures the fault fired at one Backend method.
type FaultPoint struct {
	// Err, when non-nil, is returned from the method.
	Err error
	// Panic, when non-nil, is the value passed to panic(). Takes
	// precedence over Err.
	Panic any
	// Delay is slept (context-aware) before the fault or the real call.
	Delay time.Duration
	// Prob is the firing probability in (0, 1]. Zero means always fire.
	// Draws come from the wrapper's seeded generator, so runs are
	// reproducible.
	Prob float64
	// After suppresses the fault for the first After calls to the method.
	After int
}

// faultMethods enumerates the Backend methods a fault can be armed at.
var faultMethods = []string{"V", "E", "VertexEdges", "EdgeVertices", "AggV", "AggE", "AggVertexEdges"}

// FaultBackend wraps a graph.Backend with per-method fault injection. The
// zero rules state is transparent pass-through.
//
// Safe for concurrent use from many goroutines: rules are behind an
// RWMutex so the per-call hot path only read-locks, call counters are
// atomics, and probability draws serialize on a dedicated mutex (math/rand
// generators are not goroutine-safe). RunConcurrent hammers it under the
// race detector.
type FaultBackend struct {
	inner graph.Backend

	rngMu sync.Mutex
	rng   *rand.Rand

	mu     sync.RWMutex
	rules  map[string]FaultPoint
	ncalls map[string]*atomic.Int64
}

// WrapFaults wraps inner. The seed fixes the probability draws so a failing
// run can be replayed exactly.
func WrapFaults(inner graph.Backend, seed int64) *FaultBackend {
	f := &FaultBackend{
		inner:  inner,
		rng:    rand.New(rand.NewSource(seed)),
		rules:  map[string]FaultPoint{},
		ncalls: map[string]*atomic.Int64{},
	}
	for _, m := range faultMethods {
		f.ncalls[m] = &atomic.Int64{}
	}
	return f
}

// Inject arms a fault at the named Backend method ("V", "E", "VertexEdges",
// "EdgeVertices", "AggV", "AggE", "AggVertexEdges"). It replaces any
// existing rule for that method and resets its call counter.
func (f *FaultBackend) Inject(method string, fp FaultPoint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules[method] = fp
	f.ncalls[method] = &atomic.Int64{}
}

// Reset disarms all faults and zeroes the call counters.
func (f *FaultBackend) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = map[string]FaultPoint{}
	for _, m := range faultMethods {
		f.ncalls[m] = &atomic.Int64{}
	}
}

// Calls reports how many times the named method has been entered since the
// last Inject/Reset for it.
func (f *FaultBackend) Calls(method string) int {
	f.mu.RLock()
	n := f.ncalls[method]
	f.mu.RUnlock()
	if n == nil {
		return 0
	}
	return int(n.Load())
}

// fire decides whether the method's fault triggers on this call and applies
// the delay. A non-nil returned error (or a panic) is the injected fault.
func (f *FaultBackend) fire(ctx context.Context, method string) error {
	f.mu.RLock()
	n := f.ncalls[method]
	fp, ok := f.rules[method]
	f.mu.RUnlock()
	calls := n.Add(1)
	if !ok {
		return nil
	}
	fires := calls > int64(fp.After)
	if fires && fp.Prob > 0 && fp.Prob < 1 {
		f.rngMu.Lock()
		fires = f.rng.Float64() < fp.Prob
		f.rngMu.Unlock()
	}
	if !fires {
		return nil
	}
	if fp.Delay > 0 {
		// Injected latency must never outlive the query: wait on ctx.Done()
		// alongside the timer, and bail out deterministically when the
		// context is already done (a two-way select with both channels ready
		// picks at random).
		if err := graph.Interrupted(ctx); err != nil {
			return err
		}
		t := time.NewTimer(fp.Delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return graph.Interrupted(ctx)
		case <-t.C:
		}
	}
	if fp.Panic != nil {
		panic(fp.Panic)
	}
	return fp.Err
}

// Name implements graph.Backend.
func (f *FaultBackend) Name() string { return "faulty(" + f.inner.Name() + ")" }

// V implements graph.Backend.
func (f *FaultBackend) V(ctx context.Context, q *graph.Query) ([]*graph.Element, error) {
	if err := f.fire(ctx, "V"); err != nil {
		return nil, err
	}
	return f.inner.V(ctx, q)
}

// E implements graph.Backend.
func (f *FaultBackend) E(ctx context.Context, q *graph.Query) ([]*graph.Element, error) {
	if err := f.fire(ctx, "E"); err != nil {
		return nil, err
	}
	return f.inner.E(ctx, q)
}

// VertexEdges implements graph.Backend.
func (f *FaultBackend) VertexEdges(ctx context.Context, vids []string, dir graph.Direction, q *graph.Query) ([]*graph.Element, error) {
	if err := f.fire(ctx, "VertexEdges"); err != nil {
		return nil, err
	}
	return f.inner.VertexEdges(ctx, vids, dir, q)
}

// EdgeVertices implements graph.Backend.
func (f *FaultBackend) EdgeVertices(ctx context.Context, edges []*graph.Element, dir graph.Direction, q *graph.Query) ([]*graph.Element, error) {
	if err := f.fire(ctx, "EdgeVertices"); err != nil {
		return nil, err
	}
	return f.inner.EdgeVertices(ctx, edges, dir, q)
}

// AggV implements graph.Backend.
func (f *FaultBackend) AggV(ctx context.Context, q *graph.Query, agg graph.Agg) (types.Value, error) {
	if err := f.fire(ctx, "AggV"); err != nil {
		return types.Null, err
	}
	return f.inner.AggV(ctx, q, agg)
}

// AggE implements graph.Backend.
func (f *FaultBackend) AggE(ctx context.Context, q *graph.Query, agg graph.Agg) (types.Value, error) {
	if err := f.fire(ctx, "AggE"); err != nil {
		return types.Null, err
	}
	return f.inner.AggE(ctx, q, agg)
}

// AggVertexEdges implements graph.Backend.
func (f *FaultBackend) AggVertexEdges(ctx context.Context, vids []string, dir graph.Direction, q *graph.Query, agg graph.Agg) (types.Value, error) {
	if err := f.fire(ctx, "AggVertexEdges"); err != nil {
		return types.Null, err
	}
	return f.inner.AggVertexEdges(ctx, vids, dir, q, agg)
}

var _ graph.Backend = (*FaultBackend)(nil)
