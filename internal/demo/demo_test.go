package demo

import (
	"testing"

	"db2graph/internal/core"
	"db2graph/internal/overlay"
)

func TestHealthcareDatabaseIsConsistent(t *testing.T) {
	db, cfg, err := HealthcareDatabase()
	if err != nil {
		t.Fatal(err)
	}
	// The overlay must resolve and open against the schema.
	g, err := core.Open(db, cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run("g.V().hasLabel('patient').count()")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("res = %v", res)
	}
	// AutoOverlay over the same schema also resolves (PK/FKs are sound).
	auto, err := overlay.Generate(db.Catalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := overlay.Resolve(auto, db); err != nil {
		t.Fatal(err)
	}
}
