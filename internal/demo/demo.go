// Package demo provides the paper's Section 4 health-care scenario as a
// ready-made database plus overlay configuration. It is shared by the
// Gremlin console's -demo mode and the examples.
package demo

import (
	"db2graph/internal/overlay"
	"db2graph/internal/sql/engine"
)

// Schema is the relational schema and data of Figure 2(a), extended with a
// slightly deeper disease ontology so multi-hop traversals have room.
const Schema = `
CREATE TABLE Patient (
	patientID BIGINT PRIMARY KEY,
	name VARCHAR(100),
	address VARCHAR(200),
	subscriptionID BIGINT
);
CREATE TABLE Disease (
	diseaseID BIGINT PRIMARY KEY,
	conceptCode VARCHAR(40),
	conceptName VARCHAR(100)
);
CREATE TABLE HasDisease (
	patientID BIGINT NOT NULL,
	diseaseID BIGINT NOT NULL,
	description VARCHAR(200),
	PRIMARY KEY (patientID, diseaseID),
	FOREIGN KEY (patientID) REFERENCES Patient(patientID),
	FOREIGN KEY (diseaseID) REFERENCES Disease(diseaseID)
);
CREATE TABLE DiseaseOntology (
	sourceID BIGINT NOT NULL,
	targetID BIGINT NOT NULL,
	type VARCHAR(20),
	description VARCHAR(100),
	PRIMARY KEY (sourceID, targetID)
);
CREATE TABLE DeviceData (
	subscriptionID BIGINT NOT NULL,
	day BIGINT NOT NULL,
	steps BIGINT,
	exerciseMinutes BIGINT,
	PRIMARY KEY (subscriptionID, day)
);
CREATE INDEX idx_hd_disease ON HasDisease (diseaseID);
CREATE INDEX idx_do_target ON DiseaseOntology (targetID);
CREATE INDEX idx_dd_sub ON DeviceData (subscriptionID);

INSERT INTO Patient VALUES
	(1, 'Alice', '12 Elm St', 100),
	(2, 'Bob', '4 Oak Ave', 200),
	(3, 'Carol', '9 Pine Rd', 300),
	(4, 'Dave', '77 Birch Ln', 400);
INSERT INTO Disease VALUES
	(9,  'C001', 'metabolic disease'),
	(10, 'C010', 'diabetes'),
	(11, 'C011', 'type 2 diabetes'),
	(12, 'C020', 'hypertension'),
	(13, 'C012', 'mody diabetes');
INSERT INTO HasDisease VALUES
	(1, 11, 'diagnosed 2018'),
	(2, 10, 'diagnosed 2019'),
	(3, 12, 'diagnosed 2020'),
	(4, 13, 'diagnosed 2021');
INSERT INTO DiseaseOntology VALUES
	(11, 10, 'isa', 'type 2 diabetes is a diabetes'),
	(13, 11, 'isa', 'mody is a type 2 diabetes'),
	(10, 9,  'isa', 'diabetes is a metabolic disease');
INSERT INTO DeviceData VALUES
	(100, 1, 4000, 30), (100, 2, 6000, 45),
	(200, 1, 9000, 60), (200, 2, 11000, 75),
	(300, 1, 2000, 10),
	(400, 1, 7000, 50), (400, 2, 3000, 20);
`

// OverlayJSON is the Section 5 overlay configuration.
const OverlayJSON = `{
  "v_tables": [
    {"table_name": "Patient", "prefixed_id": true, "id": "'patient'::patientID",
     "fix_label": true, "label": "'patient'",
     "properties": ["patientID", "name", "address", "subscriptionID"]},
    {"table_name": "Disease", "id": "diseaseID", "fix_label": true, "label": "'disease'",
     "properties": ["diseaseID", "conceptCode", "conceptName"]}
  ],
  "e_tables": [
    {"table_name": "DiseaseOntology", "src_v_table": "Disease", "src_v": "sourceID",
     "dst_v_table": "Disease", "dst_v": "targetID",
     "prefixed_edge_id": true, "id": "'ontology'::sourceID::targetID", "label": "type"},
    {"table_name": "HasDisease", "src_v_table": "Patient", "src_v": "'patient'::patientID",
     "dst_v_table": "Disease", "dst_v": "diseaseID",
     "implicit_edge_id": true, "fix_label": true, "label": "'hasDisease'"}
  ]
}`

// HealthcareDatabase builds the demo database and parses its overlay.
func HealthcareDatabase() (*engine.Database, *overlay.Config, error) {
	db := engine.New()
	if err := db.ExecScript(Schema); err != nil {
		return nil, nil, err
	}
	cfg, err := overlay.Parse([]byte(OverlayJSON))
	if err != nil {
		return nil, nil, err
	}
	return db, cfg, nil
}
