package kvstore

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"db2graph/internal/telemetry"
	"db2graph/internal/wal"
)

// dumpStore renders the full key space deterministically so two stores can
// be compared bit-for-bit.
func dumpStore(s *Store) string {
	var b strings.Builder
	s.Scan("", func(k string, v []byte) bool {
		fmt.Fprintf(&b, "%q=%x\n", k, v)
		return true
	})
	return b.String()
}

// TestReplicationDifferential is the kvstore-level replication differential
// suite: a durable primary under concurrent writers and checkpoints, an
// in-memory follower tailing its WAL. At every quiesce point the follower
// must be bit-identical to the primary — including across generation
// rotations shipped mid-stream.
func TestReplicationDifferential(t *testing.T) {
	fsys := wal.NewMemVFS()
	primary, err := OpenDurableVFS(fsys, "p", wal.EveryCommit(), telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	_, dir, ok := primary.ReplicationSource()
	if !ok {
		t.Fatal("durable cow store must expose a replication source")
	}

	replica := New()
	cur := wal.Cursor{}
	quiesce := func() {
		t.Helper()
		cur, err = SyncReplica(replica, fsys, dir, cur)
		if err != nil {
			t.Fatal(err)
		}
		end, err := wal.End(fsys, dir)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Less(end) {
			t.Fatalf("follower cursor %v short of end %v at quiesce", cur, end)
		}
	}

	const writers, phases, opsPer = 4, 5, 40
	for phase := 0; phase < phases; phase++ {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPer; i++ {
					k := fmt.Sprintf("k%02d-%03d", (w*7+i)%17, i)
					switch i % 5 {
					case 0, 1, 2:
						if err := primary.Put(k, []byte(fmt.Sprintf("v%d-%d-%d", phase, w, i))); err != nil {
							t.Error(err)
							return
						}
					case 3:
						if _, err := primary.Delete(k); err != nil {
							t.Error(err)
							return
						}
					default:
						b := NewBatch()
						b.Put(k+"/a", []byte{byte(phase), byte(w), byte(i)})
						b.Delete(k + "/a")
						b.Put(k+"/b", []byte("batched"))
						if err := primary.Apply(b); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}(w)
		}
		// A tailer racing the writers, plus a mid-phase checkpoint so the
		// rotation ships while records are in flight.
		stop := make(chan struct{})
		var tailWG sync.WaitGroup
		tailWG.Add(1)
		go func() {
			defer tailWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, err := SyncReplica(replica, fsys, dir, cur)
				if err != nil {
					t.Error(err)
					return
				}
				cur = c
				time.Sleep(time.Millisecond)
			}
		}()
		if phase%2 == 1 {
			if err := primary.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		wg.Wait()
		close(stop)
		tailWG.Wait()
		if t.Failed() {
			t.Fatal("writer or tailer failed")
		}
		quiesce()
		if p, r := dumpStore(primary), dumpStore(replica); p != r {
			t.Fatalf("phase %d: replica diverged from primary\nprimary:\n%s\nreplica:\n%s", phase, p, r)
		}
	}
}

// TestReplicaCatchUpAfterRetention parks a follower across two checkpoints
// (so retention deletes its cursor's generation), then checks SyncReplica
// bootstraps from the newest snapshot and converges bit-identically.
func TestReplicaCatchUpAfterRetention(t *testing.T) {
	fsys := wal.NewMemVFS()
	primary, err := OpenDurableVFS(fsys, "p", wal.EveryCommit(), telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	_, dir, _ := primary.ReplicationSource()

	replica := New()
	if err := primary.Put("before", []byte("1")); err != nil {
		t.Fatal(err)
	}
	cur, err := SyncReplica(replica, fsys, dir, wal.Cursor{})
	if err != nil {
		t.Fatal(err)
	}

	// Two checkpoints: retention keeps generations {N-1, N}, deleting the
	// generation the parked follower's cursor points into.
	for i := 0; i < 2; i++ {
		for j := 0; j < 10; j++ {
			if err := primary.Put(fmt.Sprintf("ckpt%d-%d", i, j), []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := primary.Delete(fmt.Sprintf("ckpt%d-3", i)); err != nil {
			t.Fatal(err)
		}
		if err := primary.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := wal.StreamFrom(fsys, dir, cur, nil); !errors.Is(err, wal.ErrCursorGone) {
		t.Fatalf("parked cursor should be gone, got %v", err)
	}
	if err := primary.Put("after", []byte("2")); err != nil {
		t.Fatal(err)
	}

	cur, err = SyncReplica(replica, fsys, dir, cur)
	if err != nil {
		t.Fatal(err)
	}
	if p, r := dumpStore(primary), dumpStore(replica); p != r {
		t.Fatalf("replica diverged after snapshot catch-up\nprimary:\n%s\nreplica:\n%s", p, r)
	}
	// And it keeps streaming incrementally from the bootstrapped cursor.
	if err := primary.Put("incremental", []byte("3")); err != nil {
		t.Fatal(err)
	}
	if _, err = SyncReplica(replica, fsys, dir, cur); err != nil {
		t.Fatal(err)
	}
	if p, r := dumpStore(primary), dumpStore(replica); p != r {
		t.Fatalf("replica diverged after incremental resume")
	}
}

// TestReplicationSourceGates verifies in-memory and LSM stores refuse to act
// as physical replication primaries, and that a fresh follower with no
// snapshot yet streams from genesis.
func TestReplicationSourceGates(t *testing.T) {
	if _, _, ok := New().ReplicationSource(); ok {
		t.Fatal("in-memory store must not expose a replication source")
	}
	fsys := wal.NewMemVFS()
	ls, err := OpenLSMVFS(fsys, "l", wal.EveryCommit(), telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	if _, _, ok := ls.ReplicationSource(); ok {
		t.Fatal("LSM store must not expose a physical replication source")
	}
	if err := ls.ApplyShipped(opsPut(nil, "k", []byte("v"))); err == nil {
		t.Fatal("LSM ApplyShipped must refuse")
	}
}
