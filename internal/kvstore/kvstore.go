// Package kvstore is an embedded ordered key-value store standing in for
// Oracle Berkeley DB, the storage backend the paper configures under
// JanusGraph. It offers ordered iteration, prefix scans, and approximate
// size accounting; the JanusGraph-style baseline (internal/janus) persists
// its serialized vertex and adjacency records here.
//
// A Store is in-memory by default (New). OpenDurable layers a checksummed
// write-ahead log plus checkpoint snapshots underneath, so the same Store
// API survives process crashes: every mutation is journaled before it is
// applied, and recovery on open replays the newest intact checkpoint plus
// the valid WAL suffix.
package kvstore

import (
	"fmt"
	"sync"

	"db2graph/internal/btree"
	"db2graph/internal/lsm"
	"db2graph/internal/wal"
)

// ErrReadOnly reports a write against a durable store that degraded to
// read-only after a persistent disk failure. It aliases wal.ErrReadOnly so
// every layer matches the same sentinel with errors.Is.
var ErrReadOnly = wal.ErrReadOnly

// Store is a thread-safe ordered key-value store, optionally backed by a
// write-ahead log (see OpenDurable) or by the LSM engine (see OpenLSM).
//
// Two engines share this surface: the default copy-on-write btree with
// WAL + checkpoint durability, and internal/lsm's log-structured merge
// engine with MVCC snapshots (lsm non-nil; the btree fields are unused).
// Callers — janus, gserver, the graph layers — are engine-agnostic.
type Store struct {
	mu    sync.RWMutex
	tree  *btree.Map[[]byte]
	bytes int64
	j     *journal // nil for purely in-memory stores
	lsm   *lsm.DB  // non-nil when the store is LSM-backed
}

// New creates an empty in-memory store. Its mutations never fail, but the
// error-returning signatures are shared with durable stores so callers
// handle both uniformly.
func New() *Store {
	return &Store{tree: btree.New[[]byte]()}
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	if s.lsm != nil {
		return s.lsm.Get(key)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.tree.Get(key)
	return v, ok
}

// applyPut mutates the tree and keeps the byte accounting exact: replacing
// a value charges the delta, inserting charges key+value. Callers hold mu.
func (s *Store) applyPut(key string, value []byte) {
	if old, ok := s.tree.Get(key); ok {
		s.bytes -= int64(len(old))
	} else {
		s.bytes += int64(len(key))
	}
	s.bytes += int64(len(value))
	// Copy so callers can reuse their buffer.
	cp := make([]byte, len(value))
	copy(cp, value)
	s.tree.Set(key, cp)
}

// applyDelete mutates the tree and refunds key+value bytes when the key was
// present. Callers hold mu.
func (s *Store) applyDelete(key string) bool {
	if old, ok := s.tree.Get(key); ok {
		s.bytes -= int64(len(key)) + int64(len(old))
	}
	return s.tree.Delete(key)
}

// Put stores value under key, replacing any previous value. On a durable
// store the write is journaled first and the call does not return success
// until it is durable under the store's sync policy.
func (s *Store) Put(key string, value []byte) error {
	if s.lsm != nil {
		return s.lsm.Put(key, value)
	}
	s.mu.Lock()
	var log *wal.Log
	var off int64
	if s.j != nil {
		var err error
		log, off, err = s.j.logOps(opsPut(nil, key, value))
		if err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.applyPut(key, value)
	s.mu.Unlock()
	if s.j != nil {
		return s.j.waitDurable(log, off)
	}
	return nil
}

// Delete removes key, reporting whether it was present. On an LSM store
// the presence check is a snapshot read taken just before the tombstone
// commits, so it is best-effort under concurrent writers to the same key.
func (s *Store) Delete(key string) (bool, error) {
	if s.lsm != nil {
		_, present := s.lsm.Get(key)
		if err := s.lsm.Delete(key); err != nil {
			return false, err
		}
		return present, nil
	}
	s.mu.Lock()
	var log *wal.Log
	var off int64
	if s.j != nil {
		var err error
		log, off, err = s.j.logOps(opsDelete(nil, key))
		if err != nil {
			s.mu.Unlock()
			return false, err
		}
	}
	ok := s.applyDelete(key)
	s.mu.Unlock()
	if s.j != nil {
		return ok, s.j.waitDurable(log, off)
	}
	return ok, nil
}

// MultiGet returns the values for keys, aligned with keys (nil for absent
// ones). The whole batch is served under a single read lock, so it is both
// atomic with respect to writers and cheaper than len(keys) Get calls — the
// sorted multi-get the batched janus adjacency path issues per chunk.
func (s *Store) MultiGet(keys []string) [][]byte {
	if s.lsm != nil {
		return s.lsm.MultiGet(keys)
	}
	out := make([][]byte, len(keys))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, k := range keys {
		if v, ok := s.tree.Get(k); ok {
			out[i] = v
		}
	}
	return out
}

// Len returns the number of keys. On an LSM store this is a full merged
// scan (O(n)); use sparingly.
func (s *Store) Len() int {
	if s.lsm != nil {
		return s.lsm.Len()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Len()
}

// ApproxBytes approximates the resident data size (keys + values). On the
// copy-on-write engine it is maintained incrementally by the overwrite and
// delete paths and must match a from-scratch recount at all times; on the
// LSM engine it includes not-yet-compacted shadowed versions.
func (s *Store) ApproxBytes() int64 {
	if s.lsm != nil {
		return s.lsm.ApproxBytes()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Scan visits every key >= start in order until fn returns false.
func (s *Store) Scan(start string, fn func(key string, value []byte) bool) {
	if s.lsm != nil {
		s.lsm.Scan(start, fn)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.tree.AscendRange(start, "", true, fn)
}

// ScanPrefix visits every key with the given prefix in order.
func (s *Store) ScanPrefix(prefix string, fn func(key string, value []byte) bool) {
	if s.lsm != nil {
		s.lsm.ScanPrefix(prefix, fn)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	end := prefixEnd(prefix)
	if end == "" {
		s.tree.AscendRange(prefix, "", true, fn)
		return
	}
	s.tree.AscendRange(prefix, end, false, fn)
}

// prefixEnd returns the smallest key greater than every key with the
// prefix, or "" when the prefix is all 0xFF.
func prefixEnd(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xFF {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// batchOp is one queued mutation. Ops are kept in issue order: a Put after
// a Delete of the same key must leave the key present. (The previous
// map-backed batch applied all puts before all deletes regardless of order,
// which both reordered writes and drifted the byte accounting.)
type batchOp struct {
	del   bool
	key   string
	value []byte
}

// Batch applies several mutations atomically with respect to readers, and —
// on a durable store — as one WAL record, so after a crash either all of
// the batch is recovered or none of it.
type Batch struct {
	ops []batchOp
}

// NewBatch creates an empty batch.
func NewBatch() *Batch {
	return &Batch{}
}

// Put queues a write.
func (b *Batch) Put(key string, value []byte) {
	cp := make([]byte, len(value))
	copy(cp, value)
	b.ops = append(b.ops, batchOp{key: key, value: cp})
}

// Delete queues a deletion.
func (b *Batch) Delete(key string) {
	b.ops = append(b.ops, batchOp{del: true, key: key})
}

// Len reports how many mutations are queued.
func (b *Batch) Len() int { return len(b.ops) }

// Apply commits the batch in issue order.
func (s *Store) Apply(b *Batch) error {
	if b == nil {
		return fmt.Errorf("kvstore: nil batch")
	}
	if s.lsm != nil {
		var lb lsm.Batch
		for _, op := range b.ops {
			if op.del {
				lb.Delete(op.key)
			} else {
				lb.Put(op.key, op.value)
			}
		}
		return s.lsm.Apply(&lb)
	}
	s.mu.Lock()
	var log *wal.Log
	var off int64
	if s.j != nil {
		var enc []byte
		for _, op := range b.ops {
			if op.del {
				enc = opsDelete(enc, op.key)
			} else {
				enc = opsPut(enc, op.key, op.value)
			}
		}
		var err error
		log, off, err = s.j.logOps(enc)
		if err != nil {
			s.mu.Unlock()
			return err
		}
	}
	for _, op := range b.ops {
		if op.del {
			s.applyDelete(op.key)
		} else {
			s.applyPut(op.key, op.value)
		}
	}
	s.mu.Unlock()
	if s.j != nil {
		return s.j.waitDurable(log, off)
	}
	return nil
}
