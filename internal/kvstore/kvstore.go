// Package kvstore is an embedded ordered key-value store standing in for
// Oracle Berkeley DB, the storage backend the paper configures under
// JanusGraph. It offers ordered iteration, prefix scans, and approximate
// size accounting; the JanusGraph-style baseline (internal/janus) persists
// its serialized vertex and adjacency records here.
package kvstore

import (
	"fmt"
	"sync"

	"db2graph/internal/btree"
)

// Store is a thread-safe ordered key-value store.
type Store struct {
	mu    sync.RWMutex
	tree  *btree.Map[[]byte]
	bytes int64
}

// New creates an empty store.
func New() *Store {
	return &Store{tree: btree.New[[]byte]()}
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.tree.Get(key)
	return v, ok
}

// Put stores value under key, replacing any previous value.
func (s *Store) Put(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.tree.Get(key); ok {
		s.bytes -= int64(len(old))
	} else {
		s.bytes += int64(len(key))
	}
	s.bytes += int64(len(value))
	// Copy so callers can reuse their buffer.
	cp := make([]byte, len(value))
	copy(cp, value)
	s.tree.Set(key, cp)
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.tree.Get(key); ok {
		s.bytes -= int64(len(key)) + int64(len(old))
	}
	return s.tree.Delete(key)
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Len()
}

// ByteSize approximates the resident data size (keys + values).
func (s *Store) ByteSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Scan visits every key >= start in order until fn returns false.
func (s *Store) Scan(start string, fn func(key string, value []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.tree.AscendRange(start, "", true, fn)
}

// ScanPrefix visits every key with the given prefix in order.
func (s *Store) ScanPrefix(prefix string, fn func(key string, value []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	end := prefixEnd(prefix)
	if end == "" {
		s.tree.AscendRange(prefix, "", true, fn)
		return
	}
	s.tree.AscendRange(prefix, end, false, fn)
}

// prefixEnd returns the smallest key greater than every key with the
// prefix, or "" when the prefix is all 0xFF.
func prefixEnd(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xFF {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// Batch applies several puts atomically with respect to readers.
type Batch struct {
	puts map[string][]byte
	dels []string
}

// NewBatch creates an empty batch.
func NewBatch() *Batch {
	return &Batch{puts: make(map[string][]byte)}
}

// Put queues a write.
func (b *Batch) Put(key string, value []byte) {
	cp := make([]byte, len(value))
	copy(cp, value)
	b.puts[key] = cp
}

// Delete queues a deletion.
func (b *Batch) Delete(key string) { b.dels = append(b.dels, key) }

// Apply commits the batch.
func (s *Store) Apply(b *Batch) error {
	if b == nil {
		return fmt.Errorf("kvstore: nil batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, value := range b.puts {
		if old, ok := s.tree.Get(key); ok {
			s.bytes -= int64(len(old))
		} else {
			s.bytes += int64(len(key))
		}
		s.bytes += int64(len(value))
		s.tree.Set(key, value)
	}
	for _, key := range b.dels {
		if old, ok := s.tree.Get(key); ok {
			s.bytes -= int64(len(key)) + int64(len(old))
			s.tree.Delete(key)
		}
	}
	return nil
}
