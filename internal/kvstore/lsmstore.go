package kvstore

import (
	"db2graph/internal/lsm"
	"db2graph/internal/telemetry"
	"db2graph/internal/wal"
)

// OpenLSM opens (creating or recovering) an LSM-engine store rooted at dir
// on the real filesystem, registering telemetry on the default registry.
// The returned Store serves the exact same API as a copy-on-write store,
// but writes land in a memtable + WAL and reads are MVCC snapshots that
// never block on writers.
func OpenLSM(dir string, policy wal.SyncPolicy) (*Store, error) {
	return OpenLSMVFS(wal.OS(), dir, policy, telemetry.Default())
}

// OpenLSMVFS is OpenLSM over an explicit VFS and registry — the entry
// point the crash-injection suites use with MemVFS/FaultVFS.
func OpenLSMVFS(fsys wal.VFS, dir string, policy wal.SyncPolicy, reg *telemetry.Registry) (*Store, error) {
	return OpenLSMOptions(fsys, dir, lsm.Options{SyncPolicy: policy, Registry: reg})
}

// OpenLSMOptions opens an LSM store with full engine tuning control.
func OpenLSMOptions(fsys wal.VFS, dir string, opts lsm.Options) (*Store, error) {
	db, err := lsm.OpenVFS(fsys, dir, opts)
	if err != nil {
		return nil, err
	}
	return &Store{lsm: db}, nil
}

// LSM returns the underlying LSM engine, or nil for copy-on-write stores —
// for callers that need engine-specific hooks (compaction, raw stats).
func (s *Store) LSM() *lsm.DB { return s.lsm }

// Snapshot is a consistent point-in-time read view of a Store.
//
// On an LSM store this is a true MVCC snapshot: it observes exactly the
// commits sequenced at or before its creation, unaffected by concurrent
// writers, until Close releases its pins. On a copy-on-write store there is
// no multi-version history to pin, so the view is the live store (each read
// is individually consistent under the store's read lock); Seq reports 0.
type Snapshot struct {
	ls *lsm.Snapshot // nil for copy-on-write stores
	s  *Store
}

// Snapshot opens a read view of the store.
func (s *Store) Snapshot() *Snapshot {
	if s.lsm != nil {
		return &Snapshot{ls: s.lsm.Snapshot()}
	}
	return &Snapshot{s: s}
}

// Seq returns the MVCC sequence the snapshot reads at (0 on copy-on-write
// stores, which have no sequence history).
func (sn *Snapshot) Seq() uint64 {
	if sn.ls != nil {
		return sn.ls.Seq()
	}
	return 0
}

// Get returns the value of key as of the snapshot.
func (sn *Snapshot) Get(key string) ([]byte, bool) {
	if sn.ls != nil {
		return sn.ls.Get(key)
	}
	return sn.s.Get(key)
}

// MultiGet resolves keys as of the snapshot (nil for absent keys).
func (sn *Snapshot) MultiGet(keys []string) [][]byte {
	if sn.ls != nil {
		return sn.ls.MultiGet(keys)
	}
	return sn.s.MultiGet(keys)
}

// Scan visits keys >= start in order as of the snapshot.
func (sn *Snapshot) Scan(start string, fn func(key string, value []byte) bool) {
	if sn.ls != nil {
		sn.ls.Scan(start, fn)
		return
	}
	sn.s.Scan(start, fn)
}

// ScanPrefix visits keys with the prefix in order as of the snapshot.
func (sn *Snapshot) ScanPrefix(prefix string, fn func(key string, value []byte) bool) {
	if sn.ls != nil {
		sn.ls.ScanPrefix(prefix, fn)
		return
	}
	sn.s.ScanPrefix(prefix, fn)
}

// Close releases the snapshot's resources. Safe to call twice.
func (sn *Snapshot) Close() {
	if sn.ls != nil {
		sn.ls.Close()
	}
}

// StorageStats describes a store's engine and internals for operational
// introspection (the gserver !storage control request).
type StorageStats struct {
	Engine      string     `json:"engine"` // "cow" or "lsm"
	Keys        int        `json:"keys"`
	ApproxBytes int64      `json:"approx_bytes"`
	Generation  uint64     `json:"generation"`
	ReadOnly    bool       `json:"read_only"`
	LSM         *lsm.Stats `json:"lsm,omitempty"`
}

// StorageStats reports the engine in use and its current shape. On an LSM
// store this includes memtable, level, compaction, and bloom statistics
// (and refreshes the lsm_* telemetry gauges).
func (s *Store) StorageStats() StorageStats {
	st := StorageStats{
		Keys:        s.Len(),
		ApproxBytes: s.ApproxBytes(),
		Generation:  s.Generation(),
		ReadOnly:    s.ReadOnly(),
	}
	if s.lsm != nil {
		st.Engine = "lsm"
		ls := s.lsm.Stats()
		st.LSM = &ls
	} else {
		st.Engine = "cow"
	}
	return st
}
