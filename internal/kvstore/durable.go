package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"db2graph/internal/btree"
	"db2graph/internal/telemetry"
	"db2graph/internal/wal"
)

// WAL record payloads and snapshot entries share one op encoding:
//
//	'P' <uvarint klen> <key> <uvarint vlen> <value>
//	'D' <uvarint klen> <key>
//
// A commit (single Put/Delete or a whole Batch) is one WAL record holding
// one or more ops, so batches recover atomically. Snapshot entries are
// chunks of 'P' ops.
const (
	opPut = 'P'
	opDel = 'D'

	// snapChunkBytes bounds one snapshot entry: small enough to keep record
	// buffers modest, large enough to amortize framing.
	snapChunkBytes = 32 << 10
)

func opsPut(dst []byte, key string, value []byte) []byte {
	dst = append(dst, opPut)
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.AppendUvarint(dst, uint64(len(value)))
	return append(dst, value...)
}

func opsDelete(dst []byte, key string) []byte {
	dst = append(dst, opDel)
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	return append(dst, key...)
}

// decodeOps walks one encoded op sequence, invoking put/del per op. Any
// framing damage is reported as wal.ErrCorrupt: the record passed its CRC,
// so malformed ops mean a bug or tampering, and recovery must not guess.
func decodeOps(payload []byte, put func(key string, value []byte), del func(key string)) error {
	rest := payload
	readStr := func() (string, bool) {
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || uint64(len(rest)-sz) < n {
			return "", false
		}
		s := string(rest[sz : sz+int(n)])
		rest = rest[sz+int(n):]
		return s, true
	}
	for len(rest) > 0 {
		tag := rest[0]
		rest = rest[1:]
		key, ok := readStr()
		if !ok {
			return fmt.Errorf("%w: kvstore: bad op key", wal.ErrCorrupt)
		}
		switch tag {
		case opPut:
			val, ok := readStr()
			if !ok {
				return fmt.Errorf("%w: kvstore: bad op value", wal.ErrCorrupt)
			}
			put(key, []byte(val))
		case opDel:
			del(key)
		default:
			return fmt.Errorf("%w: kvstore: unknown op tag %q", wal.ErrCorrupt, tag)
		}
	}
	return nil
}

// journal is the durability state hanging off a Store opened with
// OpenDurable: the active WAL generation plus degradation bookkeeping.
type journal struct {
	fsys   wal.VFS
	dir    string
	policy wal.SyncPolicy

	mu       sync.Mutex
	log      *wal.Log
	gen      uint64
	readonly bool
	firstErr error
	closed   bool

	walBytes   *telemetry.Gauge
	walRecords *telemetry.Counter
	ckptGen    *telemetry.Gauge
	ckpts      *telemetry.Counter
	roGauge    *telemetry.Gauge
}

// logOps appends one commit record, returning the log generation appended
// to so the caller can wait on that same instance — re-reading j.log later
// would race with Checkpoint's rotation and wait on the wrong (new, empty)
// log. Called with the store write lock held, so WAL order is apply order.
// The first disk failure flips the journal to read-only; later writes fail
// fast with ErrReadOnly.
func (j *journal) logOps(enc []byte) (*wal.Log, int64, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil, 0, wal.ErrClosed
	}
	if j.readonly {
		err := j.firstErr
		j.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: first failure: %v", ErrReadOnly, err)
	}
	log := j.log
	j.mu.Unlock()
	off, err := log.Append(enc)
	if err != nil {
		j.degrade(err)
		return nil, 0, err
	}
	j.walBytes.Set(off)
	j.walRecords.Inc()
	return log, off, nil
}

// waitDurable blocks per the sync policy on the log the commit was appended
// to; a sync failure also degrades. If that generation has since been sealed
// by Checkpoint, its Close fsynced the tail, so waiters complete correctly.
func (j *journal) waitDurable(log *wal.Log, off int64) error {
	if err := log.WaitDurable(off); err != nil {
		// A closed log is a clean shutdown race, not a disk failure; don't
		// degrade, but do surface it.
		if !errors.Is(err, wal.ErrClosed) {
			j.degrade(err)
		}
		return err
	}
	return nil
}

func (j *journal) degrade(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.readonly {
		return
	}
	j.readonly = true
	j.firstErr = err
	j.roGauge.Set(1)
}

func (j *journal) metrics(reg *telemetry.Registry) {
	j.walBytes = reg.Gauge("kvstore_wal_bytes")
	j.walRecords = reg.Counter("kvstore_wal_records_total")
	j.ckptGen = reg.Gauge("kvstore_checkpoint_generation")
	j.ckpts = reg.Counter("kvstore_checkpoints_total")
	j.roGauge = reg.Gauge("kvstore_readonly")
}

// OpenDurable opens (creating or recovering) a durable store rooted at dir
// on the real filesystem, registering telemetry on the default registry.
func OpenDurable(dir string, policy wal.SyncPolicy) (*Store, error) {
	return OpenDurableVFS(wal.OS(), dir, policy, telemetry.Default())
}

// OpenDurableVFS is OpenDurable over an explicit VFS and registry — the
// entry point the crash-injection suites use with MemVFS/FaultVFS.
//
// Recovery: load the newest snapshot that validates end-to-end (falling
// back a generation if the newest is torn or bit-rotted), then replay every
// WAL generation at or above it in order, truncating the active WAL at the
// first torn or corrupt record. The result is exactly the state of the last
// acknowledged commit (modulo the chosen sync policy's window).
func OpenDurableVFS(fsys wal.VFS, dir string, policy wal.SyncPolicy, reg *telemetry.Registry) (*Store, error) {
	if reg == nil {
		reg = telemetry.Default()
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("%w: mkdir %s: %w", wal.ErrIO, dir, err)
	}
	snaps, wals, err := wal.ListGenerations(fsys, dir)
	if err != nil {
		return nil, err
	}
	if names, err := fsys.List(dir); err == nil {
		for _, name := range names {
			if len(name) > 3 && name[:3] == "mf-" {
				// The WAL op encodings are compatible, so replaying an LSM
				// directory here would "succeed" while silently dropping
				// everything already flushed to runs. Refuse instead.
				return nil, fmt.Errorf("kvstore: %s holds an LSM-engine store (manifest files present); open it with OpenLSM", dir)
			}
		}
	}

	s := &Store{tree: btree.New[[]byte]()}
	apply := func(payload []byte) error {
		return decodeOps(payload,
			func(k string, v []byte) { s.applyPut(k, v) },
			func(k string) { s.applyDelete(k) })
	}

	// Newest intact snapshot wins; a damaged one falls back a generation.
	var base uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		err := wal.ReadSnapshot(fsys, dir, snaps[i], apply)
		if err == nil {
			base = snaps[i]
			break
		}
		if !errors.Is(err, wal.ErrCorrupt) && !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		s.tree = btree.New[[]byte]()
		s.bytes = 0
	}

	// Replay WAL generations >= base in order. The chain must be contiguous
	// from the base state or recovery would silently skip committed ops.
	var replay []uint64
	for _, g := range wals {
		if g >= base {
			replay = append(replay, g)
		}
	}
	if len(replay) > 0 {
		start := base
		if start == 0 {
			start = 1
		}
		if replay[0] > start {
			return nil, fmt.Errorf("%w: kvstore %s: wal chain starts at gen %d, need %d", wal.ErrCorrupt, dir, replay[0], start)
		}
		for i := 1; i < len(replay); i++ {
			if replay[i] != replay[i-1]+1 {
				return nil, fmt.Errorf("%w: kvstore %s: wal gen gap %d -> %d", wal.ErrCorrupt, dir, replay[i-1], replay[i])
			}
		}
	}
	active := base
	if active == 0 {
		active = 1
	}
	var validLen int64
	var haveActive bool
	for _, g := range replay {
		vl, _, _, err := wal.ReplayFile(fsys, wal.Join(dir, wal.WALName(g)), apply)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return nil, err
		}
		if g >= active {
			active = g
			validLen = vl
			haveActive = true
		}
	}

	j := &journal{fsys: fsys, dir: dir, policy: policy, gen: active}
	j.metrics(reg)
	walPath := wal.Join(dir, wal.WALName(active))
	if haveActive {
		j.log, err = wal.OpenLogAt(fsys, walPath, validLen, policy)
	} else {
		j.log, err = wal.CreateLog(fsys, walPath, policy)
		if err == nil {
			err = fsys.SyncDir(dir)
		}
	}
	if err != nil {
		return nil, err
	}
	// Generations older than the previous one are compaction garbage.
	if active > 1 {
		wal.RemoveGenerations(fsys, dir, active-1)
	}
	j.walBytes.Set(validLen)
	j.ckptGen.Set(int64(active))
	j.roGauge.Set(0)
	s.j = j
	return s, nil
}

// ReadOnly reports whether a durable store has degraded to read-only after
// a disk failure. In-memory stores are never read-only.
func (s *Store) ReadOnly() bool {
	if s.lsm != nil {
		return s.lsm.ReadOnly()
	}
	if s.j == nil {
		return false
	}
	s.j.mu.Lock()
	defer s.j.mu.Unlock()
	return s.j.readonly
}

// Generation returns the current checkpoint generation (0 for in-memory
// stores). On an LSM store this is the installed manifest id.
func (s *Store) Generation() uint64 {
	if s.lsm != nil {
		return s.lsm.Generation()
	}
	if s.j == nil {
		return 0
	}
	s.j.mu.Lock()
	defer s.j.mu.Unlock()
	return s.j.gen
}

// Checkpoint snapshots the whole store into the next generation and
// truncates the WAL: rotate to a fresh log first (so the snapshot's
// covering WAL exists before the snapshot does), write the snapshot to a
// temp file, atomically install it, then drop generations older than the
// previous one. A failed snapshot leaves the store writable — recovery
// simply replays one more WAL generation.
func (s *Store) Checkpoint() error {
	if s.lsm != nil {
		// The LSM equivalent: flush every memtable so the WAL is prunable.
		return s.lsm.Flush()
	}
	s.mu.Lock()
	j := s.j
	if j == nil {
		s.mu.Unlock()
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		s.mu.Unlock()
		return wal.ErrClosed
	}
	if j.readonly {
		err := j.firstErr
		j.mu.Unlock()
		s.mu.Unlock()
		return fmt.Errorf("%w: first failure: %v", ErrReadOnly, err)
	}
	newGen := j.gen + 1
	old := j.log
	j.mu.Unlock()

	nl, err := wal.CreateLog(j.fsys, wal.Join(j.dir, wal.WALName(newGen)), j.policy)
	if err == nil {
		if err = j.fsys.SyncDir(j.dir); err != nil {
			nl.Close()
		}
	}
	if err != nil {
		s.mu.Unlock()
		return fmt.Errorf("checkpoint rotate: %w", err)
	}
	j.mu.Lock()
	j.log = nl
	j.gen = newGen
	j.mu.Unlock()

	// Encode the state under the store lock; tree values are private copies
	// but the chunks must be cut before writers resume.
	var chunks [][]byte
	chunk := make([]byte, 0, snapChunkBytes)
	s.tree.AscendRange("", "", true, func(key string, value []byte) bool {
		chunk = opsPut(chunk, key, value)
		if len(chunk) >= snapChunkBytes {
			chunks = append(chunks, chunk)
			chunk = make([]byte, 0, snapChunkBytes)
		}
		return true
	})
	if len(chunk) > 0 {
		chunks = append(chunks, chunk)
	}
	s.mu.Unlock()

	// Seal the outgoing generation. Its acked records are already durable
	// per policy; Close only flushes a SyncNever/grouped tail.
	old.Close()

	w, err := wal.NewSnapshotWriter(j.fsys, j.dir, newGen)
	if err != nil {
		return fmt.Errorf("checkpoint snapshot: %w", err)
	}
	for _, c := range chunks {
		if err := w.Add(c); err != nil {
			w.Abort()
			return fmt.Errorf("checkpoint snapshot: %w", err)
		}
	}
	if err := w.Commit(); err != nil {
		w.Abort()
		return fmt.Errorf("checkpoint snapshot: %w", err)
	}
	wal.RemoveGenerations(j.fsys, j.dir, newGen-1)
	j.ckptGen.Set(int64(newGen))
	j.ckpts.Inc()
	j.mu.Lock()
	cur := j.log
	j.mu.Unlock()
	j.walBytes.Set(cur.Size())
	return nil
}

// Close seals the WAL (flushing any unsynced tail) and detaches the store
// from disk. Further writes fail with wal.ErrClosed; reads keep working.
func (s *Store) Close() error {
	if s.lsm != nil {
		return s.lsm.Close()
	}
	s.mu.Lock()
	j := s.j
	s.mu.Unlock()
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	log := j.log
	j.mu.Unlock()
	return log.Close()
}
