package kvstore

import (
	"fmt"
	"sync"
	"testing"

	"db2graph/internal/telemetry"
	"db2graph/internal/wal"
)

func openLSMTest(t *testing.T, fsys wal.VFS) *Store {
	t.Helper()
	s, err := OpenLSMVFS(fsys, "db", wal.NoSync(), telemetry.NewRegistry())
	if err != nil {
		t.Fatalf("OpenLSMVFS: %v", err)
	}
	return s
}

// TestLSMStoreConformance runs the Store surface against the LSM engine:
// the janus/gserver layers are engine-agnostic, so every behavior the
// copy-on-write tests pin must hold here too.
func TestLSMStoreConformance(t *testing.T) {
	s := openLSMTest(t, wal.NewMemVFS())
	defer s.Close()

	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q,%v", v, ok)
	}
	// Value buffers are copied, not aliased.
	buf := []byte("mutate-me")
	if err := s.Put("c", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	if v, _ := s.Get("c"); string(v) != "mutate-me" {
		t.Fatalf("stored value aliases caller buffer: %q", v)
	}

	present, err := s.Delete("b")
	if err != nil || !present {
		t.Fatalf("Delete(b) = %v,%v", present, err)
	}
	present, err = s.Delete("nope")
	if err != nil || present {
		t.Fatalf("Delete(nope) = %v,%v", present, err)
	}

	vals := s.MultiGet([]string{"a", "b", "c"})
	if string(vals[0]) != "1" || vals[1] != nil || string(vals[2]) != "mutate-me" {
		t.Fatalf("MultiGet = %q", vals)
	}
	if n := s.Len(); n != 2 {
		t.Fatalf("Len = %d", n)
	}

	// Batch order semantics: put after delete of the same key leaves it
	// present (the invariant TestBatchOrder pins on the cow engine).
	b := NewBatch()
	b.Put("x", []byte("first"))
	b.Delete("x")
	b.Put("x", []byte("final"))
	if err := s.Apply(b); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("x"); string(v) != "final" {
		t.Fatalf("batch order broken: %q", v)
	}

	var keys []string
	s.ScanPrefix("", func(k string, v []byte) bool { keys = append(keys, k); return true })
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "c" || keys[2] != "x" {
		t.Fatalf("scan = %v", keys)
	}
}

// TestLSMStoreDurabilityRoundTrip checkpoints (flush) and reopens.
func TestLSMStoreDurabilityRoundTrip(t *testing.T) {
	fsys := wal.NewMemVFS()
	s := openLSMTest(t, fsys)
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.Generation() == 0 {
		t.Fatal("generation did not advance with the manifest")
	}
	if err := s.Put("tail", []byte("wal-only")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openLSMTest(t, fsys)
	defer re.Close()
	if n := re.Len(); n != 101 {
		t.Fatalf("reopen Len = %d", n)
	}
	if v, ok := re.Get("tail"); !ok || string(v) != "wal-only" {
		t.Fatalf("WAL tail lost: %q,%v", v, ok)
	}
}

// TestLSMStoreSnapshotView pins MVCC semantics through the kvstore
// wrapper, and the cow fallback's documented live-view behavior.
func TestLSMStoreSnapshotView(t *testing.T) {
	s := openLSMTest(t, wal.NewMemVFS())
	defer s.Close()
	if err := s.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	defer snap.Close()
	if err := s.Put("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Get("k"); !ok || string(v) != "old" {
		t.Fatalf("snapshot Get = %q,%v", v, ok)
	}
	if snap.Seq() == 0 {
		t.Fatal("LSM snapshot must report a nonzero sequence")
	}
	if vals := snap.MultiGet([]string{"k", "absent"}); string(vals[0]) != "old" || vals[1] != nil {
		t.Fatalf("snapshot MultiGet = %q", vals)
	}
	n := 0
	snap.ScanPrefix("k", func(string, []byte) bool { n++; return true })
	if n != 1 {
		t.Fatalf("snapshot prefix scan saw %d", n)
	}

	// The cow store's Snapshot is a live view with Seq 0 — documented
	// fallback, pinned so a silent behavior change is caught.
	cow := New()
	if err := cow.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	cs := cow.Snapshot()
	defer cs.Close()
	if cs.Seq() != 0 {
		t.Fatal("cow snapshot must report Seq 0")
	}
	if err := cow.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _ := cs.Get("k"); string(v) != "v2" {
		t.Fatalf("cow snapshot is documented as live view, got %q", v)
	}
}

// TestLSMStoreStorageStats checks the engine discrimination and the stats
// payload both engines feed the gserver !storage request.
func TestLSMStoreStorageStats(t *testing.T) {
	s := openLSMTest(t, wal.NewMemVFS())
	defer s.Close()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.StorageStats()
	if st.Engine != "lsm" || st.Keys != 1 || st.LSM == nil {
		t.Fatalf("lsm StorageStats = %+v", st)
	}
	if st.LSM.Flushes != 1 || len(st.LSM.Levels) == 0 {
		t.Fatalf("lsm engine stats = %+v", st.LSM)
	}

	cow := New()
	if err := cow.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	cst := cow.StorageStats()
	if cst.Engine != "cow" || cst.Keys != 1 || cst.LSM != nil {
		t.Fatalf("cow StorageStats = %+v", cst)
	}
}

// TestEngineDirectoryGuards proves the two engines refuse each other's
// directories loudly instead of corrupting them.
func TestEngineDirectoryGuards(t *testing.T) {
	// LSM dir opened as cow.
	fsys := wal.NewMemVFS()
	s := openLSMTest(t, fsys)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil { // writes a manifest
		t.Fatal(err)
	}
	s.Close()
	if _, err := OpenDurableVFS(fsys, "db", wal.NoSync(), nil); err == nil {
		t.Fatal("OpenDurableVFS accepted an LSM directory")
	}

	// Cow dir opened as LSM.
	fsys2 := wal.NewMemVFS()
	cs, err := OpenDurableVFS(fsys2, "db", wal.NoSync(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := cs.Checkpoint(); err != nil { // writes a snap checkpoint
		t.Fatal(err)
	}
	cs.Close()
	if _, err := OpenLSMVFS(fsys2, "db", wal.NoSync(), telemetry.NewRegistry()); err == nil {
		t.Fatal("OpenLSMVFS accepted a cow directory")
	}
}

// TestLSMStoreConcurrentAccess hammers the wrapper from many goroutines
// under the race detector, mirroring TestConcurrentAccess on the cow path.
func TestLSMStoreConcurrentAccess(t *testing.T) {
	s := openLSMTest(t, wal.NewMemVFS())
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("g%d/k%03d", g, i)
				if err := s.Put(k, []byte("v")); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, ok := s.Get(k); !ok {
					t.Errorf("read-own-write failed for %s", k)
					return
				}
				s.Scan(k, func(string, []byte) bool { return false })
			}
		}(g)
	}
	wg.Wait()
	if n := s.Len(); n != 8*200 {
		t.Fatalf("Len = %d, want %d", n, 8*200)
	}
}
