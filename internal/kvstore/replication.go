package kvstore

import (
	"errors"
	"fmt"

	"db2graph/internal/btree"
	"db2graph/internal/wal"
)

// Physical replication: a follower tails the primary's WAL directory with
// wal.StreamFrom/Follow and applies each shipped record through the same
// decodeOps path recovery uses, so replica state is bit-identical to what
// the primary would recover after a crash at that point. Checkpoint
// rotations ship as generation changes in the cursor; a follower that falls
// behind retention re-bootstraps from the newest snapshot.
//
// The LSM engine journals logical ops the same way but prunes its WAL
// against flushed runs, so physical shipping is only offered for the
// copy-on-write engine; LSM-backed stores replicate at the logical-op layer
// above the store (see gserver's oplog replication).

// ErrNoReplicationSource reports a store that cannot serve as a physical
// replication primary: purely in-memory, or LSM-backed.
var ErrNoReplicationSource = errors.New("kvstore: store has no physical replication source (in-memory or LSM engine)")

// ReplicationSource exposes the VFS and directory a follower tails. The
// second return is false when the store has no shippable WAL.
func (s *Store) ReplicationSource() (wal.VFS, string, bool) {
	if s.lsm != nil || s.j == nil {
		return nil, "", false
	}
	return s.j.fsys, s.j.dir, true
}

// ApplyShipped applies one replicated WAL record (or snapshot chunk — both
// carry the same op encoding) to the store. On a durable store the record is
// re-journaled first, so a follower's own WAL stays recoverable.
func (s *Store) ApplyShipped(payload []byte) error {
	if s.lsm != nil {
		return fmt.Errorf("%w: apply shipped record", ErrNoReplicationSource)
	}
	s.mu.Lock()
	var log *wal.Log
	var off int64
	if s.j != nil {
		var err error
		log, off, err = s.j.logOps(payload)
		if err != nil {
			s.mu.Unlock()
			return err
		}
	}
	err := decodeOps(payload,
		func(k string, v []byte) { s.applyPut(k, v) },
		func(k string) { s.applyDelete(k) })
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if s.j != nil {
		return s.j.waitDurable(log, off)
	}
	return nil
}

// SyncReplica advances replica to the primary WAL's current end, streaming
// from cur. When the cursor's history has been garbage-collected (or the
// primary truncated below it), the replica is rebuilt from the newest
// snapshot and streaming resumes from that generation — the follower
// catch-up path. It returns the cursor to resume from next time.
//
// Bootstrapping wipes the replica, so replica must be in-memory (a durable
// replica would desync its own journal); ApplyShipped alone has no such
// restriction.
func SyncReplica(replica *Store, fsys wal.VFS, dir string, cur wal.Cursor) (wal.Cursor, error) {
	apply := func(p []byte, _ wal.Cursor) error { return replica.ApplyShipped(p) }
	next, err := wal.StreamFrom(fsys, dir, cur, apply)
	if err == nil || !errors.Is(err, wal.ErrCursorGone) {
		return next, err
	}
	if replica.j != nil || replica.lsm != nil {
		return next, fmt.Errorf("kvstore: replica fell behind retention and is not in-memory; re-open it from a copy of the primary directory: %w", err)
	}
	snaps, _, lerr := wal.ListGenerations(fsys, dir)
	if lerr != nil {
		return next, lerr
	}
	if len(snaps) == 0 {
		return next, err // nothing to bootstrap from; surface ErrCursorGone
	}
	gen := snaps[len(snaps)-1]
	replica.mu.Lock()
	replica.tree = btree.New[[]byte]()
	replica.bytes = 0
	replica.mu.Unlock()
	if err := wal.ReadSnapshot(fsys, dir, gen, replica.ApplyShipped); err != nil {
		return next, err
	}
	// A checkpoint racing the bootstrap can pass retention again; the caller
	// retries on ErrCursorGone exactly as before.
	return wal.StreamFrom(fsys, dir, wal.Cursor{Gen: gen}, apply)
}
