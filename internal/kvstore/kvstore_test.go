package kvstore

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	if v, ok := s.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	s.Put("a", []byte("1x"))
	if v, _ := s.Get("a"); string(v) != "1x" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if !s.Delete("a") || s.Delete("a") {
		t.Fatal("delete semantics wrong")
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestValueCopied(t *testing.T) {
	s := New()
	buf := []byte("abc")
	s.Put("k", buf)
	buf[0] = 'X'
	if v, _ := s.Get("k"); string(v) != "abc" {
		t.Fatalf("stored value aliased caller buffer: %q", v)
	}
}

func TestByteSizeAccounting(t *testing.T) {
	s := New()
	if s.ByteSize() != 0 {
		t.Fatal("empty store size != 0")
	}
	s.Put("key", []byte("value"))
	want := int64(len("key") + len("value"))
	if s.ByteSize() != want {
		t.Fatalf("size = %d, want %d", s.ByteSize(), want)
	}
	s.Put("key", []byte("v2"))
	want = int64(len("key") + len("v2"))
	if s.ByteSize() != want {
		t.Fatalf("size after overwrite = %d, want %d", s.ByteSize(), want)
	}
	s.Delete("key")
	if s.ByteSize() != 0 {
		t.Fatalf("size after delete = %d", s.ByteSize())
	}
}

func TestScanOrderAndPrefix(t *testing.T) {
	s := New()
	keys := []string{"v/3", "v/1", "a/2", "v/2", "a/10"}
	for _, k := range keys {
		s.Put(k, []byte(k))
	}
	var got []string
	s.Scan("", func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 5 || got[0] != "a/10" || got[4] != "v/3" {
		t.Fatalf("scan order = %v", got)
	}
	got = nil
	s.ScanPrefix("v/", func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 3 || got[0] != "v/1" || got[2] != "v/3" {
		t.Fatalf("prefix scan = %v", got)
	}
	// Early stop.
	n := 0
	s.Scan("", func(string, []byte) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestPrefixEnd(t *testing.T) {
	if prefixEnd("ab") != "ac" {
		t.Fatalf("prefixEnd(ab) = %q", prefixEnd("ab"))
	}
	if prefixEnd("a\xff") != "b" {
		t.Fatalf("prefixEnd(a\\xff) = %q", prefixEnd("a\xff"))
	}
	if prefixEnd("\xff\xff") != "" {
		t.Fatalf("prefixEnd(all-ff) = %q", prefixEnd("\xff\xff"))
	}
}

func TestBatch(t *testing.T) {
	s := New()
	s.Put("stale", []byte("x"))
	b := NewBatch()
	b.Put("k1", []byte("v1"))
	b.Put("k2", []byte("v2"))
	b.Delete("stale")
	if err := s.Apply(b); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, ok := s.Get("stale"); ok {
		t.Fatal("batched delete missed")
	}
	if v, _ := s.Get("k2"); string(v) != "v2" {
		t.Fatalf("batched put missed: %q", v)
	}
	if err := s.Apply(nil); err == nil {
		t.Fatal("nil batch accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	for i := 0; i < 1000; i++ {
		s.Put(fmt.Sprintf("k%04d", i), []byte("v"))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if w%2 == 0 {
					s.Get(fmt.Sprintf("k%04d", i))
				} else {
					s.Put(fmt.Sprintf("w%d-%d", w, i), []byte("x"))
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() < 1000 {
		t.Fatalf("Len = %d", s.Len())
	}
}
