package kvstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"db2graph/internal/wal"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	if v, ok := s.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	s.Put("a", []byte("1x"))
	if v, _ := s.Get("a"); string(v) != "1x" {
		t.Fatalf("overwrite failed: %q", v)
	}
	ok1, _ := s.Delete("a")
	ok2, _ := s.Delete("a")
	if !ok1 || ok2 {
		t.Fatal("delete semantics wrong")
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestValueCopied(t *testing.T) {
	s := New()
	buf := []byte("abc")
	s.Put("k", buf)
	buf[0] = 'X'
	if v, _ := s.Get("k"); string(v) != "abc" {
		t.Fatalf("stored value aliased caller buffer: %q", v)
	}
}

func TestApproxBytesAccounting(t *testing.T) {
	s := New()
	if s.ApproxBytes() != 0 {
		t.Fatal("empty store size != 0")
	}
	s.Put("key", []byte("value"))
	want := int64(len("key") + len("value"))
	if s.ApproxBytes() != want {
		t.Fatalf("size = %d, want %d", s.ApproxBytes(), want)
	}
	s.Put("key", []byte("v2"))
	want = int64(len("key") + len("v2"))
	if s.ApproxBytes() != want {
		t.Fatalf("size after overwrite = %d, want %d", s.ApproxBytes(), want)
	}
	s.Delete("key")
	if s.ApproxBytes() != 0 {
		t.Fatalf("size after delete = %d", s.ApproxBytes())
	}
}

// TestApproxBytesProperty drives random Put/Delete/Batch traffic against a
// naive map model and checks the incremental byte accounting never drifts
// from a from-scratch recount — including through a durable close/reopen,
// whose recovery rebuilds the accounting from the WAL.
func TestApproxBytesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	model := map[string]int{} // key -> value length
	modelBytes := func() int64 {
		var n int64
		for k, vlen := range model {
			n += int64(len(k) + vlen)
		}
		return n
	}
	mem := wal.NewMemVFS()
	s, err := OpenDurableVFS(mem, "db", wal.NoSync(), nil)
	if err != nil {
		t.Fatal(err)
	}
	key := func() string { return fmt.Sprintf("k%02d", rng.Intn(40)) }
	for i := 0; i < 3000; i++ {
		switch rng.Intn(5) {
		case 0:
			k := key()
			if _, err := s.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		case 1: // batch with deliberate same-key order traps
			k := key()
			b := NewBatch()
			b.Delete(k)
			b.Put(k, []byte("after-delete"))
			b.Put(k, []byte("rewritten"))
			if err := s.Apply(b); err != nil {
				t.Fatal(err)
			}
			model[k] = len("rewritten")
		default:
			k := key()
			v := make([]byte, rng.Intn(50))
			if err := s.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = len(v)
		}
		if i%500 == 0 {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := s.ApproxBytes(), modelBytes(); got != want {
			t.Fatalf("step %d: ApproxBytes = %d, model %d", i, got, want)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurableVFS(mem, "db", wal.NoSync(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := re.ApproxBytes(), modelBytes(); got != want {
		t.Fatalf("after reopen: ApproxBytes = %d, model %d", got, want)
	}
	if re.Len() != len(model) {
		t.Fatalf("after reopen: Len = %d, model %d", re.Len(), len(model))
	}
	for k, vlen := range model {
		v, ok := re.Get(k)
		if !ok || len(v) != vlen {
			t.Fatalf("after reopen: %s = %d bytes, want %d (ok=%v)", k, len(v), vlen, ok)
		}
	}
}

func TestScanOrderAndPrefix(t *testing.T) {
	s := New()
	keys := []string{"v/3", "v/1", "a/2", "v/2", "a/10"}
	for _, k := range keys {
		s.Put(k, []byte(k))
	}
	var got []string
	s.Scan("", func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 5 || got[0] != "a/10" || got[4] != "v/3" {
		t.Fatalf("scan order = %v", got)
	}
	got = nil
	s.ScanPrefix("v/", func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 3 || got[0] != "v/1" || got[2] != "v/3" {
		t.Fatalf("prefix scan = %v", got)
	}
	// Early stop.
	n := 0
	s.Scan("", func(string, []byte) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestPrefixEnd(t *testing.T) {
	if prefixEnd("ab") != "ac" {
		t.Fatalf("prefixEnd(ab) = %q", prefixEnd("ab"))
	}
	if prefixEnd("a\xff") != "b" {
		t.Fatalf("prefixEnd(a\\xff) = %q", prefixEnd("a\xff"))
	}
	if prefixEnd("\xff\xff") != "" {
		t.Fatalf("prefixEnd(all-ff) = %q", prefixEnd("\xff\xff"))
	}
}

func TestBatch(t *testing.T) {
	s := New()
	s.Put("stale", []byte("x"))
	b := NewBatch()
	b.Put("k1", []byte("v1"))
	b.Put("k2", []byte("v2"))
	b.Delete("stale")
	if err := s.Apply(b); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, ok := s.Get("stale"); ok {
		t.Fatal("batched delete missed")
	}
	if v, _ := s.Get("k2"); string(v) != "v2" {
		t.Fatalf("batched put missed: %q", v)
	}
	if err := s.Apply(nil); err == nil {
		t.Fatal("nil batch accepted")
	}
}

// TestBatchOrder pins the issue-order contract: a Put after a Delete of the
// same key must leave the key present (the old map-backed batch applied all
// puts before all deletes and got this wrong).
func TestBatchOrder(t *testing.T) {
	s := New()
	s.Put("k", []byte("orig"))
	b := NewBatch()
	b.Delete("k")
	b.Put("k", []byte("new"))
	if err := s.Apply(b); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("k"); !ok || string(v) != "new" {
		t.Fatalf("delete-then-put lost the put: %q, %v", v, ok)
	}
	want := int64(len("k") + len("new"))
	if got := s.ApproxBytes(); got != want {
		t.Fatalf("ApproxBytes = %d, want %d", got, want)
	}

	b2 := NewBatch()
	b2.Put("k", []byte("doomed"))
	b2.Delete("k")
	if err := s.Apply(b2); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("put-then-delete kept the key")
	}
	if got := s.ApproxBytes(); got != 0 {
		t.Fatalf("ApproxBytes after delete = %d", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	for i := 0; i < 1000; i++ {
		s.Put(fmt.Sprintf("k%04d", i), []byte("v"))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if w%2 == 0 {
					s.Get(fmt.Sprintf("k%04d", i))
				} else {
					s.Put(fmt.Sprintf("w%d-%d", w, i), []byte("x"))
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() < 1000 {
		t.Fatalf("Len = %d", s.Len())
	}
}
