package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"syscall"
	"testing"
	"time"

	"db2graph/internal/wal"
)

// crashStep is one commit of the crash workload plus its effect on the
// naive model.
type crashStep struct {
	name  string
	run   func(s *Store) error
	apply func(m map[string]string) // nil for state-neutral steps (checkpoint)
}

// crashWorkload mixes puts, overwrites, deletes, multi-op batches, and a
// mid-stream checkpoint, so fault enumeration crosses every write, fsync,
// rename, and dir-sync the durable path issues.
func crashWorkload() []crashStep {
	put := func(k, v string) crashStep {
		return crashStep{
			name:  "put " + k,
			run:   func(s *Store) error { return s.Put(k, []byte(v)) },
			apply: func(m map[string]string) { m[k] = v },
		}
	}
	del := func(k string) crashStep {
		return crashStep{
			name: "del " + k,
			run: func(s *Store) error {
				_, err := s.Delete(k)
				return err
			},
			apply: func(m map[string]string) { delete(m, k) },
		}
	}
	return []crashStep{
		put("v/p1", "patient-alice"),
		put("v/d9", "disease-flu"),
		put("adj/p1", "e1,e2"),
		crashStep{
			name: "batch edge e1",
			run: func(s *Store) error {
				b := NewBatch()
				b.Put("ei/e1", []byte("p1->d9"))
				b.Delete("adj/p1")
				b.Put("adj/p1", []byte("e1"))
				return s.Apply(b)
			},
			apply: func(m map[string]string) {
				m["ei/e1"] = "p1->d9"
				m["adj/p1"] = "e1"
			},
		},
		put("v/p1", "patient-alice-v2"),
		crashStep{
			name: "checkpoint",
			run:  func(s *Store) error { return s.Checkpoint() },
		},
		put("v/p2", "patient-bob"),
		del("v/d9"),
		crashStep{
			name: "batch edge e2",
			run: func(s *Store) error {
				b := NewBatch()
				b.Put("ei/e2", []byte("p2->d9"))
				b.Put("v/d9", []byte("disease-flu-readd"))
				return s.Apply(b)
			},
			apply: func(m map[string]string) {
				m["ei/e2"] = "p2->d9"
				m["v/d9"] = "disease-flu-readd"
			},
		},
		put("lv/patient", "p1,p2"),
	}
}

// modelStates returns the model state after 0..n commits.
func modelStates(steps []crashStep) []map[string]string {
	states := []map[string]string{{}}
	cur := map[string]string{}
	for _, st := range steps {
		if st.apply == nil {
			continue // state-neutral (checkpoint)
		}
		st.apply(cur)
		next := make(map[string]string, len(cur))
		for k, v := range cur {
			next[k] = v
		}
		states = append(states, next)
	}
	return states
}

// matchesState reports whether the store content equals the model exactly,
// and cross-checks the incremental ApproxBytes against a recount.
func matchesState(t *testing.T, s *Store, m map[string]string) bool {
	t.Helper()
	if s.Len() != len(m) {
		return false
	}
	var recount int64
	ok := true
	s.Scan("", func(k string, v []byte) bool {
		recount += int64(len(k) + len(v))
		if want, present := m[k]; !present || want != string(v) {
			ok = false
			return false
		}
		return true
	})
	if ok && s.ApproxBytes() != recount {
		t.Fatalf("ApproxBytes %d != recount %d", s.ApproxBytes(), recount)
	}
	return ok
}

// runUntilError executes the workload, returning how many state-changing
// commits were acknowledged and whether every step succeeded.
func runUntilError(s *Store, steps []crashStep) (acked, submitted int, failed bool) {
	for _, st := range steps {
		stateful := st.apply != nil
		if stateful {
			submitted++
		}
		if err := st.run(s); err != nil {
			return acked, submitted, true
		}
		if stateful {
			acked++
		}
	}
	return acked, submitted, false
}

// assertRecovered opens the store from the (possibly crashed) disk and
// asserts the durability invariant: the recovered state equals the model
// after exactly k acknowledged commits for some k in [lo, hi] — never a
// torn half-commit, never a lost acknowledged commit (lo = acked under
// sync-always), never phantom data.
func assertRecovered(t *testing.T, mem *wal.MemVFS, states []map[string]string, lo, hi int, label string) *Store {
	t.Helper()
	re, err := OpenDurableVFS(mem, "db", wal.EveryCommit(), nil)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	for k := lo; k <= hi && k < len(states); k++ {
		if matchesState(t, re, states[k]) {
			return re
		}
	}
	var got []string
	re.Scan("", func(k string, v []byte) bool {
		got = append(got, fmt.Sprintf("%s=%s", k, v))
		return true
	})
	t.Fatalf("%s: recovered state matches no acknowledged prefix in [%d,%d]: %v", label, lo, hi, got)
	return nil
}

// TestCrashEveryInjectionPoint is the exhaustive crash harness: count the
// mutating VFS ops of a fault-free run, then for every op index simulate a
// kill there (with the unsynced tail dropped or torn) and prove recovery
// lands on the exact state of the last acknowledged commit — the
// sync-every-commit contract — with all checksums verifying.
func TestCrashEveryInjectionPoint(t *testing.T) {
	steps := crashWorkload()
	states := modelStates(steps)

	// Pass 1: fault-free run to count injection points.
	calib := wal.NewFaultVFS(wal.NewMemVFS())
	s, err := OpenDurableVFS(calib, "db", wal.EveryCommit(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if acked, _, failed := runUntilError(s, steps); failed || acked != len(states)-1 {
		t.Fatalf("fault-free run: acked=%d failed=%v", acked, failed)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	setupOps := 0 // ops consumed by OpenDurableVFS on an empty dir
	{
		fv := wal.NewFaultVFS(wal.NewMemVFS())
		if _, err := OpenDurableVFS(fv, "db", wal.EveryCommit(), nil); err != nil {
			t.Fatal(err)
		}
		setupOps = fv.Ops()
	}
	total := calib.Ops()
	if total <= setupOps {
		t.Fatalf("workload issued no mutating ops (total=%d setup=%d)", total, setupOps)
	}

	for mode, modeName := range map[wal.CrashMode]string{
		wal.CrashDropUnsynced: "drop",
		wal.CrashTornUnsynced: "torn",
		wal.CrashKeepUnsynced: "keep",
	} {
		t.Run(modeName, func(t *testing.T) {
			for op := setupOps; op < total; op++ {
				mem := wal.NewMemVFS()
				fv := wal.NewFaultVFS(mem)
				s, err := OpenDurableVFS(fv, "db", wal.EveryCommit(), nil)
				if err != nil {
					t.Fatalf("op %d: open: %v", op, err)
				}
				fv.CrashAt(op)
				acked, submitted, failed := runUntilError(s, steps)
				if !failed && acked != len(states)-1 {
					t.Fatalf("op %d: run neither failed nor completed", op)
				}
				mem.Crash(mode)
				label := fmt.Sprintf("%s op %d (acked %d)", modeName, op, acked)
				re := assertRecovered(t, mem, states, acked, submitted, label)
				// The recovered store must be fully writable again.
				if err := re.Put("post-recovery", []byte("ok")); err != nil {
					t.Fatalf("%s: post-recovery write: %v", label, err)
				}
				if err := re.Close(); err != nil {
					t.Fatalf("%s: close: %v", label, err)
				}
			}
		})
	}
}

// TestCrashInjectionNoSync re-runs a sample of injection points under the
// no-fsync policy: acknowledged commits may be lost, but recovery must
// still land on SOME exact commit prefix — consistency holds even when
// durability is traded away.
func TestCrashInjectionNoSync(t *testing.T) {
	steps := crashWorkload()
	states := modelStates(steps)
	calib := wal.NewFaultVFS(wal.NewMemVFS())
	s, err := OpenDurableVFS(calib, "db", wal.NoSync(), nil)
	if err != nil {
		t.Fatal(err)
	}
	runUntilError(s, steps)
	s.Close()
	total := calib.Ops()

	for op := 0; op < total; op++ {
		mem := wal.NewMemVFS()
		fv := wal.NewFaultVFS(mem)
		s, err := OpenDurableVFS(fv, "db", wal.NoSync(), nil)
		if err != nil {
			t.Fatalf("op %d: open: %v", op, err)
		}
		fv.CrashAt(op)
		_, submitted, _ := runUntilError(s, steps)
		mem.Crash(wal.CrashTornUnsynced)
		assertRecovered(t, mem, states, 0, submitted, fmt.Sprintf("nosync op %d", op))
	}
}

// TestPersistentDiskFailureDegradesReadOnly proves the dead-disk path: a
// persistent ENOSPC turns the store read-only with typed errors — the
// first failure surfaces the cause, every later write is ErrReadOnly,
// reads keep serving, and a reopen recovers a valid acknowledged prefix.
func TestPersistentDiskFailureDegradesReadOnly(t *testing.T) {
	enospc := fmt.Errorf("write db/wal: %w", syscall.ENOSPC)

	mem := wal.NewMemVFS()
	fv := wal.NewFaultVFS(mem)
	s, err := OpenDurableVFS(fv, "db", wal.EveryCommit(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("seed", []byte("x")); err != nil {
		t.Fatal(err)
	}
	fv.FailAt(fv.Ops(), enospc, true)

	err = s.Put("doomed", []byte("y"))
	if err == nil {
		t.Fatal("write on a full disk succeeded")
	}
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, wal.ErrIO) {
		t.Fatalf("first failure = %v; want ENOSPC wrapped in wal.ErrIO", err)
	}
	if !s.ReadOnly() {
		t.Fatal("store did not degrade to read-only")
	}
	// Later writes fail fast with the typed sentinel; no panics, no retries
	// against the dead disk.
	if err := s.Put("later", []byte("z")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("post-degradation write = %v; want ErrReadOnly", err)
	}
	if _, err := s.Delete("seed"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("post-degradation delete = %v; want ErrReadOnly", err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("post-degradation checkpoint = %v; want ErrReadOnly", err)
	}
	// Reads still serve the pre-failure state.
	if v, ok := s.Get("seed"); !ok || string(v) != "x" {
		t.Fatalf("read-only store lost data: %q, %v", v, ok)
	}
	s.Close()

	// The disk recovers (operator freed space): reopen sees every
	// acknowledged commit.
	re, err := OpenDurableVFS(mem, "db", wal.EveryCommit(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := re.Get("seed"); !ok || string(v) != "x" {
		t.Fatalf("reopen lost acked write: %q, %v", v, ok)
	}
	if _, ok := re.Get("doomed"); ok {
		t.Fatal("unacknowledged write resurrected")
	}
}

// TestBitRotTruncatesAtCorruption flips a byte in the durable WAL and
// verifies recovery keeps exactly the checksum-clean prefix.
func TestBitRotTruncatesAtCorruption(t *testing.T) {
	mem := wal.NewMemVFS()
	s, err := OpenDurableVFS(mem, "db", wal.EveryCommit(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	name := wal.Join("db", wal.WALName(1))
	size := mem.FileSize(name)
	if size <= 0 {
		t.Fatalf("wal missing (size %d)", size)
	}
	if !mem.Corrupt(name, size*3/4) {
		t.Fatal("corrupt out of range")
	}
	re, err := OpenDurableVFS(mem, "db", wal.EveryCommit(), nil)
	if err != nil {
		t.Fatal(err)
	}
	n := re.Len()
	if n >= 8 || n < 1 {
		t.Fatalf("recovered %d keys; want a proper non-empty prefix", n)
	}
	for i := 0; i < n; i++ {
		if _, ok := re.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("recovered set is not a prefix: k%d missing of %d", i, n)
		}
	}
	// The store heals: new writes append after the truncation point and
	// survive another reopen.
	if err := re.Put("healed", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := OpenDurableVFS(mem, "db", wal.EveryCommit(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := re2.Get("healed"); !ok || string(v) != "yes" {
		t.Fatalf("post-heal write lost: %q, %v", v, ok)
	}
}

// TestWaitDurableSurvivesRotation pins the exact interleaving of the
// commit/checkpoint race deterministically: a commit appended to generation
// g must complete its durability wait even when Checkpoint rotates to g+1
// between the append and the wait. The wait must target the log the record
// was appended to — whose sealing Close fsyncs it — not the journal's
// current log; waiting on the new, empty generation would stall under
// group-commit (its synced offset never reaches the old log's) and ack
// before the old tail is synced under sync-always.
func TestWaitDurableSurvivesRotation(t *testing.T) {
	mem := wal.NewMemVFS()
	// An hour of group-commit delay: nothing syncs the new generation, so
	// waiting on the wrong log blocks forever instead of flaking.
	s, err := OpenDurableVFS(mem, "db", wal.GroupCommit(time.Hour), nil)
	if err != nil {
		t.Fatal(err)
	}
	// First half of a Put: journal + apply under the store lock.
	s.mu.Lock()
	log, off, err := s.j.logOps(opsPut(nil, "k", []byte("v")))
	if err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	s.applyPut("k", []byte("v"))
	s.mu.Unlock()
	// A checkpoint sneaks in before the committer reaches its wait,
	// rotating the journal to a fresh generation and sealing the old log.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.j.waitDurable(log, off) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waitDurable after rotation: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waitDurable stalled: commit is waiting on the rotated-in log, not the one it appended to")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurableVFS(mem, "db", wal.EveryCommit(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Get("k"); !ok {
		t.Fatal("acked commit lost across rotation")
	}
	re.Close()
}

// TestConcurrentCheckpointDurability races committers against checkpoint
// rotations. A commit must wait for durability on the log generation it was
// appended to: re-reading the active log after rotation would either ack
// before the old tail is fsynced (sync-always) or stall on the new empty
// log's synced offset (group-commit). Every acknowledged write must survive
// a reopen.
func TestConcurrentCheckpointDurability(t *testing.T) {
	for _, policy := range []wal.SyncPolicy{wal.EveryCommit(), wal.GroupCommit(time.Millisecond)} {
		t.Run(policy.String(), func(t *testing.T) {
			mem := wal.NewMemVFS()
			s, err := OpenDurableVFS(mem, "db", policy, nil)
			if err != nil {
				t.Fatal(err)
			}
			const writers, perWriter = 4, 64
			errs := make(chan error, writers+1)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						if err := s.Put(fmt.Sprintf("w%d/k%03d", w, i), []byte("v")); err != nil {
							errs <- fmt.Errorf("writer %d: %w", w, err)
							return
						}
					}
				}(w)
			}
			stop := make(chan struct{})
			var ckpt sync.WaitGroup
			ckpt.Add(1)
			go func() {
				defer ckpt.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := s.Checkpoint(); err != nil {
						errs <- fmt.Errorf("checkpoint: %w", err)
						return
					}
				}
			}()
			wg.Wait()
			close(stop)
			ckpt.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := OpenDurableVFS(mem, "db", policy, nil)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			for w := 0; w < writers; w++ {
				for i := 0; i < perWriter; i++ {
					key := fmt.Sprintf("w%d/k%03d", w, i)
					if _, ok := re.Get(key); !ok {
						t.Fatalf("acknowledged write %s lost across reopen", key)
					}
				}
			}
			re.Close()
		})
	}
}

// TestCorruptSnapshotFallsBack bit-rots the newest snapshot and verifies
// recovery falls back to the previous generation chain without data loss.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	mem := wal.NewMemVFS()
	s, err := OpenDurableVFS(mem, "db", wal.EveryCommit(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("a%d", i), []byte("one")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("b%d", i), []byte("two")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	gen := s.Generation()
	snap := wal.Join("db", wal.SnapName(gen))
	size := mem.FileSize(snap)
	if size <= 0 {
		t.Fatalf("snapshot missing: gen %d", gen)
	}
	mem.Corrupt(snap, size/2)

	re, err := OpenDurableVFS(mem, "db", wal.EveryCommit(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 10 {
		t.Fatalf("fallback recovery lost data: %d keys", re.Len())
	}
	for i := 0; i < 5; i++ {
		if _, ok := re.Get(fmt.Sprintf("a%d", i)); !ok {
			t.Fatalf("a%d lost", i)
		}
		if _, ok := re.Get(fmt.Sprintf("b%d", i)); !ok {
			t.Fatalf("b%d lost", i)
		}
	}
}
