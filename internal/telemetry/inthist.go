package telemetry

import "sync/atomic"

// intBounds are the fixed bucket upper bounds for IntHistogram: powers of
// two from 1 to 4096. Batch sizes (the primary use) are small integers, so
// exponential count buckets give useful resolution without configuration;
// observations above the last bound land in the overflow bucket.
var intBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

const numIntBuckets = 14 // len(intBounds) + 1 overflow

// IntHistogram is a fixed-bucket histogram over non-negative integer
// observations (batch sizes, row counts) — the count-valued sibling of the
// duration Histogram. Observations are lock-free atomic increments.
type IntHistogram struct {
	buckets [numIntBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value. Negative values are clamped to zero.
func (h *IntHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := 0
	for i < len(intBounds) && v > intBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *IntHistogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *IntHistogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average observed value (0 when empty).
func (h *IntHistogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// IntSnapshot is a point-in-time copy of an IntHistogram.
type IntSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [numIntBuckets]int64
}

// Snapshot copies the histogram's current state. As with Histogram, under
// concurrent writes the copy is approximate (each load is atomic).
func (h *IntHistogram) Snapshot() IntSnapshot {
	var s IntSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear interpolation
// within the bucket the target rank falls into. Returns 0 when empty.
func (s IntSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(intBounds[i-1])
			}
			hi := 2 * lo
			if i < len(intBounds) {
				hi = float64(intBounds[i])
			}
			frac := (rank - float64(prev)) / float64(n)
			return lo + frac*(hi-lo)
		}
	}
	return float64(intBounds[len(intBounds)-1])
}
