package telemetry

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// OpStat aggregates one named low-level operation observed during a query —
// a graph.Backend method call, a generated SQL execution, etc.
type OpStat struct {
	Name  string        // e.g. "backend.VertexEdges", "sql.Scan(Patients)"
	Calls int64         // number of invocations
	Items int64         // rows / elements produced
	Total time.Duration // wall time summed over invocations
}

// Span collects everything observed while one query runs: per-statement
// step profiles from the Gremlin engine plus operation stats from the
// layers underneath. A Span travels in the query context (WithSpan /
// SpanFrom); all methods are safe for concurrent use and safe on a nil
// receiver, so recording sites never need to check for absence.
type Span struct {
	mu       sync.Mutex
	ops      []OpStat
	opIdx    map[string]int
	profiles []*Profile
}

// NewSpan returns an empty span.
func NewSpan() *Span {
	return &Span{opIdx: make(map[string]int)}
}

type spanKey struct{}

// WithSpan attaches s to the context. A nil span returns ctx unchanged.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the span carried by ctx, or nil when none is attached.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// RecordOp folds one operation invocation into the span. Nil-safe no-op.
func (s *Span) RecordOp(name string, items int64, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.opIdx[name]
	if !ok {
		i = len(s.ops)
		s.ops = append(s.ops, OpStat{Name: name})
		s.opIdx[name] = i
	}
	s.ops[i].Calls++
	s.ops[i].Items += items
	s.ops[i].Total += d
}

// AddProfile appends one statement's step profile. Nil-safe no-op.
func (s *Span) AddProfile(p *Profile) {
	if s == nil || p == nil {
		return
	}
	s.mu.Lock()
	s.profiles = append(s.profiles, p)
	s.mu.Unlock()
}

// Ops returns a copy of the accumulated operation stats in first-seen order.
func (s *Span) Ops() []OpStat {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]OpStat, len(s.ops))
	copy(out, s.ops)
	return out
}

// Profiles returns the accumulated statement profiles in execution order.
func (s *Span) Profiles() []*Profile {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Profile, len(s.profiles))
	copy(out, s.profiles)
	return out
}

// StepProfile is the cost of one traversal step across the whole query:
// how many traversers entered and left it, how often it ran (repeat bodies
// run once per iteration), and its cumulative wall time. Depth > 0 marks
// steps nested inside repeat()/where()/union() bodies; a parent's time
// includes its children's.
type StepProfile struct {
	Name  string
	Depth int
	In    int64
	Out   int64
	Calls int64
	Dur   time.Duration
}

// Profile is the TinkerPop-style profile() report for one traversal.
type Profile struct {
	Query string // plan rendering of the profiled traversal
	Total time.Duration
	Steps []StepProfile
	Ops   []OpStat // backend/SQL operations attributed to this traversal
}

// String renders the profile as an aligned step-timing table, in the spirit
// of TinkerPop's profile() output.
func (p *Profile) String() string {
	var b strings.Builder
	if p.Query != "" {
		fmt.Fprintf(&b, "profile of %s\n", p.Query)
	}
	fmt.Fprintf(&b, "%-40s %10s %10s %7s %12s %7s\n",
		"Step", "In", "Out", "Calls", "Time", "%")
	total := p.Total
	if total <= 0 {
		for _, s := range p.Steps {
			if s.Depth == 0 {
				total += s.Dur
			}
		}
	}
	for _, s := range p.Steps {
		name := strings.Repeat("  ", s.Depth) + s.Name
		pct := 0.0
		if total > 0 && s.Depth == 0 {
			pct = 100 * float64(s.Dur) / float64(total)
		}
		fmt.Fprintf(&b, "%-40s %10d %10d %7d %12s %6.1f%%\n",
			name, s.In, s.Out, s.Calls, fmtDur(s.Dur), pct)
	}
	fmt.Fprintf(&b, "%-40s %10s %10s %7s %12s\n",
		"TOTAL", "", "", "", fmtDur(p.Total))
	if len(p.Ops) > 0 {
		ops := make([]OpStat, len(p.Ops))
		copy(ops, p.Ops)
		sort.SliceStable(ops, func(i, j int) bool { return ops[i].Total > ops[j].Total })
		fmt.Fprintf(&b, "%-40s %10s %10s %12s\n", "Op", "Calls", "Items", "Time")
		for _, op := range ops {
			fmt.Fprintf(&b, "%-40s %10d %10d %12s\n",
				op.Name, op.Calls, op.Items, fmtDur(op.Total))
		}
	}
	return b.String()
}

// fmtDur prints durations with a stable unit ladder so table columns align.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}
