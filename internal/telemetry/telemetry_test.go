package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one registry from many goroutines — mixed
// get-or-create, updates, and exposition — and relies on -race to flag any
// unsynchronized access.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	names := []string{"a_total", `b_total{x="1"}`, "c_total", "d_total"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				name := names[(w+i)%len(names)]
				reg.Counter(name).Inc()
				reg.Gauge("g_" + name).Add(int64(i%3 - 1))
				reg.Histogram("h_" + name).Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					var sb strings.Builder
					if err := reg.WritePrometheus(&sb); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var total int64
	for _, name := range names {
		total += reg.Counter(name).Value()
	}
	if total != 8*500 {
		t.Fatalf("lost counter increments: got %d, want %d", total, 8*500)
	}
	for _, name := range names {
		if got := reg.Histogram("h_" + name).Count(); got == 0 {
			t.Fatalf("histogram %q recorded no observations", name)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond) // uniform 1µs..1ms
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	// Bucket interpolation is coarse; accept a generous band around truth.
	if p50 := s.P50(); p50 < 200*time.Microsecond || p50 > 1*time.Millisecond {
		t.Errorf("p50 = %v, want ~500µs", p50)
	}
	if p99 := s.P99(); p99 < 500*time.Microsecond || p99 > 2*time.Millisecond {
		t.Errorf("p99 = %v, want ~990µs", p99)
	}
	if p50, p99 := s.P50(), s.P99(); p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
	if s.Quantile(1) < s.Quantile(0.5) {
		t.Errorf("quantiles not monotone")
	}
	var empty Histogram
	if got := empty.Snapshot().P95(); got != 0 {
		t.Errorf("empty histogram p95 = %v, want 0", got)
	}
}

func TestWritePrometheusAndParse(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`req_total{code="OK"}`).Add(7)
	reg.Counter(`req_total{code="PARSE"}`).Add(2)
	reg.Gauge("inflight").Set(3)
	reg.Histogram(`latency_seconds{op="V"}`).Observe(2 * time.Millisecond)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`req_total{code="OK"} 7`,
		`req_total{code="PARSE"} 2`,
		"inflight 3",
		`latency_seconds{op="V",quantile="0.5"}`,
		`latency_seconds_count{op="V"} 1`,
		`latency_seconds_sum{op="V"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	m := ParseMetrics(text)
	if m[`req_total{code="OK"}`] != 7 {
		t.Errorf(`parsed req_total{code="OK"} = %v, want 7`, m[`req_total{code="OK"}`])
	}
	if m["inflight"] != 3 {
		t.Errorf("parsed inflight = %v, want 3", m["inflight"])
	}
	if m[`latency_seconds_count{op="V"}`] != 1 {
		t.Errorf("parsed histogram count = %v, want 1", m[`latency_seconds_count{op="V"}`])
	}
}

func TestSpanNilSafe(t *testing.T) {
	var s *Span
	s.RecordOp("x", 1, time.Millisecond) // must not panic
	s.AddProfile(&Profile{})
	if s.Ops() != nil || s.Profiles() != nil {
		t.Fatal("nil span should report nothing")
	}
	if SpanFrom(context.Background()) != nil {
		t.Fatal("SpanFrom on bare context should be nil")
	}
}

func TestSpanRecordAndContext(t *testing.T) {
	s := NewSpan()
	ctx := WithSpan(context.Background(), s)
	got := SpanFrom(ctx)
	if got != s {
		t.Fatal("SpanFrom did not return the attached span")
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				got.RecordOp("backend.V", 2, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	ops := s.Ops()
	if len(ops) != 1 || ops[0].Calls != 400 || ops[0].Items != 800 {
		t.Fatalf("ops = %+v, want 1 op with 400 calls / 800 items", ops)
	}

	s.AddProfile(&Profile{Query: "g.V()", Total: time.Millisecond,
		Steps: []StepProfile{{Name: "GraphStep(vertex)", In: 0, Out: 5, Calls: 1, Dur: time.Millisecond}}})
	ps := s.Profiles()
	if len(ps) != 1 {
		t.Fatalf("profiles = %d, want 1", len(ps))
	}
	out := ps[0].String()
	for _, want := range []string{"GraphStep(vertex)", "TOTAL", "g.V()"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile table missing %q:\n%s", want, out)
		}
	}
}
