// Package telemetry is the repository's instrument panel: a dependency-free,
// allocation-light metrics registry (atomic counters, gauges, fixed-bucket
// latency histograms with percentile snapshots) plus per-query tracing spans
// that the Gremlin engine, the SQL executor, and the graph backends record
// into. It deliberately imports nothing from the rest of the module so every
// layer can depend on it without cycles.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotonic; this is not
// enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// bucketBounds are the fixed histogram bucket upper bounds. They span 1µs to
// 10s exponentially (1-2-5 decades), which covers everything from a cached
// point lookup to a pathological full scan; observations above the last
// bound land in the overflow bucket.
var bucketBounds = []time.Duration{
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

const numBuckets = 23 // len(bucketBounds) + 1 overflow

// Histogram is a fixed-bucket latency histogram. Observations are lock-free
// atomic increments; percentile estimation happens only at snapshot time.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(bucketBounds) && d > bucketBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// HistSnapshot is a point-in-time copy of a histogram, cheap to query for
// percentiles.
type HistSnapshot struct {
	Count   int64
	Sum     time.Duration
	Buckets [numBuckets]int64
}

// Snapshot copies the histogram's current state. Buckets are read without a
// global lock, so under concurrent writes the snapshot is approximate (each
// individual load is atomic).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear interpolation
// within the bucket the target rank falls into. Returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = bucketBounds[i-1]
			}
			hi := 2 * lo
			if i < len(bucketBounds) {
				hi = bucketBounds[i]
			}
			// Interpolate position of the target rank inside this bucket.
			frac := (rank - float64(prev)) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
	}
	return bucketBounds[len(bucketBounds)-1]
}

// P50 is Quantile(0.50).
func (s HistSnapshot) P50() time.Duration { return s.Quantile(0.50) }

// P95 is Quantile(0.95).
func (s HistSnapshot) P95() time.Duration { return s.Quantile(0.95) }

// P99 is Quantile(0.99).
func (s HistSnapshot) P99() time.Duration { return s.Quantile(0.99) }

// Registry is a named collection of metrics. Lookups take a read lock;
// metric updates after lookup are lock-free. Callers that need per-call
// speed should look a metric up once and hold the pointer.
//
// Label sets are embedded in the metric name itself, Prometheus-style:
//
//	reg.Counter(`gserver_requests_total{code="OK"}`).Inc()
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	ints     map[string]*IntHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		ints:     make(map[string]*IntHistogram),
	}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry used when no explicit registry is
// wired (e.g. SQL-executor operator timings).
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// IntHistogram returns the named integer histogram, creating it on first
// use.
func (r *Registry) IntHistogram(name string) *IntHistogram {
	r.mu.RLock()
	h := r.ints[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.ints[name]; h == nil {
		h = &IntHistogram{}
		r.ints[name] = h
	}
	return h
}

// WritePrometheus renders every metric in Prometheus text exposition format,
// sorted by name for stable output. Histograms are rendered summary-style:
// quantile series plus _count and _sum (sum in seconds).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]HistSnapshot, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h.Snapshot()
	}
	ints := make(map[string]IntSnapshot, len(r.ints))
	for name, h := range r.ints {
		ints[name] = h.Snapshot()
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, name := range sortedKeys(counters) {
		fmt.Fprintf(&b, "%s %d\n", name, counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		fmt.Fprintf(&b, "%s %d\n", name, gauges[name])
	}
	histNames := make([]string, 0, len(hists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		s := hists[name]
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(&b, "%s %g\n",
				withLabel(name, fmt.Sprintf(`quantile="%g"`, q)),
				s.Quantile(q).Seconds())
		}
		fmt.Fprintf(&b, "%s %d\n", suffixed(name, "_count"), s.Count)
		fmt.Fprintf(&b, "%s %g\n", suffixed(name, "_sum"), s.Sum.Seconds())
	}
	intNames := make([]string, 0, len(ints))
	for name := range ints {
		intNames = append(intNames, name)
	}
	sort.Strings(intNames)
	for _, name := range intNames {
		s := ints[name]
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(&b, "%s %g\n",
				withLabel(name, fmt.Sprintf(`quantile="%g"`, q)),
				s.Quantile(q))
		}
		fmt.Fprintf(&b, "%s %d\n", suffixed(name, "_count"), s.Count)
		fmt.Fprintf(&b, "%s %d\n", suffixed(name, "_sum"), s.Sum)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// withLabel splices one extra label pair into a metric name that may already
// carry a label set: foo -> foo{pair}, foo{a="b"} -> foo{a="b",pair}.
func withLabel(name, pair string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + pair + "}"
	}
	return name + "{" + pair + "}"
}

// suffixed appends a suffix to the base metric name, before any label set:
// foo -> foo_count, foo{a="b"} -> foo_count{a="b"}.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// ParseMetrics parses Prometheus text exposition (as produced by
// WritePrometheus) back into a name -> value map. Comment and blank lines
// are skipped; malformed lines are ignored. The gserver client uses it to
// turn a `!metrics` reply into something programmatic.
func ParseMetrics(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}
