package linkbench

import (
	"fmt"
	"time"

	"db2graph/internal/gserver"
)

// MeasureLatencyViaServer runs n queries of each kind against a Gremlin
// server (the paper's deployment: systems "running in server mode and
// responding to requests from clients at localhost"). Queries travel as
// Gremlin text through the JSON-lines protocol, so this path additionally
// exercises the parser and the network stack.
func MeasureLatencyViaServer(addr string, w *Workload, n int) ([]LatencyResult, error) {
	client, err := gserver.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	out := make([]LatencyResult, 0, int(numQueryKinds))
	for k := QueryKind(0); k < numQueryKinds; k++ {
		queries := make([]Query, n)
		for i := range queries {
			queries[i] = w.Next(k)
		}
		warm := len(queries)
		if warm > 10 {
			warm = 10
		}
		for _, q := range queries[:warm] {
			if _, err := client.Submit(q.Gremlin()); err != nil {
				return nil, fmt.Errorf("linkbench: %s: %w", k, err)
			}
		}
		var results int64
		start := time.Now()
		for _, q := range queries {
			res, err := client.Submit(q.Gremlin())
			if err != nil {
				return nil, fmt.Errorf("linkbench: %s: %w", k, err)
			}
			results += int64(len(res))
		}
		total := time.Since(start)
		out = append(out, LatencyResult{
			Kind: k, Ops: n, Total: total,
			Mean:    total / time.Duration(n),
			Results: results,
		})
	}
	return out, nil
}
