// Package linkbench reimplements the query-only part of LinkBench, the
// Facebook social-graph benchmark the paper evaluates with (Tables 1 and
// 2). It generates synthetic social graphs with the paper's shape (10
// vertex types, 10 edge types, ~4.2-4.3 average degree with an extreme-
// degree hub, 3 vertex and 4 edge properties), loads them into the
// relational engine (for Db2 Graph) or any graph.Mutable backend (for the
// standalone baselines), exports CSV for the loading experiment, and
// provides the four benchmark queries plus latency/throughput drivers.
package linkbench

import (
	"fmt"
	"math/rand"
	"strings"

	"db2graph/internal/graph"
	"db2graph/internal/overlay"
	"db2graph/internal/sql/engine"
	"db2graph/internal/sql/types"
)

// Layout selects the relational schema shape.
type Layout int

// Layouts.
const (
	// LayoutSplit stores each vertex type and edge type in its own table
	// (10 + 10 tables) with fixed labels and prefixed ids — exercising the
	// label-elimination and prefixed-id optimizations.
	LayoutSplit Layout = iota
	// LayoutSingle stores one node table and one link table with type
	// columns, the schema real LinkBench deployments use.
	LayoutSingle
)

// Config parameterizes dataset generation.
type Config struct {
	// Vertices is the vertex count (the paper uses 10M and 100M; defaults
	// here are laptop-scaled).
	Vertices int
	// VertexTypes/EdgeTypes default to 10 each, as in the paper.
	VertexTypes int
	EdgeTypes   int
	// AvgDegree targets the paper's ~4.2-4.3 average out-degree.
	AvgDegree float64
	// HubFraction sizes the single extreme-degree hub vertex as a fraction
	// of the vertex count (the paper's max degree is ~9.6% of 10M).
	HubFraction float64
	// HubInFraction redirects this fraction of every other vertex's edges to
	// point *at* the hub (vertex 1), modeling the celebrity-style in-hub of
	// real social graphs: many sources, few destinations. Zero (the default)
	// keeps destinations uniform. High values concentrate edge endpoints,
	// which is the skew the cost-based planner's duplicate-endpoint
	// resolution exploits.
	HubInFraction float64
	// Seed makes generation deterministic.
	Seed int64
	// Layout selects the relational schema.
	Layout Layout
}

// DefaultConfig returns the laptop-scale stand-in for the 10M dataset.
func DefaultConfig(vertices int) Config {
	return Config{
		Vertices:    vertices,
		VertexTypes: 10,
		EdgeTypes:   10,
		AvgDegree:   4.3,
		HubFraction: 0.096,
		Seed:        42,
		Layout:      LayoutSplit,
	}
}

// Edge is one generated link.
type Edge struct {
	Src, Dst int64
	Type     int
	// Properties (4, like the paper's edges).
	Visibility int64
	Data       string
	Time       int64
	Version    int64
}

// Dataset is a fully generated graph.
type Dataset struct {
	Cfg   Config
	Edges []Edge
	// degree statistics computed during generation
	MaxDegree int
}

// vertexType returns the type of vertex id (round-robin assignment).
func (d *Dataset) vertexType(id int64) int {
	return int(id) % d.Cfg.VertexTypes
}

// VertexLabel names a vertex type.
func VertexLabel(t int) string { return fmt.Sprintf("nodeT%d", t) }

// EdgeLabel names an edge type.
func EdgeLabel(t int) string { return fmt.Sprintf("linkT%d", t) }

// VertexID renders the graph id of a vertex. LinkBench node ids are
// globally unique integers, so both layouts use the bare id — which means
// a bare g.V(id) must search every vertex table, and the pushed-down
// hasLabel is what pins the single table (the paper's Figure 4 mechanism).
func (d *Dataset) VertexID(id int64) string {
	return fmt.Sprintf("%d", id)
}

// randomData builds a deterministic payload string.
func randomData(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	var sb strings.Builder
	sb.Grow(n)
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}

// Generate builds a dataset. Out-degrees follow a heavy-tailed
// distribution around AvgDegree, with vertex 1 designated the hub.
func Generate(cfg Config) *Dataset {
	if cfg.VertexTypes <= 0 {
		cfg.VertexTypes = 10
	}
	if cfg.EdgeTypes <= 0 {
		cfg.EdgeTypes = 10
	}
	if cfg.AvgDegree <= 0 {
		cfg.AvgDegree = 4.3
	}
	d := &Dataset{Cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := int64(cfg.Vertices)
	if n <= 1 {
		return d
	}

	hubDegree := int(float64(cfg.Vertices) * cfg.HubFraction)
	// Reserve the hub's edges within the average-degree budget.
	totalBudget := int(float64(cfg.Vertices) * cfg.AvgDegree)
	if hubDegree > totalBudget/2 {
		hubDegree = totalBudget / 2
	}
	remaining := totalBudget - hubDegree
	// Per-vertex degree: geometric-ish around the residual mean with a
	// power-law tail, matching LinkBench's skew.
	meanRest := float64(remaining) / float64(cfg.Vertices-1)

	degrees := make([]int, cfg.Vertices+1) // 1-based ids
	seen := make(map[[3]int64]bool, totalBudget)
	addEdge := func(src int64, rng *rand.Rand) {
		dst := rng.Int63n(n) + 1
		if cfg.HubInFraction > 0 && src != 1 && rng.Float64() < cfg.HubInFraction {
			dst = 1
		}
		if dst == src {
			dst = dst%n + 1
		}
		t := rng.Intn(cfg.EdgeTypes)
		key := [3]int64{src, int64(t), dst}
		if seen[key] {
			return // LinkBench links are unique on (id1, link_type, id2)
		}
		seen[key] = true
		d.Edges = append(d.Edges, Edge{
			Src: src, Dst: dst, Type: t,
			Visibility: int64(rng.Intn(2)),
			Data:       randomData(rng, 16),
			Time:       1500000000 + rng.Int63n(100000000),
			Version:    int64(rng.Intn(5)),
		})
		degrees[src]++
	}

	for id := int64(1); id <= n; id++ {
		if id == 1 {
			for k := 0; k < hubDegree; k++ {
				addEdge(id, rng)
			}
			continue
		}
		// Heavy-tailed degree: 80% of vertices draw near the mean, the
		// rest from a longer tail.
		var deg int
		if rng.Float64() < 0.8 {
			deg = poissonish(rng, meanRest*0.75)
		} else {
			deg = poissonish(rng, meanRest*2.0)
		}
		for k := 0; k < deg; k++ {
			addEdge(id, rng)
		}
	}
	for _, deg := range degrees {
		if deg > d.MaxDegree {
			d.MaxDegree = deg
		}
	}
	return d
}

// poissonish samples a small non-negative integer with the given mean
// (geometric distribution, giving the skew LinkBench's degree histogram
// shows at the low end).
func poissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1.0 / (1.0 + mean)
	k := 0
	for rng.Float64() > p && k < 1000 {
		k++
	}
	return k
}

// Stats summarizes a dataset for Table 2.
type Stats struct {
	Vertices  int
	Edges     int
	AvgDegree float64
	MaxDegree int
	// CSVBytes is the exact size of the dataset rendered as CSV.
	CSVBytes int64
}

// Stats computes Table 2's columns.
func (d *Dataset) Stats() Stats {
	s := Stats{Vertices: d.Cfg.Vertices, Edges: len(d.Edges), MaxDegree: d.MaxDegree}
	if d.Cfg.Vertices > 0 {
		s.AvgDegree = float64(len(d.Edges)) / float64(d.Cfg.Vertices)
	}
	s.CSVBytes = d.csvBytes()
	return s
}

// csvBytes sizes the CSV rendering without materializing it.
func (d *Dataset) csvBytes() int64 {
	var total int64
	rng := rand.New(rand.NewSource(d.Cfg.Seed + 1))
	for id := int64(1); id <= int64(d.Cfg.Vertices); id++ {
		line := d.vertexCSV(id, rng)
		total += int64(len(line)) + 1
	}
	for _, e := range d.Edges {
		total += int64(len(e.csv())) + 1
	}
	return total
}

// vertexProps derives the deterministic vertex properties.
func (d *Dataset) vertexProps(id int64, rng *rand.Rand) (version, vtime int64, data string) {
	// Deterministic per-id properties (independent of generation order).
	local := rand.New(rand.NewSource(d.Cfg.Seed ^ id))
	_ = rng
	return int64(local.Intn(5)), 1500000000 + local.Int63n(100000000), randomData(local, 32)
}

func (d *Dataset) vertexCSV(id int64, rng *rand.Rand) string {
	v, t, data := d.vertexProps(id, rng)
	return fmt.Sprintf("%d,%d,%d,%d,%s", id, d.vertexType(id), v, t, data)
}

func (e Edge) csv() string {
	return fmt.Sprintf("%d,%d,%d,%d,%s,%d,%d", e.Src, e.Type, e.Dst, e.Visibility, e.Data, e.Time, e.Version)
}

// --- Relational load (Db2 Graph side) ---

// LoadSQL creates the relational schema for the configured layout, inserts
// the dataset, builds the indexes every system gets (the paper builds "all
// the indexes necessary for each system"), and returns the overlay
// configuration mapping the tables to the property graph.
func (d *Dataset) LoadSQL(db *engine.Database) (*overlay.Config, error) {
	switch d.Cfg.Layout {
	case LayoutSplit:
		return d.loadSplit(db)
	case LayoutSingle:
		return d.loadSingle(db)
	default:
		return nil, fmt.Errorf("linkbench: unknown layout %d", d.Cfg.Layout)
	}
}

func (d *Dataset) loadSplit(db *engine.Database) (*overlay.Config, error) {
	cfg := &overlay.Config{}
	for t := 0; t < d.Cfg.VertexTypes; t++ {
		table := fmt.Sprintf("node_t%d", t)
		ddl := fmt.Sprintf(`CREATE TABLE %s (id BIGINT PRIMARY KEY, version BIGINT, time BIGINT, data VARCHAR(64))`, table)
		if _, err := db.Exec(ddl); err != nil {
			return nil, err
		}
		cfg.VTables = append(cfg.VTables, overlay.VTable{
			TableName:  table,
			ID:         "id",
			FixLabel:   true,
			Label:      "'" + VertexLabel(t) + "'",
			Properties: []string{"version", "time", "data"},
		})
	}
	for t := 0; t < d.Cfg.EdgeTypes; t++ {
		table := fmt.Sprintf("link_t%d", t)
		ddl := fmt.Sprintf(`CREATE TABLE %s (
			id1 BIGINT NOT NULL, id2 BIGINT NOT NULL,
			visibility BIGINT, data VARCHAR(32), time BIGINT, version BIGINT,
			PRIMARY KEY (id1, id2))`, table)
		if _, err := db.Exec(ddl); err != nil {
			return nil, err
		}
		for _, idxCol := range []string{"id1", "id2"} {
			if _, err := db.Exec(fmt.Sprintf("CREATE INDEX idx_%s_%s ON %s (%s)", table, idxCol, table, idxCol)); err != nil {
				return nil, err
			}
		}
		cfg.ETables = append(cfg.ETables, overlay.ETable{
			TableName:      table,
			SrcV:           "id1",
			DstV:           "id2",
			ImplicitEdgeID: true,
			FixLabel:       true,
			Label:          "'" + EdgeLabel(t) + "'",
			Properties:     []string{"visibility", "data", "time", "version"},
		})
	}

	// Bulk insert with prepared statements.
	rng := rand.New(rand.NewSource(d.Cfg.Seed + 1))
	nodeIns := make([]*engine.Stmt, d.Cfg.VertexTypes)
	for t := range nodeIns {
		st, err := db.Prepare(fmt.Sprintf("INSERT INTO node_t%d VALUES (?, ?, ?, ?)", t))
		if err != nil {
			return nil, err
		}
		nodeIns[t] = st
	}
	for id := int64(1); id <= int64(d.Cfg.Vertices); id++ {
		v, tm, data := d.vertexProps(id, rng)
		if _, err := nodeIns[d.vertexType(id)].Exec(id, v, tm, data); err != nil {
			return nil, err
		}
	}
	linkIns := make([]*engine.Stmt, d.Cfg.EdgeTypes)
	for t := range linkIns {
		st, err := db.Prepare(fmt.Sprintf("INSERT INTO link_t%d VALUES (?, ?, ?, ?, ?, ?)", t))
		if err != nil {
			return nil, err
		}
		linkIns[t] = st
	}
	for _, e := range d.Edges {
		if _, err := linkIns[e.Type].Exec(
			e.Src, e.Dst, e.Visibility, e.Data, e.Time, e.Version); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

func (d *Dataset) loadSingle(db *engine.Database) (*overlay.Config, error) {
	if err := db.ExecScript(`
		CREATE TABLE node (id BIGINT PRIMARY KEY, type VARCHAR(16), version BIGINT, time BIGINT, data VARCHAR(64));
		CREATE TABLE link (id1 BIGINT NOT NULL, link_type VARCHAR(16) NOT NULL, id2 BIGINT NOT NULL,
			visibility BIGINT, data VARCHAR(32), time BIGINT, version BIGINT,
			PRIMARY KEY (id1, link_type, id2));
		CREATE INDEX idx_link_id1 ON link (id1);
		CREATE INDEX idx_link_id2 ON link (id2);
	`); err != nil {
		return nil, err
	}
	cfg := &overlay.Config{
		VTables: []overlay.VTable{{
			TableName: "node", ID: "id", Label: "type",
			Properties: []string{"version", "time", "data"},
		}},
		ETables: []overlay.ETable{{
			TableName: "link", SrcVTable: "node", SrcV: "id1",
			DstVTable: "node", DstV: "id2",
			ImplicitEdgeID: true, Label: "link_type",
			Properties: []string{"visibility", "data", "time", "version"},
		}},
	}
	rng := rand.New(rand.NewSource(d.Cfg.Seed + 1))
	nodeIns, err := db.Prepare("INSERT INTO node VALUES (?, ?, ?, ?, ?)")
	if err != nil {
		return nil, err
	}
	for id := int64(1); id <= int64(d.Cfg.Vertices); id++ {
		v, tm, data := d.vertexProps(id, rng)
		if _, err := nodeIns.Exec(id, VertexLabel(d.vertexType(id)), v, tm, data); err != nil {
			return nil, err
		}
	}
	linkIns, err := db.Prepare("INSERT INTO link VALUES (?, ?, ?, ?, ?, ?, ?)")
	if err != nil {
		return nil, err
	}
	for _, e := range d.Edges {
		if _, err := linkIns.Exec(e.Src, EdgeLabel(e.Type), e.Dst, e.Visibility, e.Data, e.Time, e.Version); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// --- Standalone graph database load ---

// edgeGraphID renders the edge id the overlay's implicit scheme produces,
// so every backend reports identical element ids.
func (d *Dataset) edgeGraphID(e Edge) string {
	srcParts := overlay.DecomposeID(d.VertexID(e.Src))
	parts := append([]string{}, srcParts...)
	parts = append(parts, EdgeLabel(e.Type))
	parts = append(parts, overlay.DecomposeID(d.VertexID(e.Dst))...)
	return overlay.ComposeID(parts)
}

// VertexElement materializes the graph element of a vertex.
func (d *Dataset) VertexElement(id int64) *graph.Element {
	rng := rand.New(rand.NewSource(0))
	v, tm, data := d.vertexProps(id, rng)
	return &graph.Element{
		ID:    d.VertexID(id),
		Label: VertexLabel(d.vertexType(id)),
		Props: map[string]types.Value{
			"version": types.NewInt(v),
			"time":    types.NewInt(tm),
			"data":    types.NewString(data),
		},
	}
}

// EdgeElement materializes the graph element of an edge.
func (d *Dataset) EdgeElement(e Edge) *graph.Element {
	return &graph.Element{
		ID:     d.edgeGraphID(e),
		Label:  EdgeLabel(e.Type),
		IsEdge: true,
		OutV:   d.VertexID(e.Src),
		InV:    d.VertexID(e.Dst),
		Props: map[string]types.Value{
			"visibility": types.NewInt(e.Visibility),
			"data":       types.NewString(e.Data),
			"time":       types.NewInt(e.Time),
			"version":    types.NewInt(e.Version),
		},
	}
}

// LoadBackend loads the dataset into any mutable graph backend (the
// standalone baselines).
func (d *Dataset) LoadBackend(m graph.Mutable) error {
	for id := int64(1); id <= int64(d.Cfg.Vertices); id++ {
		if err := m.AddVertex(d.VertexElement(id)); err != nil {
			return err
		}
	}
	for _, e := range d.Edges {
		if err := m.AddEdge(d.EdgeElement(e)); err != nil {
			return err
		}
	}
	return nil
}
