package linkbench

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"db2graph/internal/core"
	"db2graph/internal/gdbx"
	"db2graph/internal/graph"
	"db2graph/internal/gremlin"
	"db2graph/internal/gserver"
	"db2graph/internal/janus"
	"db2graph/internal/sql/engine"
	"db2graph/internal/sql/types"
)

func smallConfig() Config {
	cfg := DefaultConfig(500)
	return cfg
}

func TestGenerateDeterministicAndShaped(t *testing.T) {
	d1 := Generate(smallConfig())
	d2 := Generate(smallConfig())
	if len(d1.Edges) != len(d2.Edges) {
		t.Fatalf("non-deterministic generation: %d vs %d edges", len(d1.Edges), len(d2.Edges))
	}
	for i := range d1.Edges {
		if d1.Edges[i] != d2.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	st := d1.Stats()
	if st.Vertices != 500 {
		t.Fatalf("vertices = %d", st.Vertices)
	}
	// Average degree near the configured 4.3 (dedup trims a little).
	if st.AvgDegree < 2.5 || st.AvgDegree > 5.5 {
		t.Fatalf("avg degree = %.2f", st.AvgDegree)
	}
	// Heavy tail: the hub dominates.
	if st.MaxDegree < 20 {
		t.Fatalf("max degree = %d", st.MaxDegree)
	}
	if st.CSVBytes <= 0 {
		t.Fatal("csv bytes = 0")
	}
	// Edge (src,type,dst) triples are unique.
	seen := map[[3]int64]bool{}
	for _, e := range d1.Edges {
		k := [3]int64{e.Src, int64(e.Type), e.Dst}
		if seen[k] {
			t.Fatalf("duplicate link %v", k)
		}
		seen[k] = true
		if e.Src == e.Dst {
			t.Fatalf("self loop %v", k)
		}
	}
}

func TestVertexIDsAndLabels(t *testing.T) {
	d := Generate(smallConfig())
	if d.VertexID(13) != "13" {
		t.Fatalf("VertexID = %q", d.VertexID(13))
	}
	if VertexLabel(3) != "nodeT3" || EdgeLabel(7) != "linkT7" {
		t.Fatal("labels wrong")
	}
	single := Generate(Config{Vertices: 10, VertexTypes: 10, EdgeTypes: 10, AvgDegree: 2, Seed: 1, Layout: LayoutSingle})
	if single.VertexID(7) != "7" {
		t.Fatalf("single-layout id = %q", single.VertexID(7))
	}
}

func TestQueriesRenderTable1(t *testing.T) {
	q := Query{Kind: GetNode, ID1: "1", Label: "nodeT1"}
	if q.Gremlin() != "g.V('1').hasLabel('nodeT1')" {
		t.Fatalf("getNode = %q", q.Gremlin())
	}
	q = Query{Kind: CountLinks, ID1: "1", Label: "linkT2"}
	if q.Gremlin() != "g.V('1').outE('linkT2').count()" {
		t.Fatalf("countLinks = %q", q.Gremlin())
	}
	q = Query{Kind: GetLink, ID1: "a", Label: "l", ID2: "b"}
	if q.Gremlin() != "g.V('a').outE('l').filter(inV().id() == 'b')" {
		t.Fatalf("getLink = %q", q.Gremlin())
	}
	q = Query{Kind: GetLinkList, ID1: "a", Label: "l"}
	if q.Gremlin() != "g.V('a').outE('l')" {
		t.Fatalf("getLinkList = %q", q.Gremlin())
	}
	names := []string{GetNode.String(), CountLinks.String(), GetLink.String(), GetLinkList.String()}
	if strings.Join(names, ",") != "getNode,countLinks,getLink,getLinkList" {
		t.Fatalf("names = %v", names)
	}
}

// loadAll loads the same dataset into all three systems.
func loadAll(t *testing.T, d *Dataset) (db2 *gremlin.Source, gx *gremlin.Source, jn *gremlin.Source) {
	t.Helper()
	db := engine.New()
	cfg, err := d.LoadSQL(db)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Open(db, cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	gdbxG := gdbx.New(gdbx.Config{PrefetchOnOpen: true})
	if err := d.LoadBackend(gdbxG); err != nil {
		t.Fatal(err)
	}
	if err := gdbxG.Seal(); err != nil {
		t.Fatal(err)
	}

	janusG := janus.New()
	loader := janusG.NewBulkLoader()
	if err := d.LoadBackend(loader); err != nil {
		t.Fatal(err)
	}
	if err := loader.Flush(); err != nil {
		t.Fatal(err)
	}

	return g.Traversal(), gremlin.NewSource(gdbxG), gremlin.NewSource(janusG)
}

// janus.BulkLoader must satisfy graph.Mutable for LoadBackend.
var _ graph.Mutable = (*janus.BulkLoader)(nil)

func resultKey(objs []any) string {
	var parts []string
	for _, o := range objs {
		switch x := o.(type) {
		case *graph.Element:
			parts = append(parts, x.ID)
		case types.Value:
			parts = append(parts, x.Text())
		default:
			parts = append(parts, "?")
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// TestAllSystemsAgree is the cross-system correctness anchor for the
// benchmark harness: the four LinkBench queries return identical results
// on Db2 Graph, GDB-X, and JanusGraph.
func TestAllSystemsAgree(t *testing.T) {
	d := Generate(smallConfig())
	db2, gx, jn := loadAll(t, d)
	w := d.NewWorkload(7)
	for i := 0; i < 100; i++ {
		q := w.NextAny()
		a, err := q.Build(db2).ToList()
		if err != nil {
			t.Fatalf("db2graph %s: %v", q.Gremlin(), err)
		}
		b, err := q.Build(gx).ToList()
		if err != nil {
			t.Fatalf("gdbx %s: %v", q.Gremlin(), err)
		}
		c, err := q.Build(jn).ToList()
		if err != nil {
			t.Fatalf("janus %s: %v", q.Gremlin(), err)
		}
		ka, kb, kc := resultKey(a), resultKey(b), resultKey(c)
		if ka != kb || ka != kc {
			t.Fatalf("query %s diverged:\n db2graph=%s\n gdbx=%s\n janus=%s", q.Gremlin(), ka, kb, kc)
		}
		if q.Kind == GetNode && len(a) != 1 {
			t.Fatalf("getNode returned %d results", len(a))
		}
	}
}

func TestGremlinTextMatchesBuilder(t *testing.T) {
	d := Generate(smallConfig())
	db2, _, _ := loadAll(t, d)
	w := d.NewWorkload(11)
	for i := 0; i < 20; i++ {
		q := w.NextAny()
		a, err := q.Build(db2).ToList()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := gremlin.ParseTraversal(db2, q.Gremlin(), nil)
		if err != nil {
			t.Fatalf("parse %q: %v", q.Gremlin(), err)
		}
		b, err := tr.ToList()
		if err != nil {
			t.Fatal(err)
		}
		if resultKey(a) != resultKey(b) {
			t.Fatalf("builder and text diverge for %s", q.Gremlin())
		}
	}
}

func TestSingleLayoutWorks(t *testing.T) {
	cfg := smallConfig()
	cfg.Layout = LayoutSingle
	d := Generate(cfg)
	db := engine.New()
	ocfg, err := d.LoadSQL(db)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Open(db, ocfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	src := g.Traversal()
	w := d.NewWorkload(3)
	for i := 0; i < 30; i++ {
		q := w.NextAny()
		if _, err := q.Build(src).ToList(); err != nil {
			t.Fatalf("%s: %v", q.Gremlin(), err)
		}
	}
	// getNode must find exactly one vertex.
	q := w.Next(GetNode)
	objs, err := q.Build(src).ToList()
	if err != nil || len(objs) != 1 {
		t.Fatalf("getNode on single layout = %v, %v", objs, err)
	}
}

func TestMeasureLatency(t *testing.T) {
	d := Generate(DefaultConfig(200))
	db2, _, _ := loadAll(t, d)
	w := d.NewWorkload(5)
	res, err := MeasureLatency(db2, w, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.Ops != 5 || r.Mean <= 0 {
			t.Fatalf("bad result %+v", r)
		}
	}
}

func TestMeasureThroughput(t *testing.T) {
	d := Generate(DefaultConfig(200))
	db2, _, _ := loadAll(t, d)
	w := d.NewWorkload(5)
	res, err := MeasureThroughput(db2, w, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.Ops != 20 || r.OpsSec <= 0 {
			t.Fatalf("bad result %+v", r)
		}
	}
}

func TestExportCSV(t *testing.T) {
	d := Generate(DefaultConfig(100))
	dir := t.TempDir()
	n, err := d.ExportCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("no bytes exported")
	}
	nodes, err := os.ReadFile(filepath.Join(dir, "nodes.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(string(nodes)), "\n")) != 100 {
		t.Fatal("nodes.csv row count wrong")
	}
	links, err := os.ReadFile(filepath.Join(dir, "links.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(nodes)+len(links)) != n {
		t.Fatalf("byte accounting: %d + %d != %d", len(nodes), len(links), n)
	}
	// csvBytes estimate matches the real export.
	if d.Stats().CSVBytes != n {
		t.Fatalf("csvBytes estimate %d != actual %d", d.Stats().CSVBytes, n)
	}
}

func TestCountLinksMatchesDataset(t *testing.T) {
	d := Generate(DefaultConfig(300))
	db2, _, _ := loadAll(t, d)
	// Count ground truth for a few (src, type) pairs.
	type key struct {
		src int64
		t   int
	}
	truth := map[key]int64{}
	for _, e := range d.Edges {
		truth[key{e.Src, e.Type}]++
	}
	checked := 0
	for k, want := range truth {
		if checked >= 20 {
			break
		}
		checked++
		q := Query{Kind: CountLinks, ID1: d.VertexID(k.src), Label: EdgeLabel(k.t)}
		obj, err := q.Build(db2).Next()
		if err != nil {
			t.Fatal(err)
		}
		if got := obj.(types.Value).I; got != want {
			t.Fatalf("countLinks(%v) = %d, want %d", k, got, want)
		}
	}
}

func TestServerModeLatency(t *testing.T) {
	d := Generate(DefaultConfig(200))
	db2, _, _ := loadAll(t, d)
	srv := gserver.New(db2)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := MeasureLatencyViaServer(addr, d.NewWorkload(9), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.Mean <= 0 {
			t.Fatalf("bad result %+v", r)
		}
	}
	// getNode over the server must return exactly one result per query.
	if res[0].Results != int64(res[0].Ops) {
		t.Fatalf("getNode results = %d over %d ops", res[0].Results, res[0].Ops)
	}
}

// TestMeasureLatencyDist checks that the distribution driver produces sane,
// internally consistent percentiles for every operation.
func TestMeasureLatencyDist(t *testing.T) {
	d := Generate(smallConfig())
	db2, _, _ := loadAll(t, d)
	dists, err := MeasureLatencyDist(db2, d.NewWorkload(7), 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != int(numQueryKinds) {
		t.Fatalf("got %d kinds, want %d", len(dists), int(numQueryKinds))
	}
	for _, ld := range dists {
		if ld.Ops != 30 || ld.OpsSec <= 0 {
			t.Fatalf("%s: ops=%d ops/sec=%v", ld.Kind, ld.Ops, ld.OpsSec)
		}
		if ld.P50 <= 0 || ld.P50 > ld.P95 || ld.P95 > ld.P99 || ld.P99 > ld.Max {
			t.Fatalf("%s: percentiles not monotone: p50=%v p95=%v p99=%v max=%v",
				ld.Kind, ld.P50, ld.P95, ld.P99, ld.Max)
		}
	}
}
