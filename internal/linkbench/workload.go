package linkbench

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"db2graph/internal/gremlin"
)

// QueryKind enumerates the four LinkBench queries of Table 1.
type QueryKind int

// The LinkBench query types.
const (
	GetNode QueryKind = iota
	CountLinks
	GetLink
	GetLinkList
	numQueryKinds
)

// String names the query kind as the paper does.
func (k QueryKind) String() string {
	switch k {
	case GetNode:
		return "getNode"
	case CountLinks:
		return "countLinks"
	case GetLink:
		return "getLink"
	case GetLinkList:
		return "getLinkList"
	default:
		return fmt.Sprintf("QueryKind(%d)", int(k))
	}
}

// Query is one concrete benchmark operation.
type Query struct {
	Kind QueryKind
	// ID1 is the (graph) id of the anchor vertex; Label the vertex or edge
	// label; ID2 the destination vertex id for getLink.
	ID1   string
	Label string
	ID2   string
}

// Gremlin renders the query as Table 1's Gremlin text.
func (q Query) Gremlin() string {
	switch q.Kind {
	case GetNode:
		return fmt.Sprintf("g.V('%s').hasLabel('%s')", q.ID1, q.Label)
	case CountLinks:
		return fmt.Sprintf("g.V('%s').outE('%s').count()", q.ID1, q.Label)
	case GetLink:
		return fmt.Sprintf("g.V('%s').outE('%s').filter(inV().id() == '%s')", q.ID1, q.Label, q.ID2)
	case GetLinkList:
		return fmt.Sprintf("g.V('%s').outE('%s')", q.ID1, q.Label)
	default:
		return ""
	}
}

// Build constructs the query as a traversal on src (the fast path used by
// the latency/throughput drivers; the Gremlin text form goes through the
// parser and the network server).
func (q Query) Build(src *gremlin.Source) *gremlin.Traversal {
	switch q.Kind {
	case GetNode:
		return src.V(q.ID1).HasLabel(q.Label)
	case CountLinks:
		return src.V(q.ID1).OutE(q.Label).Count()
	case GetLink:
		return src.V(q.ID1).OutE(q.Label).Where(gremlin.Anon().InV().HasID(q.ID2))
	case GetLinkList:
		return src.V(q.ID1).OutE(q.Label)
	default:
		return nil
	}
}

// Workload generates random benchmark queries over a dataset.
type Workload struct {
	d   *Dataset
	rng *rand.Rand
	mu  sync.Mutex
}

// NewWorkload creates a deterministic workload generator.
func (d *Dataset) NewWorkload(seed int64) *Workload {
	return &Workload{d: d, rng: rand.New(rand.NewSource(seed))}
}

// Next produces the next random query of the given kind. Anchor vertices
// are drawn from edge sources so adjacency queries hit real data.
func (w *Workload) Next(kind QueryKind) Query {
	w.mu.Lock()
	defer w.mu.Unlock()
	d := w.d
	switch kind {
	case GetNode:
		id := w.rng.Int63n(int64(d.Cfg.Vertices)) + 1
		return Query{Kind: kind, ID1: d.VertexID(id), Label: VertexLabel(d.vertexType(id))}
	default:
		e := d.Edges[w.rng.Intn(len(d.Edges))]
		return Query{
			Kind:  kind,
			ID1:   d.VertexID(e.Src),
			Label: EdgeLabel(e.Type),
			ID2:   d.VertexID(e.Dst),
		}
	}
}

// NextAny produces a random query of a random kind.
func (w *Workload) NextAny() Query {
	w.mu.Lock()
	k := QueryKind(w.rng.Intn(int(numQueryKinds)))
	w.mu.Unlock()
	return w.Next(k)
}

// LatencyResult reports mean latency per query kind.
type LatencyResult struct {
	Kind    QueryKind
	Ops     int
	Mean    time.Duration
	Total   time.Duration
	Results int64 // cumulative result cardinality (sanity signal)
}

// MeasureLatency runs n queries of each kind sequentially and reports the
// mean latency per kind (Figures 4 and 5).
func MeasureLatency(src *gremlin.Source, w *Workload, n int) ([]LatencyResult, error) {
	out := make([]LatencyResult, 0, int(numQueryKinds))
	for k := QueryKind(0); k < numQueryKinds; k++ {
		// Pre-generate so query generation cost stays out of the timing.
		queries := make([]Query, n)
		for i := range queries {
			queries[i] = w.Next(k)
		}
		// Warm up (statement caches, plan pools) before timing.
		warm := len(queries)
		if warm > 20 {
			warm = 20
		}
		for _, q := range queries[:warm] {
			if _, err := q.Build(src).ToList(); err != nil {
				return nil, fmt.Errorf("linkbench: %s: %w", k, err)
			}
		}
		var results int64
		start := time.Now()
		for _, q := range queries {
			objs, err := q.Build(src).ToList()
			if err != nil {
				return nil, fmt.Errorf("linkbench: %s: %w", k, err)
			}
			results += int64(len(objs))
		}
		total := time.Since(start)
		out = append(out, LatencyResult{
			Kind: k, Ops: n, Total: total,
			Mean:    total / time.Duration(n),
			Results: results,
		})
	}
	return out, nil
}

// LatencyDist reports the per-operation latency distribution for one query
// kind: exact percentiles over the sorted sample, plus aggregate throughput.
type LatencyDist struct {
	Kind   QueryKind
	Ops    int
	OpsSec float64
	Mean   time.Duration
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
	Max    time.Duration
}

// percentile returns the exact q-th percentile of a sorted sample using the
// nearest-rank method.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// MeasureLatencyDist is MeasureLatency with per-operation timing: it runs n
// queries of each kind sequentially and reports exact p50/p95/p99 over the
// individual operation latencies (the BENCH_linkbench.json payload).
func MeasureLatencyDist(src *gremlin.Source, w *Workload, n int) ([]LatencyDist, error) {
	out := make([]LatencyDist, 0, int(numQueryKinds))
	for k := QueryKind(0); k < numQueryKinds; k++ {
		queries := make([]Query, n)
		for i := range queries {
			queries[i] = w.Next(k)
		}
		warm := len(queries)
		if warm > 20 {
			warm = 20
		}
		for _, q := range queries[:warm] {
			if _, err := q.Build(src).ToList(); err != nil {
				return nil, fmt.Errorf("linkbench: %s: %w", k, err)
			}
		}
		durs := make([]time.Duration, 0, n)
		var total time.Duration
		for _, q := range queries {
			begin := time.Now()
			if _, err := q.Build(src).ToList(); err != nil {
				return nil, fmt.Errorf("linkbench: %s: %w", k, err)
			}
			d := time.Since(begin)
			durs = append(durs, d)
			total += d
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		out = append(out, LatencyDist{
			Kind:   k,
			Ops:    n,
			OpsSec: float64(n) / total.Seconds(),
			Mean:   total / time.Duration(n),
			P50:    percentile(durs, 0.50),
			P95:    percentile(durs, 0.95),
			P99:    percentile(durs, 0.99),
			Max:    durs[len(durs)-1],
		})
	}
	return out, nil
}

// ThroughputResult reports ops/sec per query kind.
type ThroughputResult struct {
	Kind    QueryKind
	Ops     int64
	Elapsed time.Duration
	OpsSec  float64
}

// MeasureThroughput runs opsPerClient queries of each kind from clients
// concurrent goroutines (the paper uses 50 clients) and reports aggregate
// throughput per kind (Figure 6).
func MeasureThroughput(src *gremlin.Source, w *Workload, clients, opsPerClient int) ([]ThroughputResult, error) {
	out := make([]ThroughputResult, 0, int(numQueryKinds))
	for k := QueryKind(0); k < numQueryKinds; k++ {
		// Pre-generate per-client query streams.
		streams := make([][]Query, clients)
		for c := range streams {
			streams[c] = make([]Query, opsPerClient)
			for i := range streams[c] {
				streams[c][i] = w.Next(k)
			}
		}
		var firstErr atomic.Value
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(queries []Query) {
				defer wg.Done()
				for _, q := range queries {
					if _, err := q.Build(src).ToList(); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}(streams[c])
		}
		wg.Wait()
		elapsed := time.Since(start)
		if err, ok := firstErr.Load().(error); ok && err != nil {
			return nil, fmt.Errorf("linkbench: %s: %w", k, err)
		}
		totalOps := int64(clients) * int64(opsPerClient)
		out = append(out, ThroughputResult{
			Kind: k, Ops: totalOps, Elapsed: elapsed,
			OpsSec: float64(totalOps) / elapsed.Seconds(),
		})
	}
	return out, nil
}

// ExportCSV writes the dataset as CSV files (nodes.csv, links.csv) into
// dir, timing the "Export From DB" phase of Table 3. Returns total bytes.
func (d *Dataset) ExportCSV(dir string) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	var total int64
	nodePath := filepath.Join(dir, "nodes.csv")
	nf, err := os.Create(nodePath)
	if err != nil {
		return 0, err
	}
	nw := bufio.NewWriter(nf)
	rng := rand.New(rand.NewSource(d.Cfg.Seed + 1))
	for id := int64(1); id <= int64(d.Cfg.Vertices); id++ {
		line := d.vertexCSV(id, rng)
		n, err := fmt.Fprintln(nw, line)
		if err != nil {
			nf.Close()
			return 0, err
		}
		total += int64(n)
	}
	if err := nw.Flush(); err != nil {
		nf.Close()
		return 0, err
	}
	if err := nf.Close(); err != nil {
		return 0, err
	}

	linkPath := filepath.Join(dir, "links.csv")
	lf, err := os.Create(linkPath)
	if err != nil {
		return 0, err
	}
	lw := bufio.NewWriter(lf)
	for _, e := range d.Edges {
		n, err := fmt.Fprintln(lw, e.csv())
		if err != nil {
			lf.Close()
			return 0, err
		}
		total += int64(n)
	}
	if err := lw.Flush(); err != nil {
		lf.Close()
		return 0, err
	}
	return total, lf.Close()
}
