// Command graphserver runs a network Gremlin server (the paper's "server
// mode") over a Db2 Graph overlay.
//
// Usage:
//
//	graphserver -demo -addr 127.0.0.1:8182
//	graphserver -db schema.sql -overlay overlay.json -addr :8182
//
// Clients speak the line-delimited JSON protocol of internal/gserver:
//
//	{"query": "g.V().count()"}
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"db2graph/internal/core"
	"db2graph/internal/demo"
	"db2graph/internal/graph"
	"db2graph/internal/gremlin"
	"db2graph/internal/gserver"
	"db2graph/internal/overlay"
	"db2graph/internal/sql/engine"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8182", "listen address")
		dbScript    = flag.String("db", "", "SQL script creating and populating the database")
		overlayPath = flag.String("overlay", "", "graph overlay configuration (JSON)")
		demoMode    = flag.Bool("demo", false, "serve the paper's health-care example")

		queryTimeout = flag.Duration("query-timeout", 30*time.Second,
			"default per-query deadline; clients may shorten but never extend it (negative disables)")
		maxTraversers = flag.Int("max-traversers", graph.DefaultMaxTraversers,
			"per-query cap on live traversers (negative disables)")
		maxRepeat = flag.Int("max-repeat-iters", graph.DefaultMaxRepeatIters,
			"per-query cap on repeat() iterations (negative disables)")
		maxResults = flag.Int("max-results", graph.DefaultMaxResults,
			"per-query cap on returned results (negative disables)")
		maxRequestBytes = flag.Int("max-request-bytes", 1<<20,
			"largest accepted request frame in bytes")
		maxConcurrent = flag.Int("max-concurrent", 64,
			"queries executing simultaneously before fast-failing with OVERLOADED (negative disables)")
		parallelism = flag.Int("parallelism", 0,
			"goroutines per query for parallel traversal execution (0 = GOMAXPROCS, 1 = serial)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second,
			"how long shutdown waits for in-flight queries before canceling them")
		slowQuery = flag.Duration("slow-query-threshold", 0,
			"log queries taking at least this long to stderr (0 disables)")
	)
	flag.Parse()

	var db *engine.Database
	var cfg *overlay.Config
	switch {
	case *demoMode:
		var err error
		db, cfg, err = demo.HealthcareDatabase()
		if err != nil {
			fatal(err)
		}
	case *dbScript != "" && *overlayPath != "":
		data, err := os.ReadFile(*dbScript)
		if err != nil {
			fatal(err)
		}
		db = engine.New()
		if err := db.ExecScript(string(data)); err != nil {
			fatal(err)
		}
		cfg, err = overlay.Load(*overlayPath)
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: graphserver -demo | -db schema.sql -overlay overlay.json")
		os.Exit(2)
	}

	g, err := core.Open(db, cfg, core.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	// Instrumenting the backend feeds per-method counters and latency
	// histograms into the default registry, which clients read via the
	// "!metrics" control request.
	src := gremlin.NewSource(graph.Instrument(g, nil)).WithLimits(graph.Limits{
		MaxTraversers:  *maxTraversers,
		MaxRepeatIters: *maxRepeat,
		MaxResults:     *maxResults,
	}).WithParallelism(*parallelism)
	srv := gserver.NewWithConfig(src, gserver.Config{
		QueryTimeout:       *queryTimeout,
		MaxRequestBytes:    *maxRequestBytes,
		MaxConcurrent:      *maxConcurrent,
		DrainTimeout:       *drainTimeout,
		SlowQueryThreshold: *slowQuery,
	})
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Println("gremlin server listening on", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
