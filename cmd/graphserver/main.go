// Command graphserver runs a network Gremlin server (the paper's "server
// mode") over a Db2 Graph overlay, optionally backed by a durable
// (WAL + checkpoint) store that survives crashes.
//
// Usage:
//
//	graphserver -demo -addr 127.0.0.1:8182
//	graphserver -db schema.sql -overlay overlay.json -addr :8182
//	graphserver -demo -data-dir /var/lib/db2graph -sync group=2ms
//	graphserver -data-dir /var/lib/db2graph   # serve recovered data only
//
// With -data-dir, the graph is persisted under the directory: an empty
// store is seeded from the -demo/-db source, a non-empty one recovers its
// contents on startup (checksummed WAL replay over the newest checkpoint)
// and can serve with no SQL source at all. The "!checkpoint" control
// request snapshots the store and truncates the WAL.
//
// Cluster deployment: N shard servers each hold one hash partition of the
// graph (-shard-index/-shard-count), and a coordinator server scatters
// queries across them with retries, hedging, health checks, and circuit
// breakers (-coordinator):
//
//	graphserver -demo -shard-index 0 -shard-count 2 -addr :8183
//	graphserver -demo -shard-index 1 -shard-count 2 -addr :8184
//	graphserver -coordinator 127.0.0.1:8183,127.0.0.1:8184 -addr :8182
//
// Replicated deployment: each shard primary (-replicate) streams its writes
// to a follower (-replica-of), and the coordinator (-replicas, parallel to
// -coordinator) promotes the follower automatically when a primary dies,
// fencing the deposed primary so it can never acknowledge a write again:
//
//	graphserver -demo -shard-index 0 -shard-count 2 -replicate -addr :8183
//	graphserver -replica-of 127.0.0.1:8183 -demo -shard-index 0 -shard-count 2 -addr :8185
//	graphserver -coordinator :8183,:8184 -replicas :8185,:8186 -addr :8182
//
// Clients speak the line-delimited JSON protocol of internal/gserver:
//
//	{"query": "g.V().count()"}
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"db2graph/internal/cluster"
	"db2graph/internal/core"
	"db2graph/internal/demo"
	"db2graph/internal/graph"
	"db2graph/internal/gremlin"
	"db2graph/internal/gserver"
	"db2graph/internal/janus"
	"db2graph/internal/overlay"
	"db2graph/internal/sql/engine"
	"db2graph/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8182", "listen address")
		dbScript    = flag.String("db", "", "SQL script creating and populating the database")
		overlayPath = flag.String("overlay", "", "graph overlay configuration (JSON)")
		demoMode    = flag.Bool("demo", false, "serve the paper's health-care example")
		dataDir     = flag.String("data-dir", "",
			"directory for the durable store (WAL + checkpoints); empty serves from memory only")
		storageSpec = flag.String("storage", "cow",
			"storage engine for -data-dir: cow (copy-on-write checkpoints) or lsm (log-structured merge with MVCC snapshot reads)")
		syncSpec = flag.String("sync", "always",
			"durability policy for -data-dir: always (fsync per commit), group[=delay] (group commit), none")

		queryTimeout = flag.Duration("query-timeout", 30*time.Second,
			"default per-query deadline; clients may shorten but never extend it (negative disables)")
		maxTraversers = flag.Int("max-traversers", graph.DefaultMaxTraversers,
			"per-query cap on live traversers (negative disables)")
		maxRepeat = flag.Int("max-repeat-iters", graph.DefaultMaxRepeatIters,
			"per-query cap on repeat() iterations (negative disables)")
		maxResults = flag.Int("max-results", graph.DefaultMaxResults,
			"per-query cap on returned results (negative disables)")
		maxRequestBytes = flag.Int("max-request-bytes", 1<<20,
			"largest accepted request frame in bytes")
		maxConcurrent = flag.Int("max-concurrent", 64,
			"queries executing simultaneously before fast-failing with OVERLOADED (negative disables)")
		parallelism = flag.Int("parallelism", 0,
			"goroutines per query for parallel traversal execution (0 = GOMAXPROCS, 1 = serial)")
		planCacheSize = flag.Int("plan-cache-size", 0,
			"compiled-plan cache capacity in plans (0 = default 256)")
		batchSize = flag.Int("batch-size", 0,
			"cap on ids per batched backend lookup (0 = one lookup per engine chunk)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second,
			"how long shutdown waits for in-flight queries before canceling them")
		slowQuery = flag.Duration("slow-query-threshold", 0,
			"log queries taking at least this long to stderr (0 disables)")
		analyze = flag.Bool("analyze", true,
			"collect catalog statistics at startup so queries plan with the cost model; clients refresh with the \"!analyze\" control request")

		shardIndex = flag.Int("shard-index", -1,
			"serve only this hash partition of the source graph (requires -shard-count)")
		shardCount = flag.Int("shard-count", 0,
			"total shards the source graph is partitioned into")
		coordinator = flag.String("coordinator", "",
			"comma-separated shard server addresses; serve a scatter-gather coordinator over them instead of local data")
		clusterRetries = flag.Int("cluster-retries", 2,
			"coordinator: retries per shard read on availability failures (negative disables)")
		clusterNoHedge = flag.Bool("cluster-no-hedge", false,
			"coordinator: disable hedged requests")
		clusterHealthInterval = flag.Duration("cluster-health-interval", 2*time.Second,
			"coordinator: background shard health probe period (0 disables)")
		clusterDegraded = flag.Bool("cluster-degraded", false,
			"coordinator: return marked partial results when shards are down instead of failing")
		clusterRequestTimeout = flag.Duration("cluster-request-timeout", 10*time.Second,
			"coordinator: per-shard exchange deadline when a query carries none")
		replicas = flag.String("replicas", "",
			"coordinator: comma-separated follower addresses parallel to -coordinator; enables automatic shard failover (promotion + fencing)")
		replicaReads = flag.Bool("cluster-replica-reads", false,
			"coordinator: serve stale-bounded reads from a shard's caught-up follower while its primary is down")

		replicate = flag.Bool("replicate", false,
			"serve as a replication primary: accept follower subscriptions (\"!replicate\") and wait for the follower's ack on every write")
		replicaOf = flag.String("replica-of", "",
			"serve as a replication follower of this primary address: apply its oplog stream, reject writes until \"!promote\"")
		replicaAckTimeout = flag.Duration("replica-ack-timeout", 2*time.Second,
			"primary: how long a write waits for the follower's ack before returning REPLICA_TIMEOUT (negative replicates asynchronously)")
	)
	flag.Parse()

	// A coordinator serves the shards; it is not itself sharded. Without
	// this check, -shard-count would re-partition the coordinator's merged
	// view: projectShard would scan the entire remote cluster and silently
	// serve a local in-memory copy of one hash partition of it.
	if *coordinator != "" && (*shardCount != 0 || *shardIndex >= 0) {
		fmt.Fprintln(os.Stderr, "error: -coordinator cannot be combined with -shard-count/-shard-index; run shard servers and the coordinator as separate processes")
		os.Exit(2)
	}
	if *replicaOf != "" && (*replicate || *coordinator != "") {
		fmt.Fprintln(os.Stderr, "error: -replica-of cannot be combined with -replicate or -coordinator")
		os.Exit(2)
	}
	if *replicas != "" && *coordinator == "" {
		fmt.Fprintln(os.Stderr, "error: -replicas requires -coordinator")
		os.Exit(2)
	}

	var db *engine.Database
	var cfg *overlay.Config
	switch {
	case *coordinator != "":
		// Scatter-gather mode: no local data; the shards hold the graph.
	case *demoMode:
		var err error
		db, cfg, err = demo.HealthcareDatabase()
		if err != nil {
			fatal(err)
		}
	case *dbScript != "" && *overlayPath != "":
		data, err := os.ReadFile(*dbScript)
		if err != nil {
			fatal(err)
		}
		db = engine.New()
		if err := db.ExecScript(string(data)); err != nil {
			fatal(err)
		}
		cfg, err = overlay.Load(*overlayPath)
		if err != nil {
			fatal(err)
		}
	case *dataDir != "":
		// No SQL source: serve whatever the durable store recovers.
	case *replicaOf != "":
		// Bare follower: start empty and catch up from the primary's
		// oplog. A primary seeded from -demo/-db needs its follower
		// seeded identically instead — the oplog only carries writes
		// committed after the primary started.
	default:
		fmt.Fprintln(os.Stderr, "usage: graphserver -demo | -db schema.sql -overlay overlay.json [-data-dir dir [-sync policy]] | -coordinator addr,addr,...")
		os.Exit(2)
	}

	var backend graph.Backend
	var durable *janus.Graph
	var coord *cluster.Coordinator
	if *coordinator != "" {
		var err error
		coord, err = cluster.Dial(cluster.Config{
			Addrs:          splitAddrs(*coordinator),
			Replicas:       splitAddrs(*replicas),
			ReplicaReads:   *replicaReads,
			Retries:        *clusterRetries,
			NoHedge:        *clusterNoHedge,
			HealthInterval: *clusterHealthInterval,
			Degraded:       *clusterDegraded,
			RequestTimeout: *clusterRequestTimeout,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("coordinating %d shards: %s\n", coord.Shards(), *coordinator)
		if *replicas != "" {
			fmt.Printf("shard failover armed: replicas %s\n", *replicas)
		}
		backend = coord
	} else if *dataDir != "" {
		policy, err := wal.ParsePolicy(*syncSpec)
		if err != nil {
			fatal(err)
		}
		switch *storageSpec {
		case "cow":
			durable, err = janus.OpenDurable(*dataDir, policy)
		case "lsm":
			durable, err = janus.OpenLSM(*dataDir, policy)
		default:
			err = fmt.Errorf("unknown -storage %q (want cow or lsm)", *storageSpec)
		}
		if err != nil {
			fatal(err)
		}
		recovered := durable.Store().Len()
		switch {
		case recovered > 0:
			fmt.Printf("recovered durable store (%s): %d keys, generation %d, sync=%s\n",
				*storageSpec, recovered, durable.Store().Generation(), policy)
		case db == nil:
			fatal(fmt.Errorf("-data-dir %s is empty and no -demo/-db source was given to seed it", *dataDir))
		default:
			if err := seed(durable, db, cfg); err != nil {
				fatal(err)
			}
			fmt.Printf("seeded durable store (%s) at %s (sync=%s)\n", *storageSpec, *dataDir, policy)
		}
		backend = durable
	} else if db == nil {
		// Bare follower: an empty memory backend, populated by catch-up.
		backend = graph.NewMemBackend()
	} else {
		g, err := core.Open(db, cfg, core.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		backend = g
	}

	// Shard-server mode: keep only this server's hash partition (plus the
	// ghost endpoints and dual-homed edges the placement contract demands),
	// re-projected into a memory backend. A coordinator over all the shards
	// reassembles exactly the full graph.
	if *shardCount > 1 {
		if *shardIndex < 0 || *shardIndex >= *shardCount {
			fatal(fmt.Errorf("-shard-index %d out of range for -shard-count %d", *shardIndex, *shardCount))
		}
		shardB, nv, ne, err := projectShard(backend, *shardIndex, *shardCount)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving shard %d/%d: %d vertices, %d edges\n", *shardIndex, *shardCount, nv, ne)
		backend = shardB
	}

	// Replication applies the primary's logical ops through graph.Mutable.
	// The SQL overlay is read-only through the graph API, so a replicated
	// server materializes it into the mutable memory backend — the same
	// projection a shard server already serves.
	if (*replicate || *replicaOf != "") && durable == nil {
		if _, ok := backend.(graph.Mutable); !ok {
			mb, nv, ne, err := projectShard(backend, 0, 1)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("materialized overlay for replication: %d vertices, %d edges\n", nv, ne)
			backend = mb
		}
	}

	// Instrumenting the backend feeds per-method counters and latency
	// histograms into the default registry, which clients read via the
	// "!metrics" control request (alongside the kvstore WAL/checkpoint
	// gauges when -data-dir is set).
	src := gremlin.NewSource(graph.Instrument(backend, nil)).WithLimits(graph.Limits{
		MaxTraversers:  *maxTraversers,
		MaxRepeatIters: *maxRepeat,
		MaxResults:     *maxResults,
	}).WithParallelism(*parallelism).WithBatchSize(*batchSize)
	// The server default-enables a plan cache; the flag only sizes it.
	if *planCacheSize > 0 {
		src = src.WithPlanCache(gremlin.NewPlanCache(*planCacheSize))
	}
	// Catalog statistics drive the cost-based planner and the "!explain"
	// control request; the provider always exists so "!analyze" works, and
	// -analyze only controls the startup collection.
	sp := graph.NewStatsProvider(src.Backend)
	src = src.WithStats(sp)
	if *analyze {
		st, err := sp.Analyze(context.Background())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("analyzed: %d vertices, %d edges, %d vertex labels, %d edge labels\n",
			st.VertexCount, st.EdgeCount, len(st.VertexLabels), len(st.EdgeLabels))
	}
	gcfg := gserver.Config{
		QueryTimeout:       *queryTimeout,
		MaxRequestBytes:    *maxRequestBytes,
		MaxConcurrent:      *maxConcurrent,
		DrainTimeout:       *drainTimeout,
		SlowQueryThreshold: *slowQuery,
	}
	if durable != nil {
		gcfg.Checkpointer = durable
	}
	var srv *gserver.Server
	if *replicate || *replicaOf != "" {
		role := gserver.RolePrimary
		if *replicaOf != "" {
			role = gserver.RoleFollower
		}
		gcfg.Replication = &gserver.ReplicationConfig{
			Role:        role,
			PrimaryAddr: *replicaOf,
			AckTimeout:  *replicaAckTimeout,
		}
		var err error
		srv, err = gserver.NewReplicated(src, gcfg)
		if err != nil {
			fatal(err)
		}
		if role == gserver.RoleFollower {
			fmt.Printf("replicating from %s (read-only until \"!promote\")\n", *replicaOf)
		} else {
			fmt.Println("replication primary: accepting follower subscriptions")
		}
	} else {
		srv = gserver.NewWithConfig(src, gcfg)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Println("gremlin server listening on", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
	if coord != nil {
		coord.Close()
	}
	if durable != nil {
		// A clean shutdown checkpoints (fast restart) and seals the WAL.
		if err := durable.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "checkpoint on shutdown:", err)
		}
		if err := durable.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "close durable store:", err)
		}
	}
}

// seed bulk-loads the overlay-projected graph into the durable store and
// checkpoints, so subsequent startups recover directly from disk.
func seed(dst *janus.Graph, db *engine.Database, cfg *overlay.Config) error {
	g, err := core.Open(db, cfg, core.DefaultOptions())
	if err != nil {
		return err
	}
	ctx := context.Background()
	vs, err := g.V(ctx, nil)
	if err != nil {
		return err
	}
	es, err := g.E(ctx, nil)
	if err != nil {
		return err
	}
	l := dst.NewBulkLoader()
	for _, v := range vs {
		if err := l.AddVertex(v); err != nil {
			return err
		}
	}
	for _, e := range es {
		if err := l.AddEdge(e); err != nil {
			return err
		}
	}
	if err := l.Flush(); err != nil {
		return err
	}
	return dst.Checkpoint()
}

// projectShard materializes one hash partition of src (owned vertices,
// ghost endpoints, incident edges) into a memory backend.
func projectShard(src graph.Backend, index, count int) (graph.Backend, int, int, error) {
	ctx := context.Background()
	vs, err := src.V(ctx, nil)
	if err != nil {
		return nil, 0, 0, err
	}
	es, err := src.E(ctx, nil)
	if err != nil {
		return nil, 0, 0, err
	}
	part := cluster.Partition(vs, es, count)[index]
	m := graph.NewMemBackend()
	for _, v := range part.Vertices {
		if err := m.AddVertex(v); err != nil {
			return nil, 0, 0, err
		}
	}
	for _, e := range part.Edges {
		if err := m.AddEdge(e); err != nil {
			return nil, 0, 0, err
		}
	}
	return m, len(part.Vertices), len(part.Edges), nil
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
