// Command linkbench regenerates the paper's evaluation artifacts (Tables
// 1-3, Figures 4-6, plus the runtime-optimization ablation) at configurable
// scale.
//
// Usage:
//
//	linkbench -all
//	linkbench -table 2 -small 50000 -large 500000
//	linkbench -figure 5 -cache 75000
package main

import (
	"flag"
	"fmt"
	"os"

	"db2graph/internal/experiments"
	"db2graph/internal/linkbench"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate a paper table (1, 2, or 3)")
		figure   = flag.Int("figure", 0, "regenerate a paper figure (4, 5, or 6)")
		ablation = flag.Bool("ablation", false, "run the runtime-optimization ablation")
		layouts  = flag.Bool("layouts", false, "compare the split vs single relational layouts")
		all      = flag.Bool("all", false, "run every experiment")
		small    = flag.Int("small", 0, "small dataset vertex count")
		large    = flag.Int("large", 0, "large dataset vertex count")
		cache    = flag.Int("cache", 0, "GDB-X cache budget in vertices")
		ops      = flag.Int("ops", 0, "latency operations per query type")
		clients  = flag.Int("clients", 0, "throughput client count")
		perCli   = flag.Int("ops-per-client", 0, "throughput operations per client")
		layout   = flag.String("layout", "split", "relational layout: split or single")
		seed     = flag.Int64("seed", 42, "dataset generation seed")
		par      = flag.Int("parallelism", 0,
			"engine goroutines per query (0 = GOMAXPROCS, 1 = serial)")
		planCacheSize = flag.Int("plan-cache-size", 0,
			"compiled-plan cache capacity for the cached bench rows (0 = default 256)")
		batchSize = flag.Int("batch-size", 0,
			"cap on ids per batched backend lookup (0 = one lookup per engine chunk)")
		jsonOut  = flag.Bool("json", false,
			"measure the four operations and write BENCH_linkbench.json (ops/sec, p50/p95/p99)")
		dataDir = flag.String("data-dir", "",
			"directory for the durability benchmark's WAL stores (default: a temp dir)")
		syncSpec = flag.String("sync", "",
			"group-commit policy spec for the durability comparison: group[=delay] (default group)")
		storageSpec = flag.String("storage", "cow",
			"storage engine for the durability rows: cow or lsm (the writes{} section compares both regardless)")
		shards = flag.Int("shards", 0,
			"with -json: also bench an in-process N-shard cluster behind the coordinator, including a shard-fault availability probe")
		replicas = flag.Bool("replicas", false,
			"with -json and -shards: give each shard a synchronously-replicated follower and measure automatic failover (availability gap across a forced promotion, acked-write ledger, zombie fencing)")
		planner = flag.Bool("planner", false,
			"run only the cost-based planner experiment (costed vs static plans on the skewed in-hub dataset)")
	)
	flag.Parse()

	scale := experiments.DefaultScale()
	if *small > 0 {
		scale.SmallVertices = *small
	}
	if *large > 0 {
		scale.LargeVertices = *large
	}
	if *cache > 0 {
		scale.CacheVertexBudget = *cache
	}
	if *ops > 0 {
		scale.LatencyOps = *ops
	}
	if *clients > 0 {
		scale.Clients = *clients
	}
	if *perCli > 0 {
		scale.OpsPerClient = *perCli
	}
	scale.Seed = *seed
	scale.Parallelism = *par
	scale.PlanCacheSize = *planCacheSize
	scale.BatchSize = *batchSize
	scale.DataDir = *dataDir
	scale.Sync = *syncSpec
	scale.Shards = *shards
	scale.Replicas = *replicas
	if *storageSpec != "cow" && *storageSpec != "lsm" {
		fmt.Fprintf(os.Stderr, "unknown storage engine %q\n", *storageSpec)
		os.Exit(2)
	}
	scale.Storage = *storageSpec
	switch *layout {
	case "split":
		scale.Layout = linkbench.LayoutSplit
	case "single":
		scale.Layout = linkbench.LayoutSingle
	default:
		fmt.Fprintf(os.Stderr, "unknown layout %q\n", *layout)
		os.Exit(2)
	}

	w := os.Stdout
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	ran := false
	if *all || *table == 1 {
		experiments.PrintTable1(w)
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *table == 2 {
		scale.RunTable2(w)
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *table == 3 {
		if _, err := scale.RunTable3(w); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *figure == 4 {
		if _, err := scale.RunFigure4(w); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *figure == 5 {
		if _, err := scale.RunFigure5(w); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *figure == 6 {
		if _, err := scale.RunFigure6(w); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *ablation {
		if _, err := scale.RunAblation(w); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *layouts {
		if _, err := scale.RunLayoutComparison(w); err != nil {
			fail(err)
		}
		ran = true
	}
	if *all || *planner {
		if _, err := scale.RunPlanner(w); err != nil {
			fail(err)
		}
		ran = true
	}
	if *jsonOut {
		f, err := os.Create("BENCH_linkbench.json")
		if err != nil {
			fail(err)
		}
		if _, err := scale.RunBenchJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintln(w, "wrote BENCH_linkbench.json")
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
