// Command gremlin-console is the interactive REPL of the system (the
// paper's Gremlin console): it opens a database, overlays a graph, and
// evaluates Gremlin scripts line by line against it.
//
// Usage:
//
//	gremlin-console -db schema.sql -overlay overlay.json
//	gremlin-console -demo
//
// With -demo, the console starts with the paper's Section 4 health-care
// scenario preloaded.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"db2graph/internal/core"
	"db2graph/internal/demo"
	"db2graph/internal/graph"
	"db2graph/internal/gremlin"
	"db2graph/internal/overlay"
	"db2graph/internal/sql/engine"
	"db2graph/internal/telemetry"
)

func main() {
	var (
		dbScript    = flag.String("db", "", "SQL script creating and populating the database")
		overlayPath = flag.String("overlay", "", "graph overlay configuration (JSON)")
		demoMode    = flag.Bool("demo", false, "preload the paper's health-care example")
	)
	flag.Parse()

	var db *engine.Database
	var cfg *overlay.Config
	switch {
	case *demoMode:
		var err error
		db, cfg, err = demo.HealthcareDatabase()
		if err != nil {
			fatal(err)
		}
	case *dbScript != "" && *overlayPath != "":
		data, err := os.ReadFile(*dbScript)
		if err != nil {
			fatal(err)
		}
		db = engine.New()
		if err := db.ExecScript(string(data)); err != nil {
			fatal(err)
		}
		cfg, err = overlay.Load(*overlayPath)
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: gremlin-console -demo | -db schema.sql -overlay overlay.json")
		os.Exit(2)
	}

	g, err := core.Open(db, cfg, core.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	g.RegisterGraphQuery("graphQuery")
	// Instrument the backend so profiled runs report per-method timings.
	src := gremlin.NewSource(graph.Instrument(g, nil))

	fmt.Println("Db2 Graph Gremlin console. Gremlin traversals start with g.;")
	fmt.Println("prefix a line with `sql ` to run SQL, `explain ` to show a")
	fmt.Println("SELECT's physical plan, `profile ` to show step timings.")
	fmt.Println(":quit exits.")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("gremlin> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == ":quit" || line == ":exit" || line == ":q":
			return
		case strings.HasPrefix(line, "profile "):
			span := telemetry.NewSpan()
			ctx := telemetry.WithSpan(context.Background(), span)
			script := strings.TrimPrefix(line, "profile ")
			if _, err := gremlin.RunScriptCtx(ctx, src, script, nil); err != nil {
				fmt.Println("error:", err)
				continue
			}
			profiles := span.Profiles()
			if len(profiles) == 0 {
				fmt.Println("(nothing profiled)")
				continue
			}
			for _, p := range profiles {
				fmt.Println(p)
			}
			if ops := span.Ops(); len(ops) > 0 {
				fmt.Println("operations (all statements):")
				for _, op := range ops {
					fmt.Printf("  %-28s calls=%-6d items=%-8d %v\n", op.Name, op.Calls, op.Items, op.Total)
				}
			}
		case strings.HasPrefix(line, "explain "):
			plan, err := db.Explain(strings.TrimPrefix(line, "explain "))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(plan)
		case strings.HasPrefix(line, "sql "):
			rows, err := db.Query(strings.TrimPrefix(line, "sql "))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(strings.Join(rows.Columns(), " | "))
			for i := 0; i < rows.Len(); i++ {
				cells := make([]string, len(rows.Row(i)))
				for j, v := range rows.Row(i) {
					cells[j] = v.Text()
				}
				fmt.Println(strings.Join(cells, " | "))
			}
		default:
			results, err := gremlin.RunScript(src, line, nil)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if len(results) == 0 {
				fmt.Println("(no results)")
				continue
			}
			for _, r := range results {
				fmt.Println("==>", gremlin.Display(r))
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
