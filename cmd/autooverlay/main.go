// Command autooverlay runs the AutoOverlay toolkit (Section 5.1 of the
// paper): given a SQL script that creates a schema (with primary and
// foreign key constraints), it infers the vertex and edge tables and emits
// the overlay configuration JSON.
//
// Usage:
//
//	autooverlay -db schema.sql [-tables Patient,Disease]
//	autooverlay -demo
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"db2graph/internal/demo"
	"db2graph/internal/overlay"
	"db2graph/internal/sql/engine"
)

func main() {
	var (
		dbScript  = flag.String("db", "", "SQL script creating the schema")
		tableList = flag.String("tables", "", "comma-separated subset of tables")
		demoMode  = flag.Bool("demo", false, "use the paper's health-care schema")
	)
	flag.Parse()

	var db *engine.Database
	switch {
	case *demoMode:
		var err error
		db, _, err = demo.HealthcareDatabase()
		if err != nil {
			fatal(err)
		}
	case *dbScript != "":
		data, err := os.ReadFile(*dbScript)
		if err != nil {
			fatal(err)
		}
		db = engine.New()
		if err := db.ExecScript(string(data)); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: autooverlay -demo | -db schema.sql [-tables a,b,c]")
		os.Exit(2)
	}

	var tables []string
	if *tableList != "" {
		for _, t := range strings.Split(*tableList, ",") {
			tables = append(tables, strings.TrimSpace(t))
		}
	}
	cfg, err := overlay.Generate(db.Catalog(), tables)
	if err != nil {
		fatal(err)
	}
	// Validate the generated configuration resolves against the database.
	if _, err := overlay.Resolve(cfg, db); err != nil {
		fatal(fmt.Errorf("generated configuration does not resolve: %w", err))
	}
	out, err := cfg.JSON()
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
