// Law enforcement: the police case-study scenario of Section 7 — persons,
// organizations, arrests, phones, and addresses all live in an operational
// database that is updated in real time; the investigation views them as a
// graph. This example also uses AutoOverlay (Section 5.1): the overlay is
// generated from the schema's primary/foreign keys rather than written by
// hand.
package main

import (
	"fmt"
	"log"
	"sort"

	"db2graph/internal/core"
	"db2graph/internal/graph"
	"db2graph/internal/gremlin"
	"db2graph/internal/overlay"
	"db2graph/internal/sql/engine"
)

func main() {
	db := engine.New()
	if err := db.ExecScript(`
		CREATE TABLE Person (
			personID BIGINT PRIMARY KEY,
			name VARCHAR(60),
			role VARCHAR(20)            -- suspect / victim / witness
		);
		CREATE TABLE Organization (
			orgID BIGINT PRIMARY KEY,
			orgName VARCHAR(60),
			orgKind VARCHAR(20)         -- gang / legitimate
		);
		CREATE TABLE Arrest (
			arrestID BIGINT PRIMARY KEY,
			charge VARCHAR(60),
			day BIGINT
		);
		CREATE TABLE Phone (
			phoneID BIGINT PRIMARY KEY,
			number VARCHAR(20)
		);
		CREATE TABLE MemberOf (
			personID BIGINT NOT NULL,
			orgID BIGINT NOT NULL,
			FOREIGN KEY (personID) REFERENCES Person(personID),
			FOREIGN KEY (orgID) REFERENCES Organization(orgID)
		);
		CREATE TABLE ArrestedIn (
			personID BIGINT NOT NULL,
			arrestID BIGINT NOT NULL,
			FOREIGN KEY (personID) REFERENCES Person(personID),
			FOREIGN KEY (arrestID) REFERENCES Arrest(arrestID)
		);
		CREATE TABLE UsesPhone (
			personID BIGINT NOT NULL,
			phoneID BIGINT NOT NULL,
			FOREIGN KEY (personID) REFERENCES Person(personID),
			FOREIGN KEY (phoneID) REFERENCES Phone(phoneID)
		);
		INSERT INTO Person VALUES
			(1, 'ray', 'suspect'), (2, 'mo', 'suspect'), (3, 'lee', 'witness'), (4, 'kim', 'suspect');
		INSERT INTO Organization VALUES
			(100, 'eastside crew', 'gang'), (101, 'city bakery', 'legitimate');
		INSERT INTO Arrest VALUES
			(500, 'burglary', 10), (501, 'fraud', 20);
		INSERT INTO Phone VALUES
			(900, '555-0100'), (901, '555-0101'), (902, '555-0102');
		INSERT INTO MemberOf VALUES (1, 100), (2, 100), (3, 101), (4, 100);
		INSERT INTO ArrestedIn VALUES (1, 500), (2, 500), (4, 501);
		INSERT INTO UsesPhone VALUES (1, 900), (2, 901), (4, 902), (2, 902);
	`); err != nil {
		log.Fatal(err)
	}

	// AutoOverlay: infer vertex/edge tables from PK/FK constraints.
	cfg, err := overlay.Generate(db.Catalog(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AutoOverlay inferred %d vertex tables and %d edge tables\n",
		len(cfg.VTables), len(cfg.ETables))

	g, err := core.Open(db, cfg, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	tr := g.Traversal()

	// Case study 1: phone numbers of all suspects in arrest 500.
	// AutoOverlay labels: vertices by table name; edges Person_ArrestedIn_Arrest etc.
	fmt.Println("== Phones used by suspects of the burglary arrest ==")
	phones, err := tr.V("Arrest::500").In("Person_ArrestedIn_Arrest").
		Has("role", "suspect").Out("Person_UsesPhone_Phone").Values("number").ToValues()
	if err != nil {
		log.Fatal(err)
	}
	var nums []string
	for _, p := range phones {
		nums = append(nums, p.Text())
	}
	sort.Strings(nums)
	for _, n := range nums {
		fmt.Println("  ", n)
	}

	// Case study 2: criminal organizations all suspects of an arrest
	// belong to.
	fmt.Println("== Organizations shared by all suspects of arrest 500 ==")
	orgs, err := tr.V("Arrest::500").In("Person_ArrestedIn_Arrest").
		Out("Person_MemberOf_Organization").Has("orgKind", "gang").
		GroupCountBy("orgName").Next()
	if err != nil {
		log.Fatal(err)
	}
	suspects, err := tr.V("Arrest::500").In("Person_ArrestedIn_Arrest").Count().Next()
	if err != nil {
		log.Fatal(err)
	}
	nSuspects := suspects.(interface{ Go() any }).Go().(int64)
	for org, cnt := range orgs.(map[string]int64) {
		if cnt == nSuspects {
			fmt.Printf("   %s (all %d suspects are members)\n", org, cnt)
		}
	}

	// Case study 3: who shares a phone with a known suspect?
	fmt.Println("== People sharing a phone with suspect mo ==")
	sharers, err := tr.V("Person::2").Out("Person_UsesPhone_Phone").In("Person_UsesPhone_Phone").
		Not(gremlin.Anon().HasID("Person::2")).Dedup().ToList()
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range sharers {
		el := o.(*graph.Element)
		fmt.Printf("   %s (%s)\n", el.Props["name"].Text(), el.Props["role"].Text())
	}

	// Real-time requirement: a new arrest record shows up immediately.
	fmt.Println("== New booking visible to the case graph at once ==")
	db.Exec("INSERT INTO Arrest VALUES (502, 'vandalism', 30)")
	db.Exec("INSERT INTO ArrestedIn VALUES (3, 502)")
	arrests, err := tr.V("Person::3").Out("Person_ArrestedIn_Arrest").Values("charge").ToValues()
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range arrests {
		fmt.Println("   lee now linked to arrest for:", a.Text())
	}
}
