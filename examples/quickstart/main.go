// Quickstart: overlay a property graph onto two existing relational tables
// and traverse it with Gremlin — no copying, no transformation.
package main

import (
	"fmt"
	"log"

	"db2graph/internal/core"
	"db2graph/internal/gremlin"
	"db2graph/internal/overlay"
	"db2graph/internal/sql/engine"
)

func main() {
	// 1. An ordinary relational database: people and a follows relation.
	db := engine.New()
	if err := db.ExecScript(`
		CREATE TABLE People (id BIGINT PRIMARY KEY, name VARCHAR(50), city VARCHAR(50));
		CREATE TABLE Follows (follower BIGINT NOT NULL, followed BIGINT NOT NULL, since BIGINT,
			PRIMARY KEY (follower, followed));
		INSERT INTO People VALUES (1, 'ada', 'london'), (2, 'grace', 'nyc'), (3, 'alan', 'london');
		INSERT INTO Follows VALUES (1, 2, 2020), (2, 3, 2021), (3, 1, 2022), (1, 3, 2023);
	`); err != nil {
		log.Fatal(err)
	}

	// 2. Describe how the tables form a graph (the overlay).
	cfg := &overlay.Config{
		VTables: []overlay.VTable{{
			TableName: "People", ID: "id", FixLabel: true, Label: "'person'",
			Properties: []string{"name", "city"},
		}},
		ETables: []overlay.ETable{{
			TableName: "Follows",
			SrcVTable: "People", SrcV: "follower",
			DstVTable: "People", DstV: "followed",
			ImplicitEdgeID: true, FixLabel: true, Label: "'follows'",
			Properties: []string{"since"},
		}},
	}

	// 3. Open the graph and traverse.
	g, err := core.Open(db, cfg, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	tr := g.Traversal()

	// Who does ada follow?
	names, err := tr.V("1").Out("follows").Values("name").ToValues()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("ada follows:")
	for _, n := range names {
		fmt.Print(" ", n.Text())
	}
	fmt.Println()

	// Friends-of-friends, excluding ada herself.
	fof, err := tr.V("1").Out("follows").Out("follows").
		Not(gremlin.Anon().HasID("1")).Dedup().Values("name").ToValues()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("ada's follows-of-follows:")
	for _, n := range fof {
		fmt.Print(" ", n.Text())
	}
	fmt.Println()

	// Gremlin text works too (the console / server path).
	count, err := g.Run("g.V().hasLabel('person').count()")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("people in the graph:", gremlin.Display(count[0]))

	// 4. The graph is live: a SQL insert appears immediately.
	if _, err := db.Exec("INSERT INTO Follows VALUES (2, 1, 2024)"); err != nil {
		log.Fatal(err)
	}
	followers, err := tr.V("1").In("follows").Values("name").ToValues()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("ada's followers after a SQL insert:")
	for _, n := range followers {
		fmt.Print(" ", n.Text())
	}
	fmt.Println()
}
