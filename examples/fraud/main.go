// Fraud: the mule-fraud detection scenario of Section 7 — bank transaction
// data living in an operational relational database, with graph queries
// tracing how fraudsters reach beneficiaries through chains of mule
// accounts. The data is updated by the transactional side and graph
// queries must always see the latest state, which is exactly what the
// overlay provides.
package main

import (
	"fmt"
	"log"

	"db2graph/internal/core"
	"db2graph/internal/graph"
	"db2graph/internal/gremlin"
	"db2graph/internal/overlay"
	"db2graph/internal/sql/engine"
	"db2graph/internal/sql/types"
)

func main() {
	db := engine.New()
	if err := db.ExecScript(`
		CREATE TABLE Account (
			accountID BIGINT PRIMARY KEY,
			holder VARCHAR(60),
			kind VARCHAR(20),         -- retail / business
			riskScore BIGINT
		);
		CREATE TABLE Transfer (
			txID BIGINT PRIMARY KEY,
			fromAccount BIGINT NOT NULL,
			toAccount BIGINT NOT NULL,
			amount DOUBLE,
			day BIGINT,
			FOREIGN KEY (fromAccount) REFERENCES Account(accountID),
			FOREIGN KEY (toAccount) REFERENCES Account(accountID)
		);
		CREATE INDEX idx_tx_from ON Transfer (fromAccount);
		CREATE INDEX idx_tx_to ON Transfer (toAccount);

		-- 1 and 2 are known fraudsters; 900 is the beneficiary; 10-13 are
		-- mule accounts; 50-52 are ordinary customers.
		INSERT INTO Account VALUES
			(1, 'fraudster-a', 'retail', 95), (2, 'fraudster-b', 'retail', 90),
			(10, 'mule-1', 'retail', 40), (11, 'mule-2', 'retail', 35),
			(12, 'mule-3', 'retail', 45), (13, 'mule-4', 'retail', 30),
			(50, 'customer-x', 'retail', 5), (51, 'customer-y', 'retail', 5),
			(52, 'customer-z', 'business', 10),
			(900, 'beneficiary', 'business', 70);
		INSERT INTO Transfer VALUES
			(1000, 1, 10, 9500, 1), (1001, 10, 11, 9400, 2), (1002, 11, 900, 9300, 3),
			(1003, 2, 12, 4000, 1), (1004, 12, 13, 3900, 2), (1005, 13, 900, 3800, 4),
			(1006, 50, 51, 120, 1), (1007, 51, 52, 80, 2), (1008, 52, 50, 60, 3),
			(1009, 1, 50, 25, 5);
	`); err != nil {
		log.Fatal(err)
	}

	cfg := &overlay.Config{
		VTables: []overlay.VTable{{
			TableName: "Account", ID: "accountID", FixLabel: true, Label: "'account'",
			Properties: []string{"holder", "kind", "riskScore"},
		}},
		ETables: []overlay.ETable{{
			TableName: "Transfer",
			SrcVTable: "Account", SrcV: "fromAccount",
			DstVTable: "Account", DstV: "toAccount",
			ID: "txID", FixLabel: true, Label: "'transfer'",
			Properties: []string{"amount", "day"},
		}},
	}
	g, err := core.Open(db, cfg, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	tr := g.Traversal()

	// Mule-fraud pattern: from each known fraudster, walk transfer hops
	// until the beneficiary is reached (bounded at 3 hops) and print the
	// money trail — the path through the mule accounts.
	fmt.Println("== Money trails from fraudsters to the beneficiary (<= 3 hops) ==")
	for _, fraudster := range []string{"1", "2"} {
		paths, err := tr.V(fraudster).
			Repeat(gremlin.Anon().Out("transfer")).Until(gremlin.Anon().HasID("900")).Times(3).
			Path().ToList()
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range paths {
			fmt.Print("  ")
			for i, hop := range p.([]any) {
				el := hop.(*graph.Element)
				if i > 0 {
					fmt.Print(" -> ")
				}
				fmt.Print(el.Props["holder"].Text())
			}
			fmt.Println()
		}
	}

	// Which accounts are acting as mules? Accounts on a fraudster->...->
	// beneficiary chain, excluding the endpoints.
	fmt.Println("== Suspected mule accounts ==")
	mules, err := tr.V("1", "2").
		Repeat(gremlin.Anon().Out("transfer").Dedup().Store("chain")).Times(2).
		Cap("chain").Next()
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range mules.([]any) {
		el := o.(*graph.Element)
		if el.ID == "900" {
			continue
		}
		reaches, err := tr.V(el.ID).Out("transfer").HasID("900").Count().Next()
		if err != nil {
			log.Fatal(err)
		}
		if v, ok := reaches.(types.Value); ok && v.I > 0 {
			fmt.Printf("   %s (account %s) forwards directly to the beneficiary\n",
				el.Props["holder"].Text(), el.ID)
		}
	}

	// Timeliness: the fraud team needs the newest transfer to show up at
	// once — here the transactional side posts a new hop and the same graph
	// query sees it.
	fmt.Println("== A new transfer appears in graph queries immediately ==")
	if _, err := db.Exec("INSERT INTO Transfer VALUES (1010, 2, 11, 2000, 6)"); err != nil {
		log.Fatal(err)
	}
	n, err := tr.V("2").Out("transfer").Dedup().Count().Next()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("   fraudster-b now reaches", gremlin.Display(n), "accounts in one hop")

	// Synergy: SQL aggregates over the same tables quantify flow volumes.
	fmt.Println("== SQL view of the same data: total inflow to the beneficiary ==")
	rows, err := db.Query(`
		SELECT SUM(amount), COUNT(*) FROM Transfer WHERE toAccount = 900`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %s across %s transfers\n", rows.Row(0)[0].Text(), rows.Row(0)[1].Text())
}
