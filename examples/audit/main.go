// Audit: the compliance angle of the paper (Section 1) — temporal support
// "crucial for compliance to audits and regulations (e.g. GDPR)". The
// tables carry system-time versioning, so an auditor can open the graph
// AS OF any past moment and see exactly what the organization knew then,
// while the live graph reflects corrections. Snapshots of the whole
// database persist to a file for evidence retention.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"db2graph/internal/core"
	"db2graph/internal/gremlin"
	"db2graph/internal/overlay"
	"db2graph/internal/sql/engine"
)

func main() {
	db := engine.New()
	if err := db.ExecScript(`
		CREATE TABLE Customer (custID BIGINT PRIMARY KEY, name VARCHAR(60), country VARCHAR(30)) WITH SYSTEM VERSIONING;
		CREATE TABLE Consent (custID BIGINT NOT NULL, purpose VARCHAR(40) NOT NULL, grantedDay BIGINT,
			PRIMARY KEY (custID, purpose)) WITH SYSTEM VERSIONING;
		CREATE TABLE Processing (procID BIGINT PRIMARY KEY, custID BIGINT NOT NULL, purpose VARCHAR(40), day BIGINT) WITH SYSTEM VERSIONING;
		INSERT INTO Customer VALUES (1, 'n. lovelace', 'uk'), (2, 'a. turing', 'uk');
		INSERT INTO Consent VALUES (1, 'marketing', 100), (1, 'analytics', 100), (2, 'analytics', 101);
		INSERT INTO Processing VALUES (500, 1, 'marketing', 110), (501, 2, 'analytics', 111);
	`); err != nil {
		log.Fatal(err)
	}

	cfg := &overlay.Config{
		VTables: []overlay.VTable{
			{TableName: "Customer", PrefixedID: true, ID: "'cust'::custID",
				FixLabel: true, Label: "'customer'", Properties: []string{"name", "country"}},
			{TableName: "Processing", PrefixedID: true, ID: "'proc'::procID",
				FixLabel: true, Label: "'processing'", Properties: []string{"purpose", "day"}},
		},
		ETables: []overlay.ETable{
			{TableName: "Consent", SrcVTable: "Customer", SrcV: "'cust'::custID",
				DstVTable: "Customer", DstV: "'cust'::custID",
				ImplicitEdgeID: true, FixLabel: true, Label: "'selfConsent'",
				Properties: []string{"purpose", "grantedDay"}},
			{TableName: "Processing", SrcVTable: "Processing", SrcV: "'proc'::procID",
				DstVTable: "Customer", DstV: "'cust'::custID",
				ImplicitEdgeID: true, FixLabel: true, Label: "'concerns'",
				Properties: []string{"purpose"}},
		},
	}
	g, err := core.Open(db, cfg, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Record the state of the world before the data-subject request.
	beforeRequest := db.Now()

	// The customer withdraws marketing consent and invokes erasure of the
	// marketing processing record; the transactional side applies it.
	tx := db.Begin()
	tx.Exec("DELETE FROM Consent WHERE custID = 1 AND purpose = 'marketing'")
	tx.Exec("DELETE FROM Processing WHERE procID = 500")
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Live graph: the marketing link is gone.
	live := g.Traversal()
	n, err := live.V("cust::1").InE("concerns").Count().Next()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("processing records linked to customer 1 (now):", gremlin.Display(n))

	// Audit view: AS OF the pre-request timestamp the link existed — the
	// auditor can verify what was processed and under which consent.
	audit := g.Snapshot(beforeRequest).Traversal()
	objs, err := audit.V("cust::1").InE("concerns").OutV().Values("purpose").ToValues()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("processing records linked to customer 1 (as of audit point):")
	for _, v := range objs {
		fmt.Print(" ", v.Text())
	}
	fmt.Println()

	consents, err := audit.V("cust::1").OutE("selfConsent").Values("purpose").ToValues()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("consents on file at audit point:")
	for _, v := range consents {
		fmt.Print(" ", v.Text())
	}
	fmt.Println()

	// Evidence retention: persist the current database to a file and prove
	// the snapshot restores to an identical, queryable state.
	path := filepath.Join(os.TempDir(), "audit-evidence.db2g")
	if err := db.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	restored, err := engine.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	g2, err := core.Open(restored, cfg, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	m, err := g2.Traversal().V().HasLabel("customer").Count().Next()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("customers in restored evidence snapshot:", gremlin.Display(m))
}
