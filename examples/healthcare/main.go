// Healthcare: the paper's Section 4 running example, end to end — graph
// queries over existing medical tables, the synergistic graphQuery table
// function mixing Gremlin and SQL in one statement, a view-derived edge
// type (Section 5's "surprising benefit"), and a temporal snapshot.
package main

import (
	"fmt"
	"log"

	"db2graph/internal/core"
	"db2graph/internal/demo"
	"db2graph/internal/graph"
	"db2graph/internal/gremlin"
	"db2graph/internal/overlay"
)

func main() {
	db, cfg, err := demo.HealthcareDatabase()
	if err != nil {
		log.Fatal(err)
	}
	g, err := core.Open(db, cfg, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	g.RegisterGraphQuery("graphQuery")

	// --- Pure graph queries (the Gremlin console side) ---
	tr := g.Traversal()
	fmt.Println("== Alice's diseases and their ontology ancestors ==")
	objs, err := tr.V("patient::1").Out("hasDisease").
		Repeat(gremlin.Anon().Out("isa").Dedup().Store("x")).Times(3).
		Cap("x").Next()
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range objs.([]any) {
		el := o.(*graph.Element)
		fmt.Println("  ", el.Props["conceptName"].Text())
	}

	// --- The paper's synergistic SQL + graph statement ---
	fmt.Println("== Exercise patterns of patients with similar diseases to Alice ==")
	rows, err := db.Query(`
		SELECT P.patientID, AVG(steps) AS avgSteps, AVG(exerciseMinutes) AS avgMinutes
		FROM DeviceData AS D,
		TABLE (graphQuery('gremlin', 'similar_diseases = g.V()
		.hasLabel(\'patient\').has(\'patientID\', 1).out(\'hasDisease\')
		.repeat(out(\'isa\').dedup().store(\'x\')).times(2)
		.repeat(in(\'isa\').dedup().store(\'x\')).times(2).cap(\'x\').next();
		g.V(similar_diseases).in(\'hasDisease\').dedup()
		.values(\'patientID\', \'subscriptionID\')'))
		AS P (patientID BIGINT, subscriptionID BIGINT)
		WHERE D.subscriptionID = P.subscriptionID
		GROUP BY P.patientID
		ORDER BY P.patientID`)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < rows.Len(); i++ {
		r := rows.Row(i)
		fmt.Printf("   patient %s: avg %s steps, avg %s exercise minutes\n",
			r[0].Text(), r[1].Text(), r[2].Text())
	}

	// --- View-derived edges: patient -> ontology parent in one view ---
	fmt.Println("== Derived edge type from a view (no data copied) ==")
	if _, err := db.Exec(`CREATE VIEW PatientToParent AS
		SELECT H.patientID AS pid, O.targetID AS parentID
		FROM HasDisease H JOIN DiseaseOntology O ON H.diseaseID = O.sourceID`); err != nil {
		log.Fatal(err)
	}
	cfg2, _ := overlay.Parse([]byte(demo.OverlayJSON))
	cfg2.ETables = append(cfg2.ETables, overlay.ETable{
		TableName: "PatientToParent",
		SrcVTable: "Patient", SrcV: "'patient'::pid",
		DstVTable: "Disease", DstV: "parentID",
		ImplicitEdgeID: true, FixLabel: true, Label: "'hasParentDisease'",
	})
	g2, err := core.Open(db, cfg2, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	parents, err := g2.Traversal().V("patient::1").Out("hasParentDisease").Values("conceptName").ToValues()
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range parents {
		fmt.Println("   alice's parent disease:", p.Text())
	}

	// --- Live updates ---
	fmt.Println("== Updates are immediately visible to graph queries ==")
	db.Exec("INSERT INTO HasDisease VALUES (2, 12, 'diagnosed 2024')")
	n, err := tr.V("patient::2").Out("hasDisease").Count().Next()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("   bob's diseases after SQL insert:", gremlin.Display(n))

	// --- Index advisor ---
	fmt.Println("== Index suggestions from the SQL dialect module ==")
	for i := 0; i < 8; i++ {
		tr.V().HasLabel("patient").Has("name", "Alice").ToList()
	}
	for _, s := range g.Dialect().SuggestIndexes(5) {
		fmt.Println("  ", s.DDL)
	}
}
