// Package repro's root benchmarks map one-to-one onto the paper's
// evaluation artifacts (see DESIGN.md's per-experiment index):
//
//	BenchmarkTable1Queries       - Table 1's four query shapes on Db2 Graph
//	BenchmarkTable2DatasetGen    - Table 2 dataset generation
//	BenchmarkTable3Loading       - Table 3 loading pipeline phases
//	BenchmarkFigure4Strategies   - Figure 4 strategies on/off
//	BenchmarkFigure5Latency      - Figure 5 latency per system and dataset
//	BenchmarkFigure6Throughput   - Figure 6 concurrent throughput per system
//	BenchmarkAblationRuntimeOpts - Section 6.3 runtime optimization ablation
//
// For the full paper-style report (printed tables with means and speedups),
// run `go run ./cmd/linkbench -all`.
package main

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"db2graph/internal/core"
	"db2graph/internal/gdbx"
	"db2graph/internal/gremlin"
	"db2graph/internal/janus"
	"db2graph/internal/linkbench"
	"db2graph/internal/sql/engine"
)

const (
	benchSmall = 5000
	benchLarge = 30000
	// benchCache sizes the GDB-X cache so the small dataset fits and the
	// large one does not.
	benchCache = 8000
)

// fixtures are shared across benchmarks (loading is expensive).
var (
	fixMu   sync.Mutex
	fixData = map[int]*linkbench.Dataset{}
	fixDb2  = map[int]*core.Graph{}
	fixGdbx = map[int]*gdbx.Graph{}
	fixJan  = map[int]*janus.Graph{}
)

func dataset(b *testing.B, size int) *linkbench.Dataset {
	b.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if d, ok := fixData[size]; ok {
		return d
	}
	d := linkbench.Generate(linkbench.DefaultConfig(size))
	fixData[size] = d
	return d
}

func db2Graph(b *testing.B, size int) *core.Graph {
	b.Helper()
	d := dataset(b, size)
	fixMu.Lock()
	defer fixMu.Unlock()
	if g, ok := fixDb2[size]; ok {
		return g
	}
	db := engine.New()
	cfg, err := d.LoadSQL(db)
	if err != nil {
		b.Fatal(err)
	}
	g, err := core.Open(db, cfg, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	fixDb2[size] = g
	return g
}

func gdbxGraph(b *testing.B, size int) *gdbx.Graph {
	b.Helper()
	d := dataset(b, size)
	fixMu.Lock()
	defer fixMu.Unlock()
	if g, ok := fixGdbx[size]; ok {
		return g
	}
	g := gdbx.New(gdbx.Config{CacheCapacity: benchCache})
	if err := d.LoadBackend(g); err != nil {
		b.Fatal(err)
	}
	if err := g.Seal(); err != nil {
		b.Fatal(err)
	}
	if err := g.Open(); err != nil {
		b.Fatal(err)
	}
	fixGdbx[size] = g
	return g
}

func janusGraph(b *testing.B, size int) *janus.Graph {
	b.Helper()
	d := dataset(b, size)
	fixMu.Lock()
	defer fixMu.Unlock()
	if g, ok := fixJan[size]; ok {
		return g
	}
	g := janus.New()
	l := g.NewBulkLoader()
	if err := d.LoadBackend(l); err != nil {
		b.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		b.Fatal(err)
	}
	fixJan[size] = g
	return g
}

// benchQueries runs one benchmark per LinkBench query kind on a source.
// The driver cycles through a fixed pool of 512 pre-generated queries, so
// it measures steady-state hot-set performance (the pool fits GDB-X's
// cache even on the larger dataset). The paper's random-access pattern —
// where the cache cliff appears — is measured by `cmd/linkbench -figure 5`
// and recorded in EXPERIMENTS.md.
func benchQueries(b *testing.B, src *gremlin.Source, d *linkbench.Dataset) {
	kinds := []linkbench.QueryKind{
		linkbench.GetNode, linkbench.CountLinks, linkbench.GetLink, linkbench.GetLinkList,
	}
	for _, kind := range kinds {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			w := d.NewWorkload(99)
			queries := make([]linkbench.Query, 512)
			for i := range queries {
				queries[i] = w.Next(kind)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, err := q.Build(src).ToList(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1Queries exercises Table 1's query shapes on Db2 Graph.
func BenchmarkTable1Queries(b *testing.B) {
	g := db2Graph(b, benchSmall)
	benchQueries(b, g.Traversal(), dataset(b, benchSmall))
}

// BenchmarkTable2DatasetGen measures dataset generation (Table 2).
func BenchmarkTable2DatasetGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := linkbench.DefaultConfig(benchSmall)
		cfg.Seed = int64(i) // avoid dead-code elimination of generation
		d := linkbench.Generate(cfg)
		if len(d.Edges) == 0 {
			b.Fatal("no edges generated")
		}
	}
}

// BenchmarkTable3Loading measures each loading-pipeline phase (Table 3).
func BenchmarkTable3Loading(b *testing.B) {
	d := dataset(b, benchSmall)
	b.Run("Db2Graph/open", func(b *testing.B) {
		db := engine.New()
		cfg, err := d.LoadSQL(db)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Open(db, cfg, core.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ExportCSV", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			if _, err := d.ExportCSV(dir); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GDBX/load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := gdbx.New(gdbx.Config{CacheCapacity: benchCache})
			if err := d.LoadBackend(g); err != nil {
				b.Fatal(err)
			}
			if err := g.Seal(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("JanusGraph/load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := janus.New()
			l := g.NewBulkLoader()
			if err := d.LoadBackend(l); err != nil {
				b.Fatal(err)
			}
			if err := l.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure4Strategies compares the optimized traversal strategies
// against the naive plans (Figure 4).
func BenchmarkFigure4Strategies(b *testing.B) {
	g := db2Graph(b, benchSmall)
	d := dataset(b, benchSmall)
	b.Run("with-strategies", func(b *testing.B) {
		benchQueries(b, g.Traversal(), d)
	})
	b.Run("without-strategies", func(b *testing.B) {
		benchQueries(b, g.NaiveTraversal(), d)
	})
}

// BenchmarkFigure5Latency measures per-query latency for the three systems
// on a dataset that fits the GDB-X cache and one that does not (Figure 5).
func BenchmarkFigure5Latency(b *testing.B) {
	for _, size := range []int{benchSmall, benchLarge} {
		size := size
		name := fmt.Sprintf("%dk", size/1000)
		b.Run("Db2Graph/"+name, func(b *testing.B) {
			benchQueries(b, db2Graph(b, size).Traversal(), dataset(b, size))
		})
		b.Run("GDBX/"+name, func(b *testing.B) {
			benchQueries(b, gremlin.NewSource(gdbxGraph(b, size)), dataset(b, size))
		})
		b.Run("JanusGraph/"+name, func(b *testing.B) {
			benchQueries(b, gremlin.NewSource(janusGraph(b, size)), dataset(b, size))
		})
	}
}

// BenchmarkFigure6Throughput measures concurrent query throughput per
// system (Figure 6; the paper uses 50 clients).
func BenchmarkFigure6Throughput(b *testing.B) {
	run := func(b *testing.B, src *gremlin.Source, d *linkbench.Dataset) {
		w := d.NewWorkload(7)
		queries := make([]linkbench.Query, 1024)
		for i := range queries {
			queries[i] = w.NextAny()
		}
		b.SetParallelism(8) // multiply by GOMAXPROCS for a client fleet
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				q := queries[i%len(queries)]
				i++
				if _, err := q.Build(src).ToList(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	size := benchSmall
	b.Run("Db2Graph", func(b *testing.B) { run(b, db2Graph(b, size).Traversal(), dataset(b, size)) })
	b.Run("GDBX", func(b *testing.B) { run(b, gremlin.NewSource(gdbxGraph(b, size)), dataset(b, size)) })
	b.Run("JanusGraph", func(b *testing.B) { run(b, gremlin.NewSource(janusGraph(b, size)), dataset(b, size)) })
}

// BenchmarkAblationRuntimeOpts measures the data-dependent runtime
// optimizations of Section 6.3 by disabling them one at a time.
func BenchmarkAblationRuntimeOpts(b *testing.B) {
	d := dataset(b, benchSmall)
	configs := []struct {
		name string
		mod  func(*core.Options)
	}{
		{"all-on", func(o *core.Options) {}},
		{"no-label-pruning", func(o *core.Options) { o.LabelPruning = false }},
		{"no-prefix-pinning", func(o *core.Options) { o.PrefixedIDPinning = false }},
		{"no-implicit-edge-ids", func(o *core.Options) { o.ImplicitEdgeIDs = false }},
		{"no-stmt-cache", func(o *core.Options) { o.StatementCache = false }},
		{"all-off", func(o *core.Options) { *o = core.Options{} }},
	}
	// One shared database; separate graph instances per option set.
	db := engine.New()
	cfg, err := d.LoadSQL(db)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range configs {
		opts := core.DefaultOptions()
		c.mod(&opts)
		g, err := core.Open(db, cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			benchQueries(b, g.Traversal(), d)
		})
	}
}

// TestMain keeps fixture memory bounded when only short runs are wanted.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
