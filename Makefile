GO ?= go

.PHONY: check vet build test bench

# check is the tier-1 verify target (see ROADMAP.md): vet, build, and the
# full test suite under the race detector with a hard timeout so lifecycle
# regressions (hangs, deadlocks) fail fast instead of wedging CI.
check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race -timeout 120s ./...

# bench runs the Go micro-benchmarks (plan cache, batched expansion, and
# any others) without the regular tests.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
