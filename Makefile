GO ?= go

.PHONY: check vet build test bench bench-alloc cluster-faults replication-faults

# check is the tier-1 verify target (see ROADMAP.md): vet, build, and the
# full test suite under the race detector with a hard timeout so lifecycle
# regressions (hangs, deadlocks) fail fast instead of wedging CI. The
# cluster fault-injection suite runs inside `test` (it lives in the regular
# test tree); `cluster-faults` repeats it in isolation with -count=2 for
# the dedicated CI job.
check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race -timeout 120s ./...

# cluster-faults runs the sharded-coordinator chaos suite — shard map and
# partition invariants, breaker lifecycle, retry/hedge/health behavior,
# server drain, and the four-backend RunClusterFaults differential — twice
# under the race detector to shake out timing-dependent flakes.
cluster-faults:
	$(GO) test -race -count=2 -timeout 300s \
		-run 'ClusterFaults|Breaker|ShardMap|Partition|JitteredBackoff|RetryDelay|RetryStops|Health|CloseDrains|GraphOpRoundTrip' \
		./internal/cluster/ ./internal/graph/graphtest/clustertest/ \
		./internal/gserver/ ./internal/core/ ./internal/gdbx/ ./internal/janus/

# replication-faults runs the shard-HA suites — WAL tailing, logical-op
# replication and follower catch-up, automatic failover (promotion, epoch
# fencing, replica reads, write determinacy), the prober backoff bound, and
# the four-backend RunReplicatedCluster differential (bit-identical follower
# state at quiesce, chaos failover, zombie fencing) — twice under the race
# detector: acks, probes, promotion, and fencing race the write load by
# design.
replication-faults:
	$(GO) test -race -count=2 -timeout 600s \
		-run 'Replicat|Failover|Fenc|Promot|Follow|StreamFrom|Cursor|Oplog|ProberBackoff|PartialReportDedup|HealRevives|ReplicaRead' \
		./internal/wal/ ./internal/gserver/ ./internal/cluster/ \
		./internal/graph/graphtest/clustertest/ \
		./internal/core/ ./internal/gdbx/ ./internal/janus/

# bench runs the Go micro-benchmarks (plan cache, batched expansion, and
# any others) without the regular tests.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-alloc is the allocation-regression gate (DESIGN.md §15): it measures
# allocs/op of the hot batched-expansion path and fails if it regresses more
# than 10% over the committed baseline in
# internal/gremlin/testdata/alloc_baseline.json.
bench-alloc:
	BENCH_ALLOC_GATE=1 $(GO) test -count=1 -run TestBatchedExpandAllocBaseline -v ./internal/gremlin/
